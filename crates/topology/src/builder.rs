//! Builders for the paper's evaluation topologies.
//!
//! * [`DcnSpec`] builds the Fig-7 intra-DC fabric: `pods` pods, each with
//!   `aggs_per_pod` aggregation switches and `tors_per_pod` top-of-rack
//!   switches; every ToR connects to every Agg in its pod; every Agg
//!   connects to every core router. §7.2 uses 10 pods × 4 Aggs.
//! * [`WanSpec`] builds the Fig-9 WAN: `dcs` datacenters in a full mesh,
//!   each with `border_routers_per_dc` border routers; each physical
//!   inter-DC link connects one border router of each DC pair, giving
//!   "12 physical links" for 4 DCs × 2 BRs. Border routers within a DC
//!   are also meshed to their DC's core tier when combined.
//! * [`DeploymentSpec`] composes both into a multi-DC deployment like the
//!   ten-datacenter Azure footprint of §7.1.

use crate::graph::NetworkGraph;
use statesman_types::{DatacenterId, DeviceName, DeviceRole};

/// Specification of one datacenter fabric (Fig 7).
#[derive(Debug, Clone)]
pub struct DcnSpec {
    /// Datacenter name, e.g. `"dc1"`.
    pub name: String,
    /// Number of pods.
    pub pods: u32,
    /// Aggregation switches per pod (4 in Fig 7).
    pub aggs_per_pod: u32,
    /// ToR switches per pod.
    pub tors_per_pod: u32,
    /// Core routers shared by all pods.
    pub cores: u32,
    /// ToR↔Agg link capacity, Mbps.
    pub tor_agg_mbps: f64,
    /// Agg↔Core link capacity, Mbps.
    pub agg_core_mbps: f64,
}

impl DcnSpec {
    /// The Fig-7 scenario fabric: 10 pods × 4 Aggs, 4 ToRs per pod (the
    /// figure samples one ToR per pod; extra ToRs exercise scale), 4
    /// cores, 10G ToR–Agg and 40G Agg–Core links.
    pub fn fig7(name: impl Into<String>) -> Self {
        DcnSpec {
            name: name.into(),
            pods: 10,
            aggs_per_pod: 4,
            tors_per_pod: 4,
            cores: 4,
            tor_agg_mbps: 10_000.0,
            agg_core_mbps: 40_000.0,
        }
    }

    /// A small fabric for unit tests: 2 pods × 2 Aggs × 2 ToRs, 2 cores.
    pub fn tiny(name: impl Into<String>) -> Self {
        DcnSpec {
            name: name.into(),
            pods: 2,
            aggs_per_pod: 2,
            tors_per_pod: 2,
            cores: 2,
            tor_agg_mbps: 10_000.0,
            agg_core_mbps: 40_000.0,
        }
    }

    /// A fabric sized to hit roughly `target` state variables, used by the
    /// checker-latency scaling benches (§8: largest DC has 394K variables).
    /// Each device contributes ~10 variables and each link ~8 (see
    /// Table 2), so we scale pods until the estimate crosses `target`.
    pub fn sized_for_variables(name: impl Into<String>, target: usize) -> Self {
        let mut spec = DcnSpec {
            name: name.into(),
            pods: 1,
            aggs_per_pod: 4,
            tors_per_pod: 16,
            cores: 8,
            tor_agg_mbps: 10_000.0,
            agg_core_mbps: 40_000.0,
        };
        while spec.estimated_variables() < target && spec.pods < 4_096 {
            spec.pods += 1;
        }
        spec
    }

    /// Rough count of state variables this fabric will generate
    /// (devices × device attrs + links × link attrs).
    pub fn estimated_variables(&self) -> usize {
        let devices = (self.pods * (self.aggs_per_pod + self.tors_per_pod) + self.cores) as usize;
        let links = (self.pods * self.tors_per_pod * self.aggs_per_pod
            + self.pods * self.aggs_per_pod * self.cores) as usize;
        devices * 10 + links * 8
    }

    /// The datacenter id.
    pub fn dc(&self) -> DatacenterId {
        DatacenterId::new(self.name.clone())
    }

    /// Materialize this fabric into `graph`.
    pub fn build_into(&self, graph: &mut NetworkGraph) {
        let dc = self.dc();
        let mut cores = Vec::new();
        for c in 1..=self.cores {
            let name = format!("core-{c}");
            graph.add_device(name.clone(), DeviceRole::Core, dc.clone(), None);
            cores.push(DeviceName::new(name));
        }
        for p in 1..=self.pods {
            let mut aggs = Vec::new();
            for a in 1..=self.aggs_per_pod {
                let name = format!("agg-{p}-{a}");
                graph.add_device(name.clone(), DeviceRole::Agg, dc.clone(), Some(p));
                aggs.push(DeviceName::new(name));
            }
            for t in 1..=self.tors_per_pod {
                let name = format!("tor-{p}-{t}");
                graph.add_device(name.clone(), DeviceRole::ToR, dc.clone(), Some(p));
                let tor = DeviceName::new(name);
                for agg in &aggs {
                    graph.add_link(&tor, agg, self.tor_agg_mbps, dc.clone());
                }
            }
            for agg in &aggs {
                for core in &cores {
                    graph.add_link(agg, core, self.agg_core_mbps, dc.clone());
                }
            }
        }
    }

    /// Build a standalone graph containing just this fabric.
    pub fn build(&self) -> NetworkGraph {
        let mut g = NetworkGraph::new();
        self.build_into(&mut g);
        g
    }
}

/// Specification of the inter-DC WAN (Fig 9).
#[derive(Debug, Clone)]
pub struct WanSpec {
    /// Datacenter names, in order.
    pub dc_names: Vec<String>,
    /// Border routers per datacenter (2 in Fig 9).
    pub border_routers_per_dc: u32,
    /// Inter-DC link capacity, Mbps.
    pub wan_link_mbps: f64,
}

impl WanSpec {
    /// The Fig-9 pilot WAN: 4 DCs in a full mesh, 2 border routers each,
    /// yielding 12 physical inter-DC links (each DC pair is connected by
    /// two links — one per border-router "plane").
    pub fn fig9() -> Self {
        WanSpec {
            dc_names: (1..=4).map(|i| format!("dc{i}")).collect(),
            border_routers_per_dc: 2,
            wan_link_mbps: 100_000.0,
        }
    }

    /// Border-router name for DC index `dc_idx` (0-based) and plane
    /// `plane` (0-based): numbered globally, `br-1`..`br-8` in Fig 9.
    pub fn br_name(&self, dc_idx: usize, plane: u32) -> DeviceName {
        let n = dc_idx as u32 * self.border_routers_per_dc + plane + 1;
        DeviceName::new(format!("br-{n}"))
    }

    /// Materialize the WAN into `graph`. Border routers are homed in their
    /// own datacenter; inter-DC links are homed in the WAN pseudo-DC
    /// (matching the paper's extra impact group for "border routers of all
    /// DCs and the WAN links").
    pub fn build_into(&self, graph: &mut NetworkGraph) {
        let wan = DatacenterId::wan();
        for (i, dc) in self.dc_names.iter().enumerate() {
            for p in 0..self.border_routers_per_dc {
                graph.add_device(
                    self.br_name(i, p).as_str(),
                    DeviceRole::Border,
                    DatacenterId::new(dc.clone()),
                    None,
                );
            }
        }
        // Full mesh of DC pairs; each pair gets one link per plane.
        for i in 0..self.dc_names.len() {
            for j in (i + 1)..self.dc_names.len() {
                for p in 0..self.border_routers_per_dc {
                    let a = self.br_name(i, p);
                    let b = self.br_name(j, p);
                    graph.add_link(&a, &b, self.wan_link_mbps, wan.clone());
                }
            }
        }
    }

    /// Build a standalone WAN graph.
    pub fn build(&self) -> NetworkGraph {
        let mut g = NetworkGraph::new();
        self.build_into(&mut g);
        g
    }

    /// Number of physical inter-DC links this spec creates.
    pub fn physical_link_count(&self) -> usize {
        let n = self.dc_names.len();
        n * (n - 1) / 2 * self.border_routers_per_dc as usize
    }
}

/// A multi-datacenter deployment: several DCN fabrics plus the WAN
/// connecting them. Border routers attach to every core router of their
/// datacenter.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// The per-DC fabrics. Names must match `wan.dc_names` entries for
    /// fabrics that participate in the WAN.
    pub dcns: Vec<DcnSpec>,
    /// The WAN spec, if any.
    pub wan: Option<WanSpec>,
    /// Border-router↔core link capacity, Mbps.
    pub br_core_mbps: f64,
}

impl DeploymentSpec {
    /// The §7.1 deployment shape: ten datacenters plus the WAN. Fabric
    /// size per DC is configurable to keep tests fast.
    pub fn azure_like(per_dc: impl Fn(usize) -> DcnSpec) -> Self {
        let dcns: Vec<DcnSpec> = (1..=10).map(per_dc).collect();
        let wan = WanSpec {
            dc_names: dcns.iter().map(|d| d.name.clone()).collect(),
            border_routers_per_dc: 2,
            wan_link_mbps: 100_000.0,
        };
        DeploymentSpec {
            dcns,
            wan: Some(wan),
            br_core_mbps: 100_000.0,
        }
    }

    /// Build the full deployment graph. Device names are unique across the
    /// deployment: fabric devices get a `<dc>.` prefix (e.g.
    /// `dc1.agg-1-1`) while WAN border routers keep their global `br-N`
    /// names (as in Fig 9).
    pub fn build(&self) -> NetworkGraph {
        let mut g = NetworkGraph::new();
        for spec in &self.dcns {
            let sub = spec.clone();
            sub.build_prefixed_into(&mut g);
            let _ = sub;
        }
        if let Some(wan) = &self.wan {
            wan.build_into(&mut g);
            // Attach each DC's border routers to that DC's cores.
            for (i, dc_name) in wan.dc_names.iter().enumerate() {
                let dc = DatacenterId::new(dc_name.clone());
                let cores: Vec<DeviceName> = g
                    .nodes()
                    .filter(|(_, n)| n.datacenter == dc && n.role == DeviceRole::Core)
                    .map(|(_, n)| n.name.clone())
                    .collect();
                for p in 0..wan.border_routers_per_dc {
                    let br = wan.br_name(i, p);
                    if g.node_id(&br).is_none() {
                        continue;
                    }
                    for core in &cores {
                        g.add_link(&br, core, self.br_core_mbps, dc.clone());
                    }
                }
            }
        }
        g
    }
}

impl DcnSpec {
    /// Like [`DcnSpec::build_into`] but prefixes device names with
    /// `<dc>.` so multiple fabrics can share one graph.
    pub fn build_prefixed_into(&self, graph: &mut NetworkGraph) {
        let dc = self.dc();
        let pfx = |s: String| format!("{}.{}", self.name, s);
        let mut cores = Vec::new();
        for c in 1..=self.cores {
            let name = pfx(format!("core-{c}"));
            graph.add_device(name.clone(), DeviceRole::Core, dc.clone(), None);
            cores.push(DeviceName::new(name));
        }
        for p in 1..=self.pods {
            let mut aggs = Vec::new();
            for a in 1..=self.aggs_per_pod {
                let name = pfx(format!("agg-{p}-{a}"));
                graph.add_device(name.clone(), DeviceRole::Agg, dc.clone(), Some(p));
                aggs.push(DeviceName::new(name));
            }
            for t in 1..=self.tors_per_pod {
                let name = pfx(format!("tor-{p}-{t}"));
                graph.add_device(name.clone(), DeviceRole::ToR, dc.clone(), Some(p));
                let tor = DeviceName::new(name);
                for agg in &aggs {
                    graph.add_link(&tor, agg, self.tor_agg_mbps, dc.clone());
                }
            }
            for agg in &aggs {
                for core in &cores {
                    graph.add_link(agg, core, self.agg_core_mbps, dc.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{components, HealthView};
    use statesman_types::DeviceRole;

    #[test]
    fn fig7_counts() {
        let g = DcnSpec::fig7("dc1").build();
        // 10 pods * (4 aggs + 4 tors) + 4 cores = 84 devices
        assert_eq!(g.node_count(), 84);
        // links: 10 pods * (4 tors * 4 aggs) + 10 pods * 4 aggs * 4 cores
        assert_eq!(g.edge_count(), 10 * 16 + 10 * 16);
        assert_eq!(g.devices_with_role(DeviceRole::Agg).len(), 40);
        assert_eq!(g.pods_in(&DatacenterId::new("dc1")).len(), 10);
    }

    #[test]
    fn fig7_is_connected() {
        let g = DcnSpec::fig7("dc1").build();
        let comps = components(&g, &HealthView::all_up());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), g.node_count());
    }

    #[test]
    fn fig9_counts() {
        let spec = WanSpec::fig9();
        let g = spec.build();
        assert_eq!(g.node_count(), 8); // 4 DCs * 2 BRs
        assert_eq!(g.edge_count(), 12); // the paper's 12 physical links
        assert_eq!(spec.physical_link_count(), 12);
    }

    #[test]
    fn fig9_border_names_match_paper() {
        let spec = WanSpec::fig9();
        // Fig 9 numbers BR1..BR8 with DC1={BR1,BR2} ... DC4={BR7,BR8}.
        assert_eq!(spec.br_name(0, 0).as_str(), "br-1");
        assert_eq!(spec.br_name(0, 1).as_str(), "br-2");
        assert_eq!(spec.br_name(3, 1).as_str(), "br-8");
    }

    #[test]
    fn wan_links_live_in_wan_partition() {
        let g = WanSpec::fig9().build();
        for (_, e) in g.edges() {
            assert!(e.datacenter.is_wan());
        }
        // ...but border routers belong to their DCs.
        let br1 = g.node_id(&DeviceName::new("br-1")).unwrap();
        assert_eq!(g.node(br1).datacenter, DatacenterId::new("dc1"));
    }

    #[test]
    fn deployment_connects_dcs_through_wan() {
        let dep = DeploymentSpec {
            dcns: vec![DcnSpec::tiny("dc1"), DcnSpec::tiny("dc2")],
            wan: Some(WanSpec {
                dc_names: vec!["dc1".into(), "dc2".into()],
                border_routers_per_dc: 2,
                wan_link_mbps: 100_000.0,
            }),
            br_core_mbps: 100_000.0,
        };
        let g = dep.build();
        let comps = components(&g, &HealthView::all_up());
        assert_eq!(comps.len(), 1, "deployment must be one component");
        // A ToR in dc1 and a ToR in dc2 are both present with prefixes.
        assert!(g.node_id(&DeviceName::new("dc1.tor-1-1")).is_some());
        assert!(g.node_id(&DeviceName::new("dc2.tor-1-1")).is_some());
    }

    #[test]
    fn sized_for_variables_reaches_target() {
        let spec = DcnSpec::sized_for_variables("big", 100_000);
        assert!(spec.estimated_variables() >= 100_000);
        // The estimate should be loosely proportional to actual entity count.
        let g = spec.build();
        let actual = g.node_count() * 10 + g.edge_count() * 8;
        assert_eq!(actual, spec.estimated_variables());
    }

    #[test]
    fn azure_like_builds_ten_dcs() {
        let dep = DeploymentSpec::azure_like(|i| DcnSpec::tiny(format!("dc{i}")));
        assert_eq!(dep.dcns.len(), 10);
        let g = dep.build();
        let comps = components(&g, &HealthView::all_up());
        assert_eq!(comps.len(), 1);
        // 10 tiny DCs (2*(2+2)+2 = 10 devices each) + 20 border routers
        assert_eq!(g.node_count(), 10 * 10 + 20);
    }
}
