//! The capacitated network graph and health overlays.
//!
//! [`NetworkGraph`] is the *structural* truth: which devices exist, which
//! links wire them together, and each link's nominal capacity. Whether a
//! device or link is currently *usable* is a property of network state
//! (admin power off, firmware mid-upgrade, link shut by failure
//! mitigation, …) — that is expressed by a [`HealthView`] overlay so the
//! same graph can be evaluated under the observed state, under a projected
//! target state, or under hypothetical failures without copying the graph.

use serde::{Deserialize, Serialize};
use statesman_types::{DatacenterId, DeviceName, DeviceRole, LinkName};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Dense node index into a [`NetworkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Dense edge index into a [`NetworkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A device node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Canonical device name.
    pub name: DeviceName,
    /// Fabric role (ToR/Agg/Core/Border).
    pub role: DeviceRole,
    /// Home datacenter (border routers belong to their DC; inter-DC links
    /// belong to the WAN pseudo-datacenter).
    pub datacenter: DatacenterId,
    /// Pod number for pod-scoped devices (ToR/Agg), else `None`.
    pub pod: Option<u32>,
}

/// A physical (undirected) link edge with nominal capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkInfo {
    /// Canonical link name.
    pub name: LinkName,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Nominal capacity in Mbps (per direction).
    pub capacity_mbps: f64,
    /// The datacenter the link is homed in for storage partitioning (the
    /// WAN pseudo-DC for inter-DC links).
    pub datacenter: DatacenterId,
}

/// The structural network graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetworkGraph {
    nodes: Vec<NodeInfo>,
    edges: Vec<LinkInfo>,
    /// adjacency: node -> (edge, peer) pairs
    adj: Vec<Vec<(EdgeId, NodeId)>>,
    by_name: HashMap<DeviceName, NodeId>,
    by_link: HashMap<LinkName, EdgeId>,
}

impl NetworkGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a device. Panics if the name already exists (topologies are
    /// built once by the builders; duplicate names are construction bugs).
    pub fn add_device(
        &mut self,
        name: impl Into<DeviceName>,
        role: DeviceRole,
        datacenter: impl Into<DatacenterId>,
        pod: Option<u32>,
    ) -> NodeId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "duplicate device {name}");
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(NodeInfo {
            name,
            role,
            datacenter: datacenter.into(),
            pod,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Add an undirected link between two existing devices. Panics on
    /// unknown endpoints or duplicate links (construction bugs).
    pub fn add_link(
        &mut self,
        x: &DeviceName,
        y: &DeviceName,
        capacity_mbps: f64,
        datacenter: impl Into<DatacenterId>,
    ) -> EdgeId {
        let a = self
            .node_id(x)
            .unwrap_or_else(|| panic!("unknown device {x}"));
        let b = self
            .node_id(y)
            .unwrap_or_else(|| panic!("unknown device {y}"));
        let name = LinkName::between(x.clone(), y.clone());
        assert!(!self.by_link.contains_key(&name), "duplicate link {name}");
        let id = EdgeId(self.edges.len() as u32);
        self.by_link.insert(name.clone(), id);
        self.edges.push(LinkInfo {
            name,
            a,
            b,
            capacity_mbps,
            datacenter: datacenter.into(),
        });
        self.adj[a.0 as usize].push((id, b));
        self.adj[b.0 as usize].push((id, a));
        id
    }

    /// Number of devices.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Look up a device by name.
    pub fn node_id(&self, name: &DeviceName) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Look up a link by canonical name.
    pub fn edge_id(&self, name: &LinkName) -> Option<EdgeId> {
        self.by_link.get(name).copied()
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id.0 as usize]
    }

    /// Link metadata.
    pub fn edge(&self, id: EdgeId) -> &LinkInfo {
        &self.edges[id.0 as usize]
    }

    /// Iterate all nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeInfo)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterate all edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &LinkInfo)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Neighbors of a node as `(edge, peer)` pairs.
    pub fn neighbors(&self, id: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adj[id.0 as usize]
    }

    /// Degree of a node.
    pub fn degree(&self, id: NodeId) -> usize {
        self.adj[id.0 as usize].len()
    }

    /// All devices of a role, in id order.
    pub fn devices_with_role(&self, role: DeviceRole) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.role == role)
            .map(|(id, _)| id)
            .collect()
    }

    /// All devices in a pod of a given datacenter, in id order.
    pub fn devices_in_pod(&self, dc: &DatacenterId, pod: u32) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| &n.datacenter == dc && n.pod == Some(pod))
            .map(|(id, _)| id)
            .collect()
    }

    /// All links incident to a device.
    pub fn links_of_device(&self, name: &DeviceName) -> Vec<LinkName> {
        match self.node_id(name) {
            Some(id) => self
                .neighbors(id)
                .iter()
                .map(|(e, _)| self.edge(*e).name.clone())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Distinct pod numbers present in a datacenter, ascending.
    pub fn pods_in(&self, dc: &DatacenterId) -> Vec<u32> {
        let mut pods: Vec<u32> = self
            .nodes
            .iter()
            .filter(|n| &n.datacenter == dc)
            .filter_map(|n| n.pod)
            .collect();
        pods.sort_unstable();
        pods.dedup();
        pods
    }
}

/// A health overlay: which devices and links are usable in a particular
/// (observed, target, or hypothetical) state.
///
/// A link is usable iff the link itself is up *and* both endpoint devices
/// are up — exactly the cross-entity dependency of Fig 4 (link power
/// depends on endpoint device state).
#[derive(Debug, Clone, Default)]
pub struct HealthView {
    down_devices: HashSet<DeviceName>,
    down_links: HashSet<LinkName>,
}

impl HealthView {
    /// Everything up.
    pub fn all_up() -> Self {
        Self::default()
    }

    /// Mark a device down (powered off, rebooting for upgrade, …).
    pub fn set_device_down(&mut self, name: DeviceName) -> &mut Self {
        self.down_devices.insert(name);
        self
    }

    /// Mark a link down (admin-down or oper-down).
    pub fn set_link_down(&mut self, name: LinkName) -> &mut Self {
        self.down_links.insert(name);
        self
    }

    /// Mark a device back up.
    pub fn set_device_up(&mut self, name: &DeviceName) -> &mut Self {
        self.down_devices.remove(name);
        self
    }

    /// Mark a link back up.
    pub fn set_link_up(&mut self, name: &LinkName) -> &mut Self {
        self.down_links.remove(name);
        self
    }

    /// Is the device usable?
    pub fn device_up(&self, name: &DeviceName) -> bool {
        !self.down_devices.contains(name)
    }

    /// Is the link usable (its own state only — see
    /// [`HealthView::link_usable`] for the endpoint-aware check)?
    pub fn link_up(&self, name: &LinkName) -> bool {
        !self.down_links.contains(name)
    }

    /// Is the link usable end-to-end: link up and both endpoints up?
    pub fn link_usable(&self, link: &LinkName) -> bool {
        self.link_up(link) && self.device_up(&link.a) && self.device_up(&link.b)
    }

    /// Devices currently marked down.
    pub fn down_devices(&self) -> impl Iterator<Item = &DeviceName> {
        self.down_devices.iter()
    }

    /// Links currently marked down.
    pub fn down_links(&self) -> impl Iterator<Item = &LinkName> {
        self.down_links.iter()
    }

    /// Number of down devices plus down links (cheap change signal for
    /// caches).
    pub fn outage_count(&self) -> usize {
        self.down_devices.len() + self.down_links.len()
    }
}

/// Breadth-first search over usable links. Returns the set of nodes
/// reachable from `start` (including `start` itself, if its device is up —
/// a down start node reaches nothing).
pub fn reachable_from(graph: &NetworkGraph, health: &HealthView, start: NodeId) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    if !health.device_up(&graph.node(start).name) {
        return seen;
    }
    let mut queue = std::collections::VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &(e, v) in graph.neighbors(u) {
            if seen.contains(&v) {
                continue;
            }
            let link = &graph.edge(e).name;
            if health.link_usable(link) {
                seen.insert(v);
                queue.push_back(v);
            }
        }
    }
    seen
}

/// True if `a` can reach `b` over usable links.
pub fn connected(graph: &NetworkGraph, health: &HealthView, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return health.device_up(&graph.node(a).name);
    }
    reachable_from(graph, health, a).contains(&b)
}

/// Connected components over usable links, excluding down devices.
/// Components are returned sorted by their smallest node id.
pub fn components(graph: &NetworkGraph, health: &HealthView) -> Vec<Vec<NodeId>> {
    let mut assigned: HashSet<NodeId> = HashSet::new();
    let mut out = Vec::new();
    for (id, info) in graph.nodes() {
        if assigned.contains(&id) || !health.device_up(&info.name) {
            continue;
        }
        let comp = reachable_from(graph, health, id);
        let mut comp: Vec<NodeId> = comp.into_iter().collect();
        comp.sort_unstable();
        assigned.extend(comp.iter().copied());
        out.push(comp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> NetworkGraph {
        // Fig 1's diamond: A - {B, C} - D
        let mut g = NetworkGraph::new();
        for n in ["sw-a", "sw-b", "sw-c", "sw-d"] {
            g.add_device(n, DeviceRole::Core, "dc1", None);
        }
        for (x, y) in [
            ("sw-a", "sw-b"),
            ("sw-a", "sw-c"),
            ("sw-b", "sw-d"),
            ("sw-c", "sw-d"),
        ] {
            g.add_link(&DeviceName::new(x), &DeviceName::new(y), 10_000.0, "dc1");
        }
        g
    }

    #[test]
    fn build_and_lookup() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let a = g.node_id(&DeviceName::new("sw-a")).unwrap();
        assert_eq!(g.degree(a), 2);
        let l = LinkName::between("sw-a", "sw-b");
        assert!(g.edge_id(&l).is_some());
        assert_eq!(g.links_of_device(&DeviceName::new("sw-d")).len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate device")]
    fn duplicate_device_panics() {
        let mut g = diamond();
        g.add_device("sw-a", DeviceRole::Core, "dc1", None);
    }

    #[test]
    fn reachability_all_up() {
        let g = diamond();
        let h = HealthView::all_up();
        let a = g.node_id(&DeviceName::new("sw-a")).unwrap();
        let d = g.node_id(&DeviceName::new("sw-d")).unwrap();
        assert!(connected(&g, &h, a, d));
        assert_eq!(reachable_from(&g, &h, a).len(), 4);
    }

    #[test]
    fn single_middle_failure_keeps_connectivity() {
        let g = diamond();
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("sw-b"));
        let a = g.node_id(&DeviceName::new("sw-a")).unwrap();
        let d = g.node_id(&DeviceName::new("sw-d")).unwrap();
        assert!(connected(&g, &h, a, d)); // via sw-c
    }

    #[test]
    fn double_middle_failure_disconnects() {
        // The Fig-2 disaster: both aggregation points down.
        let g = diamond();
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("sw-b"));
        h.set_device_down(DeviceName::new("sw-c"));
        let a = g.node_id(&DeviceName::new("sw-a")).unwrap();
        let d = g.node_id(&DeviceName::new("sw-d")).unwrap();
        assert!(!connected(&g, &h, a, d));
        let comps = components(&g, &h);
        assert_eq!(comps.len(), 2); // {a} and {d}; b,c excluded as down
    }

    #[test]
    fn link_down_vs_device_down() {
        let _g = diamond();
        let mut h = HealthView::all_up();
        let l = LinkName::between("sw-a", "sw-b");
        h.set_link_down(l.clone());
        assert!(!h.link_usable(&l));
        assert!(h.device_up(&DeviceName::new("sw-a")));
        // restore
        h.set_link_up(&l);
        assert!(h.link_usable(&l));
    }

    #[test]
    fn down_start_reaches_nothing() {
        let g = diamond();
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("sw-a"));
        let a = g.node_id(&DeviceName::new("sw-a")).unwrap();
        assert!(reachable_from(&g, &h, a).is_empty());
        assert!(!connected(&g, &h, a, a));
    }

    #[test]
    fn outage_count_tracks_changes() {
        let mut h = HealthView::all_up();
        assert_eq!(h.outage_count(), 0);
        h.set_device_down(DeviceName::new("x"));
        h.set_link_down(LinkName::between("a", "b"));
        assert_eq!(h.outage_count(), 2);
        h.set_device_up(&DeviceName::new("x"));
        assert_eq!(h.outage_count(), 1);
    }
}
