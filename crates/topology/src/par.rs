//! Deterministic parallel mapping for pure per-item computations.
//!
//! The capacity invariant solves one max-flow per sampled ToR pair —
//! thousands of mutually independent sub-problems. This module fans such
//! maps out across scoped threads while keeping the result bit-identical
//! to the serial map: items are split into contiguous chunks whose
//! boundaries depend only on the item count, each chunk is mapped in
//! place, and the outputs are concatenated in chunk order. Nothing about
//! scheduling can leak into the result as long as `f` is pure.

use std::num::NonZeroUsize;

/// The process-wide worker-thread count for pure parallel stages:
/// `STATESMAN_WORKER_THREADS` when set to a positive integer, else the
/// host's available parallelism, else 1.
pub fn worker_threads() -> usize {
    if let Ok(raw) = std::env::var("STATESMAN_WORKER_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` scoped workers, returning
/// results in item order. `f` must be pure for the output to be
/// independent of the thread count (that independence is this function's
/// whole contract).
pub fn ordered_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut parts: Vec<(usize, Vec<R>)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (ci, c) in items.chunks(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || (ci, c.iter().map(f).collect::<Vec<R>>())));
        }
        for h in handles {
            parts.push(h.join().expect("parallel map worker panicked"));
        }
    });
    parts.sort_by_key(|(ci, _)| *ci);
    parts.into_iter().flat_map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_matches_serial_at_any_thread_count() {
        let items: Vec<i64> = (0..1003).collect();
        let serial: Vec<i64> = items.iter().map(|x| x * x - 7).collect();
        for threads in [1, 2, 3, 8, 31] {
            assert_eq!(
                ordered_map(threads, &items, |x| x * x - 7),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn handles_empty_input() {
        let none: Vec<u8> = Vec::new();
        assert!(ordered_map(8, &none, |x| *x).is_empty());
    }
}
