//! ToR-pair capacity evaluation (the §7.2 invariant's workhorse).
//!
//! The capacity invariant is phrased over *directional ToR pairs*: "99% of
//! the ToR pairs in the DC should have at least 50% of their baseline
//! capacity". Baseline is the pair's max-flow with everything healthy;
//! current capacity is the max-flow under a [`HealthView`]. Figure 8 plots
//! exactly this quantity for 90 pairs over time.
//!
//! Because max-flow between two ToRs only depends on the state of devices
//! and links "near" the two pods (the core tier is heavily overprovisioned),
//! the checker can evaluate invariants incrementally: when a proposed
//! change touches pods P, only pairs with an endpoint in P need
//! re-evaluation. [`CapacityReport::evaluate_incremental`] implements that
//! optimization and is benchmarked against the full evaluation in the
//! `invariant_incremental` ablation.

use crate::flow::{max_flow, max_flow_scoped};
use crate::graph::{HealthView, NetworkGraph, NodeId};
use statesman_types::{DatacenterId, DeviceRole};
use std::collections::HashSet;

/// Capacity of one directional ToR pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TorPairCapacity {
    /// Source ToR.
    pub src: NodeId,
    /// Destination ToR.
    pub dst: NodeId,
    /// Baseline max-flow, Mbps (all-up).
    pub baseline_mbps: f64,
    /// Current max-flow, Mbps (under the evaluated health view).
    pub current_mbps: f64,
}

impl TorPairCapacity {
    /// Current capacity as a fraction of baseline in `[0, 1]`; a pair with
    /// zero baseline reports `1.0` (vacuously unimpaired).
    pub fn fraction(&self) -> f64 {
        if self.baseline_mbps <= 0.0 {
            1.0
        } else {
            (self.current_mbps / self.baseline_mbps).clamp(0.0, 1.0)
        }
    }
}

/// Capacity evaluation over a set of ToR pairs.
#[derive(Debug, Clone)]
pub struct CapacityReport {
    /// Per-pair results, in pair order.
    pub pairs: Vec<TorPairCapacity>,
}

impl CapacityReport {
    /// Fraction of pairs at or above `threshold` of baseline.
    pub fn fraction_meeting(&self, threshold: f64) -> f64 {
        if self.pairs.is_empty() {
            return 1.0;
        }
        let ok = self
            .pairs
            .iter()
            .filter(|p| p.fraction() + 1e-9 >= threshold)
            .count();
        ok as f64 / self.pairs.len() as f64
    }

    /// The worst pair's fraction (1.0 if no pairs).
    pub fn worst_fraction(&self) -> f64 {
        self.pairs.iter().map(|p| p.fraction()).fold(1.0, f64::min)
    }

    /// Pairs below `threshold` of baseline.
    pub fn violating(&self, threshold: f64) -> Vec<&TorPairCapacity> {
        self.pairs
            .iter()
            .filter(|p| p.fraction() + 1e-9 < threshold)
            .collect()
    }
}

/// Select the evaluation pairs for a datacenter.
///
/// `sample_tors_per_pod` bounds work on big fabrics: the paper's Figure 8
/// picks **one ToR from each pod** and forms all directional pairs among
/// them (10 pods → 90 pairs). `None` means all ToRs.
pub fn select_tor_pairs(
    graph: &NetworkGraph,
    dc: &DatacenterId,
    sample_tors_per_pod: Option<u32>,
) -> Vec<(NodeId, NodeId)> {
    let mut tors: Vec<NodeId> = Vec::new();
    for pod in graph.pods_in(dc) {
        let mut pod_tors: Vec<NodeId> = graph
            .devices_in_pod(dc, pod)
            .into_iter()
            .filter(|&id| graph.node(id).role == DeviceRole::ToR)
            .collect();
        pod_tors.sort_unstable();
        if let Some(k) = sample_tors_per_pod {
            pod_tors.truncate(k as usize);
        }
        tors.extend(pod_tors);
    }
    let mut pairs = Vec::with_capacity(tors.len() * tors.len().saturating_sub(1));
    for &s in &tors {
        for &d in &tors {
            if s != d {
                pairs.push((s, d));
            }
        }
    }
    pairs
}

/// Downsample a pair list to at most `max_pairs` pairs with a seeded,
/// deterministic stride sample. Production-scale fabrics generate far
/// more directional ToR pairs than any checker can max-flow per pass
/// (407 pods → 165K pairs); sampling a fixed-size panel preserves the
/// invariant's statistical meaning ("99% of pairs") while bounding cost.
pub fn downsample_pairs(
    pairs: Vec<(NodeId, NodeId)>,
    max_pairs: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    if pairs.len() <= max_pairs || max_pairs == 0 {
        return pairs;
    }
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut sampled: Vec<(NodeId, NodeId)> = pairs
        .choose_multiple(&mut rng, max_pairs)
        .copied()
        .collect();
    sampled.sort_unstable();
    sampled
}

/// Evaluate baseline and current capacity for the given pairs.
///
/// Baselines are computed against an all-up view; callers that evaluate
/// repeatedly should compute baselines once via [`baselines_for`] and use
/// [`evaluate_with_baselines`].
pub fn evaluate(
    graph: &NetworkGraph,
    health: &HealthView,
    pairs: &[(NodeId, NodeId)],
) -> CapacityReport {
    let base = baselines_for(graph, pairs);
    evaluate_with_baselines(graph, health, pairs, &base)
}

/// Baseline (all-up) max-flow per pair. Pairs solve independently, so
/// the panel fans out across the worker pool; `pair_flow` is pure and
/// results merge in pair order, so the output is thread-count invariant.
pub fn baselines_for(graph: &NetworkGraph, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
    let all_up = HealthView::all_up();
    let layered = is_pod_layered(graph);
    crate::par::ordered_map(crate::par::worker_threads(), pairs, |&(s, t)| {
        pair_flow(graph, &all_up, s, t, layered)
    })
}

/// Whether every edge either stays within one pod or touches a pod-less
/// node (core/border tier). On such fabrics, all paths between two ToRs
/// lie inside their two pods plus the pod-less tiers, so per-pair
/// max-flow can be solved on that subgraph alone.
pub fn is_pod_layered(graph: &NetworkGraph) -> bool {
    graph.edges().all(|(_, e)| {
        let a = graph.node(e.a);
        let b = graph.node(e.b);
        match (a.pod, b.pod) {
            (Some(pa), Some(pb)) => pa == pb && a.datacenter == b.datacenter,
            _ => true,
        }
    })
}

/// Solve one pair, scoping the flow network to the endpoints' pods plus
/// pod-less tiers when the fabric is layered.
fn pair_flow(
    graph: &NetworkGraph,
    health: &HealthView,
    s: NodeId,
    t: NodeId,
    layered: bool,
) -> f64 {
    let (sp, tp) = (graph.node(s).pod, graph.node(t).pod);
    match (layered, sp, tp) {
        (true, Some(sp), Some(tp)) => {
            let (sdc, tdc) = (
                graph.node(s).datacenter.clone(),
                graph.node(t).datacenter.clone(),
            );
            max_flow_scoped(graph, health, s, t, |n| {
                let info = graph.node(n);
                match info.pod {
                    None => true,
                    Some(p) => {
                        (p == sp && info.datacenter == sdc) || (p == tp && info.datacenter == tdc)
                    }
                }
            })
        }
        _ => max_flow(graph, health, s, t),
    }
}

/// Evaluate current capacity given precomputed baselines.
pub fn evaluate_with_baselines(
    graph: &NetworkGraph,
    health: &HealthView,
    pairs: &[(NodeId, NodeId)],
    baselines: &[f64],
) -> CapacityReport {
    assert_eq!(pairs.len(), baselines.len());
    let layered = is_pod_layered(graph);
    // Each (pair, pod-scope) max-flow is independent of every other;
    // fan the panel out and merge in pair order (bit-identical to the
    // serial sweep for any worker count).
    let indexed: Vec<(NodeId, NodeId, f64)> = pairs
        .iter()
        .zip(baselines)
        .map(|(&(s, t), &b)| (s, t, b))
        .collect();
    let pairs = crate::par::ordered_map(crate::par::worker_threads(), &indexed, |&(s, t, b)| {
        TorPairCapacity {
            src: s,
            dst: t,
            baseline_mbps: b,
            current_mbps: pair_flow(graph, health, s, t, layered),
        }
    });
    CapacityReport { pairs }
}

impl CapacityReport {
    /// Incrementally refresh a previous report: only pairs with an
    /// endpoint in one of `touched_pods` are re-solved; the rest keep
    /// their previous `current_mbps`.
    ///
    /// Sound when the fabric's core tier is not the bottleneck for
    /// untouched pairs — true of the Fig-7 fabric (Agg↔Core capacity
    /// strictly exceeds ToR uplink capacity) and verified by the
    /// `invariant_incremental` ablation bench, which cross-checks
    /// incremental results against full recomputation.
    pub fn evaluate_incremental(
        &self,
        graph: &NetworkGraph,
        health: &HealthView,
        touched_pods: &HashSet<(DatacenterId, u32)>,
    ) -> CapacityReport {
        let layered = is_pod_layered(graph);
        let pairs = crate::par::ordered_map(crate::par::worker_threads(), &self.pairs, |p| {
            let touched = [p.src, p.dst].iter().any(|&n| {
                let info = graph.node(n);
                info.pod
                    .map(|pod| touched_pods.contains(&(info.datacenter.clone(), pod)))
                    .unwrap_or(false)
            });
            if touched {
                TorPairCapacity {
                    current_mbps: pair_flow(graph, health, p.src, p.dst, layered),
                    ..p.clone()
                }
            } else {
                p.clone()
            }
        });
        CapacityReport { pairs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DcnSpec;
    use statesman_types::{DeviceName, LinkName};

    fn fig7() -> NetworkGraph {
        DcnSpec::fig7("dc1").build()
    }

    #[test]
    fn fig8_pair_selection_is_90() {
        let g = fig7();
        let pairs = select_tor_pairs(&g, &DatacenterId::new("dc1"), Some(1));
        assert_eq!(pairs.len(), 90); // 10 ToRs, directional pairs
    }

    #[test]
    fn all_pairs_selection() {
        let g = DcnSpec::tiny("dc1").build();
        let pairs = select_tor_pairs(&g, &DatacenterId::new("dc1"), None);
        // 4 ToRs → 12 directional pairs
        assert_eq!(pairs.len(), 12);
    }

    #[test]
    fn healthy_fabric_meets_invariant_fully() {
        let g = fig7();
        let pairs = select_tor_pairs(&g, &DatacenterId::new("dc1"), Some(1));
        let r = evaluate(&g, &HealthView::all_up(), &pairs);
        assert_eq!(r.fraction_meeting(0.5), 1.0);
        assert_eq!(r.worst_fraction(), 1.0);
        assert!(r.violating(0.5).is_empty());
    }

    #[test]
    fn two_aggs_down_is_exactly_half() {
        let g = fig7();
        let pairs = select_tor_pairs(&g, &DatacenterId::new("dc1"), Some(1));
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("agg-1-1"));
        h.set_device_down(DeviceName::new("agg-1-2"));
        let r = evaluate(&g, &h, &pairs);
        // Pairs touching pod 1 drop to 0.5; everything still meets 50%.
        assert_eq!(r.fraction_meeting(0.5), 1.0);
        assert!((r.worst_fraction() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn three_aggs_down_violates() {
        let g = fig7();
        let pairs = select_tor_pairs(&g, &DatacenterId::new("dc1"), Some(1));
        let mut h = HealthView::all_up();
        for a in 1..=3 {
            h.set_device_down(DeviceName::new(format!("agg-1-{a}")));
        }
        let r = evaluate(&g, &h, &pairs);
        assert!(r.fraction_meeting(0.5) < 1.0);
        // 18 directional pairs touch pod 1 (9 out + 9 in).
        assert_eq!(r.violating(0.5).len(), 18);
    }

    #[test]
    fn link_plus_agg_down_gives_75_percent_pod() {
        // §7.2 box D/E: ToR1-Agg1 link down in pod 4 → pod-4 pairs at 75%.
        let g = fig7();
        let pairs = select_tor_pairs(&g, &DatacenterId::new("dc1"), Some(1));
        let mut h = HealthView::all_up();
        h.set_link_down(LinkName::between("tor-4-1", "agg-4-1"));
        let r = evaluate(&g, &h, &pairs);
        let pod4_fracs: Vec<f64> = r
            .pairs
            .iter()
            .filter(|p| g.node(p.src).pod == Some(4) || g.node(p.dst).pod == Some(4))
            .map(|p| p.fraction())
            .collect();
        assert_eq!(pod4_fracs.len(), 18);
        for f in pod4_fracs {
            assert!((f - 0.75).abs() < 1e-6, "got {f}");
        }
    }

    #[test]
    fn incremental_matches_full() {
        let g = fig7();
        let dc = DatacenterId::new("dc1");
        let pairs = select_tor_pairs(&g, &dc, Some(1));
        let base = evaluate(&g, &HealthView::all_up(), &pairs);

        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("agg-3-1"));
        h.set_device_down(DeviceName::new("agg-3-2"));

        let mut touched = HashSet::new();
        touched.insert((dc.clone(), 3u32));
        let inc = base.evaluate_incremental(&g, &h, &touched);
        let full = evaluate(&g, &h, &pairs);
        for (a, b) in inc.pairs.iter().zip(full.pairs.iter()) {
            assert!((a.current_mbps - b.current_mbps).abs() < 1.0);
        }
    }

    #[test]
    fn empty_report_is_vacuously_fine() {
        let r = CapacityReport { pairs: vec![] };
        assert_eq!(r.fraction_meeting(0.5), 1.0);
        assert_eq!(r.worst_fraction(), 1.0);
    }
}
