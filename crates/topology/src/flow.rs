//! Dinic max-flow over a [`NetworkGraph`] under a [`HealthView`].
//!
//! The capacity invariant of §7.2 ("99% of the ToR pairs in the DC should
//! have at least 50% of their baseline capacity") needs the achievable
//! bandwidth between ToR pairs. We compute it as max-flow on the usable
//! subgraph: each undirected physical link contributes capacity in both
//! directions (full-duplex), and a link is usable only if it and both its
//! endpoint devices are up.
//!
//! Dinic's algorithm is O(V²E) in general but effectively linear on the
//! shallow, high-multiplicity fabrics we evaluate; the Fig-7 fabric solves
//! in microseconds.

use crate::graph::{HealthView, NetworkGraph, NodeId};

/// Internal residual-graph arc.
#[derive(Debug, Clone)]
struct Arc {
    to: u32,
    cap: f64,
    /// index of the reverse arc in `arcs`
    rev: u32,
}

/// A reusable Dinic solver instance over a fixed usable subgraph.
struct Dinic {
    arcs: Vec<Arc>,
    head: Vec<Vec<u32>>, // per-node arc indices
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            arcs: Vec::new(),
            head: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, u: u32, v: u32, cap: f64) {
        let a = self.arcs.len() as u32;
        self.arcs.push(Arc {
            to: v,
            cap,
            rev: a + 1,
        });
        self.arcs.push(Arc {
            to: u,
            cap: 0.0,
            rev: a,
        });
        self.head[u as usize].push(a);
        self.head[v as usize].push(a + 1);
    }

    /// Add an undirected (full-duplex) edge: capacity `cap` each way.
    fn add_undirected(&mut self, u: u32, v: u32, cap: f64) {
        self.add_edge(u, v, cap);
        self.add_edge(v, u, cap);
    }

    fn bfs(&mut self, s: u32, t: u32) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut q = std::collections::VecDeque::new();
        self.level[s as usize] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &self.head[u as usize] {
                let a = &self.arcs[ai as usize];
                if a.cap > 1e-9 && self.level[a.to as usize] < 0 {
                    self.level[a.to as usize] = self.level[u as usize] + 1;
                    q.push_back(a.to);
                }
            }
        }
        self.level[t as usize] >= 0
    }

    fn dfs(&mut self, u: u32, t: u32, f: f64) -> f64 {
        if u == t {
            return f;
        }
        while self.iter[u as usize] < self.head[u as usize].len() {
            let ai = self.head[u as usize][self.iter[u as usize]] as usize;
            let (to, cap) = (self.arcs[ai].to, self.arcs[ai].cap);
            if cap > 1e-9 && self.level[to as usize] == self.level[u as usize] + 1 {
                let d = self.dfs(to, t, f.min(cap));
                if d > 1e-9 {
                    let rev = self.arcs[ai].rev as usize;
                    self.arcs[ai].cap -= d;
                    self.arcs[rev].cap += d;
                    return d;
                }
            }
            self.iter[u as usize] += 1;
        }
        0.0
    }

    fn max_flow(&mut self, s: u32, t: u32) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= 1e-9 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Maximum achievable bandwidth (Mbps) between two devices over usable
/// links. Returns `0.0` if either endpoint device is down or no usable
/// path exists.
pub fn max_flow(graph: &NetworkGraph, health: &HealthView, s: NodeId, t: NodeId) -> f64 {
    max_flow_scoped(graph, health, s, t, |_| true)
}

/// Max-flow restricted to nodes for which `allowed` returns true (both
/// endpoints must be allowed). Used by the capacity evaluator to solve
/// ToR-pair flows on the relevant pods + shared tiers only — on a
/// pod-layered fabric that shrinks each solve from the whole-fabric edge
/// set to a few hundred edges.
pub fn max_flow_scoped(
    graph: &NetworkGraph,
    health: &HealthView,
    s: NodeId,
    t: NodeId,
    allowed: impl Fn(NodeId) -> bool,
) -> f64 {
    if s == t {
        return f64::INFINITY;
    }
    if !health.device_up(&graph.node(s).name) || !health.device_up(&graph.node(t).name) {
        return 0.0;
    }
    let mut d = Dinic::new(graph.node_count());
    for (_, e) in graph.edges() {
        if allowed(e.a) && allowed(e.b) && health.link_usable(&e.name) {
            d.add_undirected(e.a.0, e.b.0, e.capacity_mbps);
        }
    }
    d.max_flow(s.0, t.0)
}

/// Max-flow between the same source and several sinks, reusing the edge
/// scan (the residual graph is rebuilt per sink — capacities must reset).
pub fn max_flow_one_to_many(
    graph: &NetworkGraph,
    health: &HealthView,
    s: NodeId,
    sinks: &[NodeId],
) -> Vec<f64> {
    sinks
        .iter()
        .map(|&t| max_flow(graph, health, s, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DcnSpec;
    use statesman_types::{DeviceName, LinkName};

    fn fig7() -> NetworkGraph {
        DcnSpec::fig7("dc1").build()
    }

    fn node(g: &NetworkGraph, name: &str) -> NodeId {
        g.node_id(&DeviceName::new(name)).unwrap()
    }

    #[test]
    fn baseline_tor_pair_capacity_is_4x_uplink() {
        let g = fig7();
        let h = HealthView::all_up();
        // ToR has 4 x 10G uplinks; cross-pod flow is bounded by them.
        let f = max_flow(&g, &h, node(&g, "tor-1-1"), node(&g, "tor-2-1"));
        assert!((f - 40_000.0).abs() < 1.0, "got {f}");
    }

    #[test]
    fn one_agg_down_gives_75_percent() {
        let g = fig7();
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("agg-1-1"));
        let f = max_flow(&g, &h, node(&g, "tor-1-1"), node(&g, "tor-2-1"));
        assert!((f - 30_000.0).abs() < 1.0, "got {f}");
    }

    #[test]
    fn two_aggs_down_gives_50_percent() {
        let g = fig7();
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("agg-1-1"));
        h.set_device_down(DeviceName::new("agg-1-2"));
        let f = max_flow(&g, &h, node(&g, "tor-1-1"), node(&g, "tor-2-1"));
        assert!((f - 20_000.0).abs() < 1.0, "got {f}");
    }

    #[test]
    fn link_down_and_its_agg_down_overlap() {
        // The §7.2 subtlety at box E: if link ToR1-Agg1 is already down,
        // taking Agg1 down does NOT further reduce ToR1's capacity.
        let g = fig7();
        let mut h = HealthView::all_up();
        h.set_link_down(LinkName::between("tor-4-1", "agg-4-1"));
        let before = max_flow(&g, &h, node(&g, "tor-4-1"), node(&g, "tor-5-1"));
        assert!((before - 30_000.0).abs() < 1.0, "got {before}");
        h.set_device_down(DeviceName::new("agg-4-1"));
        let after = max_flow(&g, &h, node(&g, "tor-4-1"), node(&g, "tor-5-1"));
        assert!((after - before).abs() < 1.0, "got {after} vs {before}");
    }

    #[test]
    fn intra_pod_flow_unaffected_by_other_pods() {
        let g = fig7();
        let mut h = HealthView::all_up();
        for a in 1..=4 {
            h.set_device_down(DeviceName::new(format!("agg-9-{a}")));
        }
        let f = max_flow(&g, &h, node(&g, "tor-1-1"), node(&g, "tor-1-2"));
        assert!((f - 40_000.0).abs() < 1.0, "got {f}");
    }

    #[test]
    fn down_endpoint_means_zero() {
        let g = fig7();
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("tor-1-1"));
        let f = max_flow(&g, &h, node(&g, "tor-1-1"), node(&g, "tor-2-1"));
        assert_eq!(f, 0.0);
    }

    #[test]
    fn all_aggs_down_disconnects_pod() {
        let g = fig7();
        let mut h = HealthView::all_up();
        for a in 1..=4 {
            h.set_device_down(DeviceName::new(format!("agg-1-{a}")));
        }
        let f = max_flow(&g, &h, node(&g, "tor-1-1"), node(&g, "tor-2-1"));
        assert_eq!(f, 0.0);
    }

    #[test]
    fn self_flow_is_infinite() {
        let g = fig7();
        let h = HealthView::all_up();
        assert!(max_flow(&g, &h, node(&g, "tor-1-1"), node(&g, "tor-1-1")).is_infinite());
    }

    #[test]
    fn one_to_many_matches_individual() {
        let g = fig7();
        let h = HealthView::all_up();
        let s = node(&g, "tor-1-1");
        let sinks = vec![node(&g, "tor-2-1"), node(&g, "tor-3-1")];
        let many = max_flow_one_to_many(&g, &h, s, &sinks);
        for (i, &t) in sinks.iter().enumerate() {
            assert_eq!(many[i], max_flow(&g, &h, s, t));
        }
    }
}
