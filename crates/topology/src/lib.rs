#![warn(missing_docs)]

//! # statesman-topology
//!
//! Network topology model and graph algorithms for the Statesman
//! reproduction.
//!
//! The checker "maintains a base network state graph using values from
//! the OS, computes difference between TS and OS, and checks invariants
//! on the new network state" (paper, slides on maintaining invariants).
//! This crate provides:
//!
//! * [`NetworkGraph`] — devices (with roles and home datacenters) and
//!   capacitated links, plus a [`HealthView`] overlay describing which
//!   devices/links are effectively up in a given state;
//! * builders for the paper's evaluation topologies: the Fig-7 intra-DC
//!   fabric (pods of ToRs and Aggs under a core tier) and the Fig-9 WAN
//!   (full mesh of datacenters with two border routers each);
//! * algorithms the invariants and applications need: BFS connectivity and
//!   components, Yen's k-shortest paths, Dinic max-flow, and ToR-pair
//!   capacity evaluation with an incremental (pod-scoped) mode.

pub mod builder;
pub mod capacity;
pub mod flow;
pub mod graph;
pub mod par;
pub mod paths;

pub use builder::{DcnSpec, DeploymentSpec, WanSpec};
pub use capacity::{CapacityReport, TorPairCapacity};
pub use flow::max_flow;
pub use graph::{EdgeId, HealthView, LinkInfo, NetworkGraph, NodeId, NodeInfo};
pub use paths::k_shortest_paths;
