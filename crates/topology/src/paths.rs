//! Path enumeration: shortest path and Yen's k-shortest (loopless) paths.
//!
//! The inter-DC TE application allocates traffic "along different WAN
//! paths" (§7.3). It needs a small set of candidate paths per DC pair;
//! we provide Yen's algorithm over hop count with deterministic
//! tie-breaking (lexicographic by node id sequence) so TE runs are
//! reproducible.

use crate::graph::{HealthView, NetworkGraph, NodeId};
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// A loopless path as a node sequence (first = source, last = sink).
pub type NodePath = Vec<NodeId>;

/// Shortest path by hop count over usable links, with deterministic
/// tie-breaking (prefer lexicographically smaller node sequences).
/// Returns `None` if unreachable or an endpoint device is down.
pub fn shortest_path(
    graph: &NetworkGraph,
    health: &HealthView,
    s: NodeId,
    t: NodeId,
) -> Option<NodePath> {
    shortest_path_avoiding(graph, health, s, t, &HashSet::new(), &HashSet::new())
}

/// Shortest path that must not use any node in `banned_nodes` nor any
/// (undirected) edge in `banned_edges` (edges keyed as ordered node
/// pairs with the smaller id first). Used as the spur computation of
/// Yen's algorithm.
fn shortest_path_avoiding(
    graph: &NetworkGraph,
    health: &HealthView,
    s: NodeId,
    t: NodeId,
    banned_nodes: &HashSet<NodeId>,
    banned_edges: &HashSet<(NodeId, NodeId)>,
) -> Option<NodePath> {
    if banned_nodes.contains(&s) || banned_nodes.contains(&t) {
        return None;
    }
    if !health.device_up(&graph.node(s).name) || !health.device_up(&graph.node(t).name) {
        return None;
    }
    if s == t {
        return Some(vec![s]);
    }
    // BFS with parent tracking; neighbor order is sorted for determinism.
    let mut parent: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut seen = vec![false; graph.node_count()];
    seen[s.0 as usize] = true;
    let mut q = VecDeque::new();
    q.push_back(s);
    while let Some(u) = q.pop_front() {
        let mut nexts: Vec<NodeId> = Vec::new();
        for &(e, v) in graph.neighbors(u) {
            let key = edge_key(u, v);
            if banned_edges.contains(&key) || banned_nodes.contains(&v) {
                continue;
            }
            if !health.link_usable(&graph.edge(e).name) {
                continue;
            }
            if !seen[v.0 as usize] {
                nexts.push(v);
            }
        }
        nexts.sort_unstable();
        for v in nexts {
            if seen[v.0 as usize] {
                continue;
            }
            seen[v.0 as usize] = true;
            parent[v.0 as usize] = Some(u);
            if v == t {
                // reconstruct
                let mut path = vec![t];
                let mut cur = t;
                while let Some(p) = parent[cur.0 as usize] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            q.push_back(v);
        }
    }
    None
}

fn edge_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Candidate path ordered by (length, node sequence) for the Yen
/// candidate heap (BinaryHeap is a max-heap, so we invert the ordering).
#[derive(PartialEq, Eq)]
struct Candidate(NodePath);

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // shorter first, then lexicographically smaller first => reverse
        // for max-heap.
        other
            .0
            .len()
            .cmp(&self.0.len())
            .then_with(|| other.0.cmp(&self.0))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Yen's k-shortest loopless paths by hop count. Returns at most `k`
/// paths, shortest first; deterministic given the graph.
pub fn k_shortest_paths(
    graph: &NetworkGraph,
    health: &HealthView,
    s: NodeId,
    t: NodeId,
    k: usize,
) -> Vec<NodePath> {
    let mut result: Vec<NodePath> = Vec::new();
    if k == 0 {
        return result;
    }
    let first = match shortest_path(graph, health, s, t) {
        Some(p) => p,
        None => return result,
    };
    result.push(first);
    let mut candidates: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut seen_candidates: HashSet<NodePath> = HashSet::new();

    while result.len() < k {
        let prev = result.last().unwrap().clone();
        // Spur from every node of the previous path except the sink.
        for i in 0..prev.len() - 1 {
            let spur_node = prev[i];
            let root = &prev[..=i];
            let mut banned_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
            for p in &result {
                if p.len() > i + 1 && p[..=i] == *root {
                    banned_edges.insert(edge_key(p[i], p[i + 1]));
                }
            }
            // Ban root nodes (except the spur node) to keep paths loopless.
            let banned_nodes: HashSet<NodeId> = root[..i].iter().copied().collect();
            if let Some(spur) =
                shortest_path_avoiding(graph, health, spur_node, t, &banned_nodes, &banned_edges)
            {
                let mut total = root[..i].to_vec();
                total.extend(spur);
                if seen_candidates.insert(total.clone()) {
                    candidates.push(Candidate(total));
                }
            }
        }
        match candidates.pop() {
            Some(Candidate(p)) => {
                if !result.contains(&p) {
                    result.push(p);
                }
            }
            None => break,
        }
    }
    result
}

/// The links along a node path, as canonical link names.
pub fn path_links(graph: &NetworkGraph, path: &[NodeId]) -> Vec<statesman_types::LinkName> {
    path.windows(2)
        .map(|w| {
            statesman_types::LinkName::between(
                graph.node(w[0]).name.clone(),
                graph.node(w[1]).name.clone(),
            )
        })
        .collect()
}

/// The minimum nominal capacity along a path (its bottleneck), Mbps.
pub fn path_bottleneck(graph: &NetworkGraph, path: &[NodeId]) -> f64 {
    path_links(graph, path)
        .iter()
        .filter_map(|l| graph.edge_id(l).map(|e| graph.edge(e).capacity_mbps))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WanSpec;
    use statesman_types::{DeviceName, LinkName};

    fn wan() -> NetworkGraph {
        WanSpec::fig9().build()
    }

    fn node(g: &NetworkGraph, n: &str) -> NodeId {
        g.node_id(&DeviceName::new(n)).unwrap()
    }

    #[test]
    fn direct_path_is_shortest() {
        let g = wan();
        let h = HealthView::all_up();
        // br-1 (dc1 plane 0) and br-3 (dc2 plane 0) share a direct link.
        let p = shortest_path(&g, &h, node(&g, "br-1"), node(&g, "br-3")).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn planes_are_disjoint_in_standalone_wan() {
        // The Fig-9 mesh pairs same-plane border routers; the two planes
        // only interconnect through the DC fabrics (DeploymentSpec), so in
        // the standalone WAN br-1 (plane 0) cannot reach br-4 (plane 1).
        let g = wan();
        let h = HealthView::all_up();
        assert!(shortest_path(&g, &h, node(&g, "br-1"), node(&g, "br-4")).is_none());
        // Same-plane detour: br-1 to br-3 avoiding the direct link goes
        // through another plane-0 router (3 nodes).
        let ps = k_shortest_paths(&g, &h, node(&g, "br-1"), node(&g, "br-3"), 3);
        assert_eq!(ps[0].len(), 2);
        assert!(ps[1].len() == 3);
    }

    #[test]
    fn k_shortest_returns_increasing_lengths() {
        let g = wan();
        let h = HealthView::all_up();
        let ps = k_shortest_paths(&g, &h, node(&g, "br-1"), node(&g, "br-3"), 4);
        assert!(!ps.is_empty());
        for w in ps.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
        // All paths are loopless and distinct.
        for p in &ps {
            let set: HashSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len(), "loop in {p:?}");
        }
        let set: HashSet<_> = ps.iter().collect();
        assert_eq!(set.len(), ps.len());
    }

    #[test]
    fn k_shortest_respects_health() {
        let g = wan();
        let mut h = HealthView::all_up();
        h.set_link_down(LinkName::between("br-1", "br-3"));
        let ps = k_shortest_paths(&g, &h, node(&g, "br-1"), node(&g, "br-3"), 3);
        assert!(!ps.is_empty());
        assert!(ps[0].len() >= 3, "direct link is down; got {:?}", ps[0]);
    }

    #[test]
    fn unreachable_returns_empty() {
        let g = wan();
        let mut h = HealthView::all_up();
        // Cut br-8 off entirely.
        for l in g.links_of_device(&DeviceName::new("br-8")) {
            h.set_link_down(l);
        }
        assert!(shortest_path(&g, &h, node(&g, "br-1"), node(&g, "br-8")).is_none());
        assert!(k_shortest_paths(&g, &h, node(&g, "br-1"), node(&g, "br-8"), 3).is_empty());
    }

    #[test]
    fn path_links_and_bottleneck() {
        let g = wan();
        let h = HealthView::all_up();
        let p = shortest_path(&g, &h, node(&g, "br-1"), node(&g, "br-3")).unwrap();
        let links = path_links(&g, &p);
        assert_eq!(links.len(), 1);
        assert_eq!(path_bottleneck(&g, &p), 100_000.0);
    }

    #[test]
    fn determinism() {
        let g = wan();
        let h = HealthView::all_up();
        let a = k_shortest_paths(&g, &h, node(&g, "br-1"), node(&g, "br-7"), 5);
        let b = k_shortest_paths(&g, &h, node(&g, "br-1"), node(&g, "br-7"), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn self_path() {
        let g = wan();
        let h = HealthView::all_up();
        let p = shortest_path(&g, &h, node(&g, "br-1"), node(&g, "br-1")).unwrap();
        assert_eq!(p, vec![node(&g, "br-1")]);
    }
}
