//! Property-based tests for the topology algorithms on randomized fabrics
//! and randomized failure sets.

use proptest::prelude::*;
use statesman_topology::{
    capacity, graph::components, k_shortest_paths, max_flow, DcnSpec, HealthView, NetworkGraph,
};
use statesman_types::{DatacenterId, DeviceName, DeviceRole};

/// A randomized (but valid) fabric spec.
fn spec_strategy() -> impl Strategy<Value = DcnSpec> {
    (1..4u32, 1..4u32, 1..4u32, 1..4u32).prop_map(|(pods, aggs, tors, cores)| DcnSpec {
        name: "dcp".into(),
        pods,
        aggs_per_pod: aggs,
        tors_per_pod: tors,
        cores,
        tor_agg_mbps: 10_000.0,
        agg_core_mbps: 40_000.0,
    })
}

/// A random subset of devices to fail, as indices.
fn failures_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..64usize, 0..6)
}

fn health_with_failures(graph: &NetworkGraph, failures: &[usize]) -> HealthView {
    let mut h = HealthView::all_up();
    let n = graph.node_count();
    for &f in failures {
        let id = statesman_topology::NodeId((f % n) as u32);
        h.set_device_down(graph.node(id).name.clone());
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn builders_produce_connected_layered_fabrics(spec in spec_strategy()) {
        let g = spec.build();
        prop_assert!(capacity::is_pod_layered(&g));
        let comps = components(&g, &HealthView::all_up());
        prop_assert_eq!(comps.len(), 1, "fabric must be one component");
        // Estimated variables track reality exactly.
        prop_assert_eq!(
            spec.estimated_variables(),
            g.node_count() * 10 + g.edge_count() * 8
        );
    }

    #[test]
    fn max_flow_is_bounded_and_monotone(
        spec in spec_strategy(),
        failures in failures_strategy()
    ) {
        let g = spec.build();
        let tors: Vec<_> = g.devices_with_role(DeviceRole::ToR);
        prop_assume!(tors.len() >= 2);
        let (s, t) = (tors[0], *tors.last().unwrap());
        prop_assume!(s != t);

        let all_up = HealthView::all_up();
        let baseline = max_flow(&g, &all_up, s, t);
        // Bounded by the source ToR's uplink capacity.
        let uplink_cap = g.degree(s) as f64 * spec.tor_agg_mbps;
        prop_assert!(baseline <= uplink_cap + 1.0);

        // Failures never increase flow (monotonicity).
        let h = health_with_failures(&g, &failures);
        let degraded = max_flow(&g, &h, s, t);
        prop_assert!(degraded <= baseline + 1.0, "degraded {degraded} > baseline {baseline}");
    }

    #[test]
    fn scoped_capacity_matches_unscoped(
        spec in spec_strategy(),
        failures in failures_strategy()
    ) {
        // The pod-scoped fast path must agree with whole-graph max-flow.
        let g = spec.build();
        let dc = DatacenterId::new("dcp");
        let pairs = capacity::select_tor_pairs(&g, &dc, Some(1));
        prop_assume!(!pairs.is_empty());
        let h = health_with_failures(&g, &failures);
        let report = capacity::evaluate(&g, &h, &pairs); // uses scoped path
        for p in &report.pairs {
            let unscoped = max_flow(&g, &h, p.src, p.dst);
            prop_assert!(
                (p.current_mbps - unscoped).abs() < 1.0,
                "pair {:?}: scoped {} vs unscoped {}",
                (p.src, p.dst),
                p.current_mbps,
                unscoped
            );
        }
    }

    #[test]
    fn k_shortest_paths_are_loopless_and_ordered(
        spec in spec_strategy(),
        k in 1..6usize
    ) {
        let g = spec.build();
        let h = HealthView::all_up();
        let tors = g.devices_with_role(DeviceRole::ToR);
        prop_assume!(tors.len() >= 2);
        let (s, t) = (tors[0], *tors.last().unwrap());
        prop_assume!(s != t);
        let paths = k_shortest_paths(&g, &h, s, t, k);
        prop_assert!(!paths.is_empty());
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].len() <= w[1].len(), "lengths must be non-decreasing");
            prop_assert_ne!(&w[0], &w[1], "paths must be distinct");
        }
        for p in &paths {
            prop_assert_eq!(p.first(), Some(&s));
            prop_assert_eq!(p.last(), Some(&t));
            let set: std::collections::HashSet<_> = p.iter().collect();
            prop_assert_eq!(set.len(), p.len(), "loopless");
        }
    }

    #[test]
    fn downsample_is_deterministic_subset(
        spec in spec_strategy(),
        max_pairs in 1..40usize,
        seed in any::<u64>()
    ) {
        let g = spec.build();
        let dc = DatacenterId::new("dcp");
        let pairs = capacity::select_tor_pairs(&g, &dc, None);
        let s1 = capacity::downsample_pairs(pairs.clone(), max_pairs, seed);
        let s2 = capacity::downsample_pairs(pairs.clone(), max_pairs, seed);
        prop_assert_eq!(&s1, &s2, "same seed, same sample");
        prop_assert!(s1.len() <= max_pairs.max(pairs.len().min(max_pairs)));
        let all: std::collections::HashSet<_> = pairs.iter().collect();
        for p in &s1 {
            prop_assert!(all.contains(p), "sample must be a subset");
        }
    }

    #[test]
    fn components_partition_the_up_nodes(
        spec in spec_strategy(),
        failures in failures_strategy()
    ) {
        let g = spec.build();
        let h = health_with_failures(&g, &failures);
        let comps = components(&g, &h);
        let mut seen = std::collections::HashSet::new();
        for comp in &comps {
            for id in comp {
                prop_assert!(seen.insert(*id), "node in two components");
                prop_assert!(h.device_up(&g.node(*id).name));
            }
        }
        // Every up node is in some component.
        let up_count = g
            .nodes()
            .filter(|(_, n)| h.device_up(&n.name))
            .count();
        prop_assert_eq!(seen.len(), up_count);
        let _ = DeviceName::new("x");
    }
}
