//! Device commands — the protocol-agnostic actions the updater's command
//! templates render into (paper §6.2).
//!
//! The updater "translates the difference between a state variable's OS
//! and TS values into device-specific commands" using "a pool of command
//! templates ... for each update action on each device model". In this
//! reproduction, [`DeviceCommand`] is the *rendered* command the simulator
//! executes; which protocol carries it (and with what latency/failure
//! surface) is decided by the device's [`DeviceModel`] and the adapter in
//! [`crate::protocol`].

use serde::{Deserialize, Serialize};
use statesman_types::{ControlPlaneMode, FlowLinkRule, LinkName, PowerStatus, SimTime};
use std::fmt;

/// A device hardware model. Determines which management protocol the
/// updater must use and how long operations take (§6.2's "device details").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceModel {
    /// An OpenFlow-capable switch: routing is programmed through the
    /// OpenFlow agent; management actions go through the vendor API.
    OpenFlowSwitch,
    /// A traditional switch running BGP: routing changes are rendered as
    /// route announcements/withdrawals over the vendor CLI.
    BgpRouter,
}

impl DeviceModel {
    /// Marketing-style model string, used as the command-template pool key.
    pub fn model_string(self) -> &'static str {
        match self {
            DeviceModel::OpenFlowSwitch => "of-9000",
            DeviceModel::BgpRouter => "cli-7500",
        }
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.model_string())
    }
}

/// A rendered management command against one device (or one of its link
/// interfaces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeviceCommand {
    /// Power the device on/off (PDU action).
    SetAdminPower(PowerStatus),
    /// Install new firmware and reboot. The device is unreachable for its
    /// reboot window while upgrading.
    UpgradeFirmware {
        /// Target firmware version string.
        version: String,
    },
    /// Select the boot image for the next boot.
    SetBootImage {
        /// Image identifier.
        image: String,
    },
    /// Configure the management interface (vendor API reachability).
    ConfigureMgmtInterface {
        /// Whether the management interface should be enabled.
        enabled: bool,
    },
    /// Start/stop the OpenFlow agent.
    SetOpenFlowAgent {
        /// Whether the agent should be running.
        running: bool,
    },
    /// Replace the device's flow→link routing rules.
    SetRoutingRules {
        /// The full desired rule set (declarative replace, not a delta —
        /// keeps the updater memoryless).
        rules: Vec<FlowLinkRule>,
    },
    /// Replace the device's link weight allocation.
    SetLinkWeights {
        /// (link, weight) pairs.
        weights: Vec<(LinkName, f64)>,
    },
    /// Admin-enable/disable one link interface on this device.
    SetLinkAdminPower {
        /// The link whose interface is toggled.
        link: LinkName,
        /// Desired admin status.
        status: PowerStatus,
    },
    /// Assign an IP to a link interface.
    SetLinkIp {
        /// The link.
        link: LinkName,
        /// Dotted-quad or CIDR string.
        ip: String,
    },
    /// Choose the control plane that owns a link interface.
    SetLinkControlPlane {
        /// The link.
        link: LinkName,
        /// OpenFlow or BGP.
        mode: ControlPlaneMode,
    },
}

impl DeviceCommand {
    /// Short verb for logs and template lookups.
    pub fn verb(&self) -> &'static str {
        match self {
            DeviceCommand::SetAdminPower(_) => "set-admin-power",
            DeviceCommand::UpgradeFirmware { .. } => "upgrade-firmware",
            DeviceCommand::SetBootImage { .. } => "set-boot-image",
            DeviceCommand::ConfigureMgmtInterface { .. } => "configure-mgmt",
            DeviceCommand::SetOpenFlowAgent { .. } => "set-of-agent",
            DeviceCommand::SetRoutingRules { .. } => "set-routing-rules",
            DeviceCommand::SetLinkWeights { .. } => "set-link-weights",
            DeviceCommand::SetLinkAdminPower { .. } => "set-link-admin-power",
            DeviceCommand::SetLinkIp { .. } => "set-link-ip",
            DeviceCommand::SetLinkControlPlane { .. } => "set-link-control-plane",
        }
    }

    /// True for commands that can be executed while the device's
    /// management plane is unreachable (only out-of-band power actions).
    pub fn is_out_of_band(&self) -> bool {
        matches!(self, DeviceCommand::SetAdminPower(_))
    }

    /// True for commands that reprogram forwarding (carried by the routing
    /// control plane — OpenFlow agent or BGP session — rather than the
    /// vendor management API).
    pub fn is_routing(&self) -> bool {
        matches!(
            self,
            DeviceCommand::SetRoutingRules { .. } | DeviceCommand::SetLinkWeights { .. }
        )
    }
}

impl fmt::Display for DeviceCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceCommand::SetAdminPower(p) => write!(f, "set-admin-power {p}"),
            DeviceCommand::UpgradeFirmware { version } => write!(f, "upgrade-firmware {version}"),
            DeviceCommand::SetBootImage { image } => write!(f, "set-boot-image {image}"),
            DeviceCommand::ConfigureMgmtInterface { enabled } => {
                write!(f, "configure-mgmt enabled={enabled}")
            }
            DeviceCommand::SetOpenFlowAgent { running } => {
                write!(f, "set-of-agent running={running}")
            }
            DeviceCommand::SetRoutingRules { rules } => {
                write!(f, "set-routing-rules ({} rules)", rules.len())
            }
            DeviceCommand::SetLinkWeights { weights } => {
                write!(f, "set-link-weights ({} links)", weights.len())
            }
            DeviceCommand::SetLinkAdminPower { link, status } => {
                write!(f, "set-link-admin-power {link} {status}")
            }
            DeviceCommand::SetLinkIp { link, ip } => write!(f, "set-link-ip {link} {ip}"),
            DeviceCommand::SetLinkControlPlane { link, mode } => {
                write!(f, "set-link-control-plane {link} {mode}")
            }
        }
    }
}

/// What happened to a submitted command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandOutcome {
    /// Accepted; the effect lands at `effective_at` (command latency, plus
    /// reboot windows for firmware upgrades).
    Applied {
        /// When the state change becomes visible.
        effective_at: SimTime,
    },
    /// The device's management plane did not respond (§2.1's slow-switch
    /// case). The command had no effect.
    TimedOut,
    /// The device rejected the command (fault injection or invalid state,
    /// e.g. routing change while the control plane is down).
    Rejected {
        /// Device-reported error code.
        code: String,
    },
}

impl CommandOutcome {
    /// True if the command was accepted.
    pub fn is_applied(&self) -> bool {
        matches!(self, CommandOutcome::Applied { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_are_stable() {
        assert_eq!(
            DeviceCommand::UpgradeFirmware {
                version: "7.1".into()
            }
            .verb(),
            "upgrade-firmware"
        );
        assert_eq!(
            DeviceCommand::SetAdminPower(PowerStatus::Off).verb(),
            "set-admin-power"
        );
    }

    #[test]
    fn out_of_band_classification() {
        assert!(DeviceCommand::SetAdminPower(PowerStatus::On).is_out_of_band());
        assert!(!DeviceCommand::ConfigureMgmtInterface { enabled: true }.is_out_of_band());
    }

    #[test]
    fn routing_classification() {
        assert!(DeviceCommand::SetRoutingRules { rules: vec![] }.is_routing());
        assert!(DeviceCommand::SetLinkWeights { weights: vec![] }.is_routing());
        assert!(!DeviceCommand::SetBootImage {
            image: "img".into()
        }
        .is_routing());
    }

    #[test]
    fn outcome_predicate() {
        assert!(CommandOutcome::Applied {
            effective_at: SimTime::ZERO
        }
        .is_applied());
        assert!(!CommandOutcome::TimedOut.is_applied());
        assert!(!CommandOutcome::Rejected { code: "E1".into() }.is_applied());
    }

    #[test]
    fn display_renders_for_logs() {
        let c = DeviceCommand::SetLinkAdminPower {
            link: LinkName::between("tor-4-1", "agg-4-1"),
            status: PowerStatus::Off,
        };
        assert_eq!(c.to_string(), "set-link-admin-power agg-4-1~tor-4-1 off");
    }

    #[test]
    fn model_strings_differ() {
        assert_ne!(
            DeviceModel::OpenFlowSwitch.model_string(),
            DeviceModel::BgpRouter.model_string()
        );
    }
}
