//! The shared discrete simulation clock.
//!
//! A [`SimClock`] is a cheap, cloneable handle to a single monotonically
//! advancing instant. The scenario driver owns advancement; every other
//! component (simulator, storage, checker, applications) only reads it.
//! Using one shared clock makes multi-component scenarios (Fig 8, Fig 10)
//! reproducible: there is exactly one notion of "now".

use parking_lot::RwLock;
use statesman_types::{SimDuration, SimTime};
use std::sync::Arc;

/// Shared handle to the simulation clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    inner: Arc<RwLock<SimTime>>,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at a given instant.
    pub fn starting_at(t: SimTime) -> Self {
        SimClock {
            inner: Arc::new(RwLock::new(t)),
        }
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        *self.inner.read()
    }

    /// Advance the clock by `d`, returning the new instant. Only scenario
    /// drivers should call this.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let mut t = self.inner.write();
        *t += d;
        *t
    }

    /// Set the clock to an absolute instant. Panics if the target is in
    /// the past — simulated time never rewinds.
    pub fn advance_to(&self, target: SimTime) -> SimTime {
        let mut t = self.inner.write();
        assert!(target >= *t, "clock cannot rewind: {} -> {}", *t, target);
        *t = target;
        *t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let c1 = SimClock::new();
        let c2 = c1.clone();
        c1.advance(SimDuration::from_secs(5));
        assert_eq!(c2.now(), SimTime::from_secs(5));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = SimClock::starting_at(SimTime::from_mins(1));
        c.advance_to(SimTime::from_mins(2));
        assert_eq!(c.now(), SimTime::from_mins(2));
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn rewind_panics() {
        let c = SimClock::starting_at(SimTime::from_mins(2));
        c.advance_to(SimTime::from_mins(1));
    }
}
