//! Fault injection: scheduled events and stochastic failure knobs.
//!
//! The paper's motivation leans on failures being routine: "because of
//! scale and dynamism, network failures during updates are inevitable"
//! (§6.2). A [`FaultPlan`] combines:
//!
//! * **scheduled events** — deterministic state changes at chosen
//!   instants, e.g. "raise FCS errors on ToR1–Agg1 in pod 4 at t=D"
//!   (the §7.2 scenario) or a link flap;
//! * **stochastic knobs** — per-command failure/timeout probabilities and
//!   latency jitter, drawn from the simulation's seeded RNG so runs stay
//!   reproducible.

use statesman_types::{DeviceName, LinkName, SimDuration, SimTime};

/// A deterministic, scheduled fault event.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Set a link's FCS error rate (0 clears it).
    SetFcsErrorRate {
        /// The affected link.
        link: LinkName,
        /// The new rate.
        rate: f64,
    },
    /// Set a link's packet drop rate.
    SetDropRate {
        /// The affected link.
        link: LinkName,
        /// The new rate.
        rate: f64,
    },
    /// Physically cut (or restore) a link.
    SetPhysicalLinkState {
        /// The affected link.
        link: LinkName,
        /// `true` = cut (oper-down regardless of admin state).
        cut: bool,
    },
    /// Make a device's power distribution unit (un)reachable.
    SetPowerUnitReachable {
        /// The affected device.
        device: DeviceName,
        /// New reachability.
        reachable: bool,
    },
    /// Crash a device's OpenFlow agent (it stays down until the updater
    /// reconfigures it).
    CrashOpenFlowAgent {
        /// The affected device.
        device: DeviceName,
    },
    /// Crash a whole device: it stops forwarding, its management plane
    /// goes silent, and volatile state (installed routing rules, link
    /// weights, any in-flight upgrade) is lost. It stays down until a
    /// [`FaultEvent::RestoreDevice`] fires.
    CrashDevice {
        /// The affected device.
        device: DeviceName,
    },
    /// Bring a crashed device back. Non-volatile state (firmware, boot
    /// image, management config) survives; routing state does not — the
    /// control loop must re-converge it.
    RestoreDevice {
        /// The affected device.
        device: DeviceName,
    },
    /// Crash-and-auto-reboot: the device goes down exactly like
    /// [`FaultEvent::CrashDevice`] but recovers on its own `down_ms`
    /// later, without a matching restore event.
    RebootDevice {
        /// The affected device.
        device: DeviceName,
        /// How long the device stays down, milliseconds.
        down_ms: u64,
    },
    /// Make a device's management plane (un)reachable without touching
    /// forwarding: the device keeps carrying traffic but stops answering
    /// the monitor and rejecting/ignoring updater commands. Pairs of
    /// these events model bounded unreachability windows (see
    /// [`FaultPlan::with_mgmt_outage`]).
    SetMgmtPlaneReachable {
        /// The affected device.
        device: DeviceName,
        /// New reachability.
        reachable: bool,
    },
}

/// A scheduled fault: fires the first time the simulation advances to or
/// past `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub event: FaultEvent,
}

/// The full fault plan for a simulation run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Scheduled events, in any order (the simulator sorts on ingest).
    pub scheduled: Vec<ScheduledFault>,
    /// Probability that any management command is rejected by the device.
    pub command_failure_prob: f64,
    /// Probability that any management command times out (no response; no
    /// effect).
    pub command_timeout_prob: f64,
    /// Base management-command latency, milliseconds.
    pub command_latency_ms: u64,
    /// Additional uniform latency jitter bound, milliseconds.
    pub command_jitter_ms: u64,
    /// Firmware upgrade reboot window, milliseconds (the device is down
    /// this long after an upgrade command lands).
    pub reboot_window_ms: u64,
    /// Probability that any given link starts a flap during one simulated
    /// minute (0 disables flapping). Flap starts are drawn from the
    /// simulation's seeded RNG in sorted link order, so runs with the same
    /// seed and step sequence flap identically.
    pub link_flap_prob_per_min: f64,
    /// How long a flapping link stays physically down, milliseconds.
    pub link_flap_duration_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            scheduled: Vec::new(),
            command_failure_prob: 0.0,
            command_timeout_prob: 0.0,
            // Management planes answer in ~2s; upgrades reboot for 8 min —
            // the §7.2 trace shows pods taking tens of minutes to drain
            // and upgrade, and §8's updater latency dominates with
            // multi-second device interactions.
            command_latency_ms: 2_000,
            command_jitter_ms: 500,
            reboot_window_ms: 8 * 60_000,
            link_flap_prob_per_min: 0.0,
            // When flapping is enabled, a flap outlasts a couple of
            // monitoring rounds — long enough for the loop to notice.
            link_flap_duration_ms: 90_000,
        }
    }
}

impl FaultPlan {
    /// A plan with no faults and zero latency — for logic-focused tests.
    pub fn ideal() -> Self {
        FaultPlan {
            scheduled: Vec::new(),
            command_failure_prob: 0.0,
            command_timeout_prob: 0.0,
            command_latency_ms: 0,
            command_jitter_ms: 0,
            reboot_window_ms: 0,
            link_flap_prob_per_min: 0.0,
            link_flap_duration_ms: 0,
        }
    }

    /// Add a scheduled event (builder style).
    pub fn with_event(mut self, at: SimTime, event: FaultEvent) -> Self {
        self.scheduled.push(ScheduledFault { at, event });
        self
    }

    /// The §7.2 scenario's fault: persistently high FCS on a pod-4
    /// ToR1–Agg1 link starting at `at`.
    pub fn with_fig8_fcs_fault(self, at: SimTime) -> Self {
        self.with_event(
            at,
            FaultEvent::SetFcsErrorRate {
                link: LinkName::between("tor-4-1", "agg-4-1"),
                rate: 0.02,
            },
        )
    }

    /// Crash a device at `at` and restore it at `at + down`.
    pub fn with_device_outage(self, device: &DeviceName, at: SimTime, down: SimDuration) -> Self {
        self.with_event(
            at,
            FaultEvent::CrashDevice {
                device: device.clone(),
            },
        )
        .with_event(
            at + down,
            FaultEvent::RestoreDevice {
                device: device.clone(),
            },
        )
    }

    /// Make a device's management plane unreachable for the window
    /// `[at, at + down)`: it keeps forwarding but the monitor can't poll
    /// it and the updater's commands time out.
    pub fn with_mgmt_outage(self, device: &DeviceName, at: SimTime, down: SimDuration) -> Self {
        self.with_event(
            at,
            FaultEvent::SetMgmtPlaneReachable {
                device: device.clone(),
                reachable: false,
            },
        )
        .with_event(
            at + down,
            FaultEvent::SetMgmtPlaneReachable {
                device: device.clone(),
                reachable: true,
            },
        )
    }

    /// Enable probabilistic link flapping (builder style).
    pub fn with_link_flapping(mut self, prob_per_min: f64, duration: SimDuration) -> Self {
        self.link_flap_prob_per_min = prob_per_min;
        self.link_flap_duration_ms = duration.as_millis();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_failure_free_but_slow() {
        let p = FaultPlan::default();
        assert_eq!(p.command_failure_prob, 0.0);
        assert!(p.command_latency_ms > 0);
        assert!(p.reboot_window_ms > 0);
    }

    #[test]
    fn ideal_plan_is_instant() {
        let p = FaultPlan::ideal();
        assert_eq!(p.command_latency_ms, 0);
        assert_eq!(p.reboot_window_ms, 0);
    }

    #[test]
    fn builder_appends_events() {
        let p = FaultPlan::ideal()
            .with_fig8_fcs_fault(SimTime::from_mins(100))
            .with_event(
                SimTime::from_mins(200),
                FaultEvent::SetPhysicalLinkState {
                    link: LinkName::between("a", "b"),
                    cut: true,
                },
            );
        assert_eq!(p.scheduled.len(), 2);
        assert_eq!(p.scheduled[0].at, SimTime::from_mins(100));
    }

    #[test]
    fn outage_builders_schedule_paired_events() {
        let dev = DeviceName::new("agg-1-1");
        let p = FaultPlan::ideal()
            .with_device_outage(&dev, SimTime::from_mins(10), SimDuration::from_mins(5))
            .with_mgmt_outage(&dev, SimTime::from_mins(20), SimDuration::from_mins(2));
        assert_eq!(p.scheduled.len(), 4);
        assert_eq!(
            p.scheduled[0].event,
            FaultEvent::CrashDevice {
                device: dev.clone()
            }
        );
        assert_eq!(p.scheduled[1].at, SimTime::from_mins(15));
        assert_eq!(
            p.scheduled[1].event,
            FaultEvent::RestoreDevice {
                device: dev.clone()
            }
        );
        assert_eq!(
            p.scheduled[2].event,
            FaultEvent::SetMgmtPlaneReachable {
                device: dev.clone(),
                reachable: false
            }
        );
        assert_eq!(p.scheduled[3].at, SimTime::from_mins(22));
    }

    #[test]
    fn flapping_builder_sets_knobs() {
        let p = FaultPlan::ideal().with_link_flapping(0.05, SimDuration::from_secs(45));
        assert_eq!(p.link_flap_prob_per_min, 0.05);
        assert_eq!(p.link_flap_duration_ms, 45_000);
    }
}
