//! Fault injection: scheduled events and stochastic failure knobs.
//!
//! The paper's motivation leans on failures being routine: "because of
//! scale and dynamism, network failures during updates are inevitable"
//! (§6.2). A [`FaultPlan`] combines:
//!
//! * **scheduled events** — deterministic state changes at chosen
//!   instants, e.g. "raise FCS errors on ToR1–Agg1 in pod 4 at t=D"
//!   (the §7.2 scenario) or a link flap;
//! * **stochastic knobs** — per-command failure/timeout probabilities and
//!   latency jitter, drawn from the simulation's seeded RNG so runs stay
//!   reproducible.

use statesman_types::{DeviceName, LinkName, SimTime};

/// A deterministic, scheduled fault event.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Set a link's FCS error rate (0 clears it).
    SetFcsErrorRate {
        /// The affected link.
        link: LinkName,
        /// The new rate.
        rate: f64,
    },
    /// Set a link's packet drop rate.
    SetDropRate {
        /// The affected link.
        link: LinkName,
        /// The new rate.
        rate: f64,
    },
    /// Physically cut (or restore) a link.
    SetPhysicalLinkState {
        /// The affected link.
        link: LinkName,
        /// `true` = cut (oper-down regardless of admin state).
        cut: bool,
    },
    /// Make a device's power distribution unit (un)reachable.
    SetPowerUnitReachable {
        /// The affected device.
        device: DeviceName,
        /// New reachability.
        reachable: bool,
    },
    /// Crash a device's OpenFlow agent (it stays down until the updater
    /// reconfigures it).
    CrashOpenFlowAgent {
        /// The affected device.
        device: DeviceName,
    },
}

/// A scheduled fault: fires the first time the simulation advances to or
/// past `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub event: FaultEvent,
}

/// The full fault plan for a simulation run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Scheduled events, in any order (the simulator sorts on ingest).
    pub scheduled: Vec<ScheduledFault>,
    /// Probability that any management command is rejected by the device.
    pub command_failure_prob: f64,
    /// Probability that any management command times out (no response; no
    /// effect).
    pub command_timeout_prob: f64,
    /// Base management-command latency, milliseconds.
    pub command_latency_ms: u64,
    /// Additional uniform latency jitter bound, milliseconds.
    pub command_jitter_ms: u64,
    /// Firmware upgrade reboot window, milliseconds (the device is down
    /// this long after an upgrade command lands).
    pub reboot_window_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            scheduled: Vec::new(),
            command_failure_prob: 0.0,
            command_timeout_prob: 0.0,
            // Management planes answer in ~2s; upgrades reboot for 8 min —
            // the §7.2 trace shows pods taking tens of minutes to drain
            // and upgrade, and §8's updater latency dominates with
            // multi-second device interactions.
            command_latency_ms: 2_000,
            command_jitter_ms: 500,
            reboot_window_ms: 8 * 60_000,
        }
    }
}

impl FaultPlan {
    /// A plan with no faults and zero latency — for logic-focused tests.
    pub fn ideal() -> Self {
        FaultPlan {
            scheduled: Vec::new(),
            command_failure_prob: 0.0,
            command_timeout_prob: 0.0,
            command_latency_ms: 0,
            command_jitter_ms: 0,
            reboot_window_ms: 0,
        }
    }

    /// Add a scheduled event (builder style).
    pub fn with_event(mut self, at: SimTime, event: FaultEvent) -> Self {
        self.scheduled.push(ScheduledFault { at, event });
        self
    }

    /// The §7.2 scenario's fault: persistently high FCS on a pod-4
    /// ToR1–Agg1 link starting at `at`.
    pub fn with_fig8_fcs_fault(self, at: SimTime) -> Self {
        self.with_event(
            at,
            FaultEvent::SetFcsErrorRate {
                link: LinkName::between("tor-4-1", "agg-4-1"),
                rate: 0.02,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_failure_free_but_slow() {
        let p = FaultPlan::default();
        assert_eq!(p.command_failure_prob, 0.0);
        assert!(p.command_latency_ms > 0);
        assert!(p.reboot_window_ms > 0);
    }

    #[test]
    fn ideal_plan_is_instant() {
        let p = FaultPlan::ideal();
        assert_eq!(p.command_latency_ms, 0);
        assert_eq!(p.reboot_window_ms, 0);
    }

    #[test]
    fn builder_appends_events() {
        let p = FaultPlan::ideal()
            .with_fig8_fcs_fault(SimTime::from_mins(100))
            .with_event(
                SimTime::from_mins(200),
                FaultEvent::SetPhysicalLinkState {
                    link: LinkName::between("a", "b"),
                    cut: true,
                },
            );
        assert_eq!(p.scheduled.len(), 2);
        assert_eq!(p.scheduled[0].at, SimTime::from_mins(100));
    }
}
