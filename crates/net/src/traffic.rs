//! Hop-by-hop forwarding over device routing tables.
//!
//! The forwarding engine makes the simulator's traffic counters *derive*
//! from installed routing state, the way real link loads derive from real
//! FIBs. The inter-DC TE application writes `DeviceRoutingRules` proposals;
//! once the checker accepts them and the updater programs the devices, the
//! engine routes each offered flow hop-by-hop through the rules and
//! accumulates per-direction link loads — which the monitor then reports
//! and Fig 10 plots.
//!
//! Forwarding semantics:
//!
//! * a flow starts at its ingress device with its full demand;
//! * at each device, the rules matching the flow's id split the remaining
//!   demand across out-links proportionally to rule weight;
//! * traffic over a link that is not oper-up is *lost* (counted in
//!   [`TrafficReport::lost_mbps`]) — the Fig-1 failure mode;
//! * traffic arriving at a device with no matching rule is delivered if
//!   the device is the flow's egress, otherwise lost;
//! * forwarding loops are cut by bounding the hop count; looped residue
//!   counts as lost.

use statesman_types::{DeviceName, LinkName};
use std::collections::HashMap;

/// One offered traffic flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Flow identifier matched against
    /// [`FlowLinkRule::flow`](statesman_types::FlowLinkRule).
    pub id: String,
    /// Ingress device.
    pub ingress: DeviceName,
    /// Egress device.
    pub egress: DeviceName,
    /// Offered demand, Mbps.
    pub demand_mbps: f64,
}

impl FlowSpec {
    /// Convenience constructor.
    pub fn new(
        id: impl Into<String>,
        ingress: impl Into<DeviceName>,
        egress: impl Into<DeviceName>,
        demand_mbps: f64,
    ) -> Self {
        FlowSpec {
            id: id.into(),
            ingress: ingress.into(),
            egress: egress.into(),
            demand_mbps,
        }
    }
}

/// The outcome of routing all offered flows.
#[derive(Debug, Clone, Default)]
pub struct TrafficReport {
    /// Load added per (link, direction): keyed by link name and the
    /// sending endpoint.
    pub link_loads: HashMap<(LinkName, DeviceName), f64>,
    /// Demand delivered end-to-end, Mbps.
    pub delivered_mbps: f64,
    /// Demand lost (down links, missing rules, loops), Mbps.
    pub lost_mbps: f64,
}

/// Inputs the engine needs about the environment, provided by the
/// simulator: rule lookup, link lookup, link usability and device
/// usability.
pub trait ForwardingEnv {
    /// Routing rules installed on `device` that match `flow`, as
    /// `(out_link, weight)` pairs. Devices that are down return none.
    fn matching_rules(&self, device: &DeviceName, flow: &str) -> Vec<(LinkName, f64)>;
    /// Whether a link is oper-up.
    fn link_oper_up(&self, link: &LinkName) -> bool;
    /// Whether a device is operational.
    fn device_operational(&self, device: &DeviceName) -> bool;
}

/// Maximum hops a unit of traffic may traverse before being declared
/// looped. WAN paths in the Fig-9 mesh are ≤3 hops; DC paths ≤4.
const MAX_HOPS: usize = 16;

/// Route all flows, accumulating link loads and loss.
pub fn route_flows(env: &impl ForwardingEnv, flows: &[FlowSpec]) -> TrafficReport {
    let mut report = TrafficReport::default();
    for flow in flows {
        route_one(env, flow, &mut report);
    }
    report
}

fn route_one(env: &impl ForwardingEnv, flow: &FlowSpec, report: &mut TrafficReport) {
    // Work list of (device, mbps, hops_remaining).
    let mut work: Vec<(DeviceName, f64, usize)> = Vec::new();
    if !env.device_operational(&flow.ingress) {
        report.lost_mbps += flow.demand_mbps;
        return;
    }
    work.push((flow.ingress.clone(), flow.demand_mbps, MAX_HOPS));

    while let Some((device, mbps, hops)) = work.pop() {
        if mbps <= 1e-9 {
            continue;
        }
        if device == flow.egress {
            report.delivered_mbps += mbps;
            continue;
        }
        if hops == 0 {
            report.lost_mbps += mbps;
            continue;
        }
        let rules = env.matching_rules(&device, &flow.id);
        let total_weight: f64 = rules.iter().map(|(_, w)| w.max(0.0)).sum();
        if rules.is_empty() || total_weight <= 1e-12 {
            report.lost_mbps += mbps;
            continue;
        }
        for (link, weight) in rules {
            let share = mbps * weight.max(0.0) / total_weight;
            if share <= 1e-9 {
                continue;
            }
            if !env.link_oper_up(&link) {
                report.lost_mbps += share;
                continue;
            }
            let peer = match link.peer_of(&device) {
                Some(p) => p.clone(),
                None => {
                    // Rule points at a link not attached to this device —
                    // a misprogrammed FIB. Traffic goes nowhere.
                    report.lost_mbps += share;
                    continue;
                }
            };
            *report
                .link_loads
                .entry((link.clone(), device.clone()))
                .or_insert(0.0) += share;
            if env.device_operational(&peer) {
                work.push((peer, share, hops - 1));
            } else {
                report.lost_mbps += share;
            }
        }
    }
}

impl TrafficReport {
    /// Directed load on `link` in the direction sent by `from`, Mbps.
    pub fn load_from(&self, link: &LinkName, from: &DeviceName) -> f64 {
        self.link_loads
            .get(&(link.clone(), from.clone()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Total offered demand accounted for (delivered + lost).
    pub fn accounted_mbps(&self) -> f64 {
        self.delivered_mbps + self.lost_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Toy environment: a static rule table and up/down sets.
    struct Env {
        rules: HashMap<(DeviceName, String), Vec<(LinkName, f64)>>,
        down_links: HashSet<LinkName>,
        down_devices: HashSet<DeviceName>,
    }

    impl Env {
        fn new() -> Self {
            Env {
                rules: HashMap::new(),
                down_links: HashSet::new(),
                down_devices: HashSet::new(),
            }
        }

        fn rule(&mut self, dev: &str, flow: &str, out: (&str, &str), w: f64) {
            self.rules
                .entry((DeviceName::new(dev), flow.to_string()))
                .or_default()
                .push((LinkName::between(out.0, out.1), w));
        }
    }

    impl ForwardingEnv for Env {
        fn matching_rules(&self, device: &DeviceName, flow: &str) -> Vec<(LinkName, f64)> {
            self.rules
                .get(&(device.clone(), flow.to_string()))
                .cloned()
                .unwrap_or_default()
        }
        fn link_oper_up(&self, link: &LinkName) -> bool {
            !self.down_links.contains(link)
        }
        fn device_operational(&self, device: &DeviceName) -> bool {
            !self.down_devices.contains(device)
        }
    }

    fn flow() -> FlowSpec {
        FlowSpec::new("f", "a", "c", 100.0)
    }

    #[test]
    fn linear_path_delivers() {
        let mut env = Env::new();
        env.rule("a", "f", ("a", "b"), 1.0);
        env.rule("b", "f", ("b", "c"), 1.0);
        let r = route_flows(&env, &[flow()]);
        assert_eq!(r.delivered_mbps, 100.0);
        assert_eq!(r.lost_mbps, 0.0);
        assert_eq!(
            r.load_from(&LinkName::between("a", "b"), &DeviceName::new("a")),
            100.0
        );
        assert_eq!(
            r.load_from(&LinkName::between("b", "c"), &DeviceName::new("b")),
            100.0
        );
    }

    #[test]
    fn ecmp_splits_by_weight() {
        let mut env = Env::new();
        env.rule("a", "f", ("a", "b"), 3.0);
        env.rule("a", "f", ("a", "d"), 1.0);
        env.rule("b", "f", ("b", "c"), 1.0);
        env.rule("d", "f", ("c", "d"), 1.0);
        let r = route_flows(&env, &[flow()]);
        assert!((r.delivered_mbps - 100.0).abs() < 1e-6);
        assert!(
            (r.load_from(&LinkName::between("a", "b"), &DeviceName::new("a")) - 75.0).abs() < 1e-6
        );
        assert!(
            (r.load_from(&LinkName::between("a", "d"), &DeviceName::new("a")) - 25.0).abs() < 1e-6
        );
    }

    #[test]
    fn down_link_loses_share() {
        let mut env = Env::new();
        env.rule("a", "f", ("a", "b"), 1.0);
        env.rule("a", "f", ("a", "d"), 1.0);
        env.rule("b", "f", ("b", "c"), 1.0);
        env.rule("d", "f", ("c", "d"), 1.0);
        env.down_links.insert(LinkName::between("a", "d"));
        let r = route_flows(&env, &[flow()]);
        assert!((r.delivered_mbps - 50.0).abs() < 1e-6);
        assert!((r.lost_mbps - 50.0).abs() < 1e-6);
    }

    #[test]
    fn down_transit_device_loses_traffic() {
        // The Fig-1 conflict: traffic allocated through B while B reboots.
        let mut env = Env::new();
        env.rule("a", "f", ("a", "b"), 1.0);
        env.rule("b", "f", ("b", "c"), 1.0);
        env.down_devices.insert(DeviceName::new("b"));
        let r = route_flows(&env, &[flow()]);
        assert_eq!(r.delivered_mbps, 0.0);
        assert_eq!(r.lost_mbps, 100.0);
    }

    #[test]
    fn missing_rule_loses_traffic() {
        let mut env = Env::new();
        env.rule("a", "f", ("a", "b"), 1.0);
        // b has no rule for f and is not the egress.
        let r = route_flows(&env, &[flow()]);
        assert_eq!(r.delivered_mbps, 0.0);
        assert_eq!(r.lost_mbps, 100.0);
    }

    #[test]
    fn loops_are_cut_and_counted() {
        let mut env = Env::new();
        env.rule("a", "f", ("a", "b"), 1.0);
        env.rule("b", "f", ("a", "b"), 1.0); // bounce back
        let r = route_flows(&env, &[flow()]);
        assert_eq!(r.delivered_mbps, 0.0);
        assert!((r.lost_mbps - 100.0).abs() < 1e-6);
        assert!((r.accounted_mbps() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn down_ingress_loses_everything() {
        let mut env = Env::new();
        env.rule("a", "f", ("a", "b"), 1.0);
        env.down_devices.insert(DeviceName::new("a"));
        let r = route_flows(&env, &[flow()]);
        assert_eq!(r.lost_mbps, 100.0);
    }

    #[test]
    fn rule_to_unattached_link_is_lost() {
        let mut env = Env::new();
        env.rule("a", "f", ("x", "y"), 1.0); // link not touching a
        let r = route_flows(&env, &[flow()]);
        assert_eq!(r.lost_mbps, 100.0);
    }
}
