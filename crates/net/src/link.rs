//! Per-link simulated state.
//!
//! A [`SimLink`] carries the admin/config state of one physical link plus
//! its measured counters. Operational status is *derived*: a link is
//! oper-up only if it is admin-up, not physically faulted, and both
//! endpoint devices are operational — the same cross-entity dependency the
//! Fig-4 model encodes and the checker reasons about.

use statesman_types::{ControlPlaneMode, LinkName, PowerStatus, SimTime};

/// Simulated state of one physical link.
#[derive(Debug, Clone)]
pub struct SimLink {
    /// Canonical link name.
    pub name: LinkName,
    /// Nominal capacity per direction, Mbps.
    pub capacity_mbps: f64,
    /// Administrative status of the interface (what
    /// `LinkAdminPower` writes control).
    pub admin_power: PowerStatus,
    /// Physical fault: a cut/flapping cable forces oper-down regardless of
    /// admin state (fault-injectable).
    pub physically_down: bool,
    /// Transient flap: the link is physically down until this instant
    /// (set by the simulator's probabilistic flapping; `None` = stable).
    pub flapping_until: Option<SimTime>,
    /// Assigned IP (config level).
    pub ip_assignment: Option<String>,
    /// Which control plane owns the interface.
    pub control_plane: ControlPlaneMode,
    /// Measured load in the A→B direction, Mbps (written by the forwarding
    /// engine).
    pub load_ab_mbps: f64,
    /// Measured load in the B→A direction, Mbps.
    pub load_ba_mbps: f64,
    /// Packet drop rate in `[0,1]`.
    pub drop_rate: f64,
    /// Frame-Check-Sequence error rate in `[0,1]` (what failure mitigation
    /// watches; raised by fault injection at scheduled times).
    pub fcs_error_rate: f64,
}

impl SimLink {
    /// A healthy, admin-up, unloaded link.
    pub fn healthy(name: LinkName, capacity_mbps: f64) -> Self {
        SimLink {
            name,
            capacity_mbps,
            admin_power: PowerStatus::On,
            physically_down: false,
            flapping_until: None,
            ip_assignment: None,
            control_plane: ControlPlaneMode::Bgp,
            load_ab_mbps: 0.0,
            load_ba_mbps: 0.0,
            drop_rate: 0.0,
            fcs_error_rate: 0.0,
        }
    }

    /// Whether a flap is in progress at `now`.
    pub fn flapping(&self, now: SimTime) -> bool {
        matches!(self.flapping_until, Some(until) if now < until)
    }

    /// Derived operational status at `now` given each endpoint's
    /// operational state.
    pub fn oper_up(&self, now: SimTime, a_operational: bool, b_operational: bool) -> bool {
        self.admin_power.is_on()
            && !self.physically_down
            && !self.flapping(now)
            && a_operational
            && b_operational
    }

    /// Reset measured loads (called before each forwarding recompute).
    pub fn clear_loads(&mut self) {
        self.load_ab_mbps = 0.0;
        self.load_ba_mbps = 0.0;
    }

    /// Add directed load from `from` toward the other endpoint. Panics if
    /// `from` is not an endpoint (forwarding-engine bug).
    pub fn add_load_from(&mut self, from: &statesman_types::DeviceName, mbps: f64) {
        if from == &self.name.a {
            self.load_ab_mbps += mbps;
        } else if from == &self.name.b {
            self.load_ba_mbps += mbps;
        } else {
            panic!("{from} is not an endpoint of {}", self.name);
        }
    }

    /// The higher of the two directed utilizations, in `[0, ∞)` (can
    /// exceed 1.0 when oversubscribed).
    pub fn peak_utilization(&self) -> f64 {
        self.load_ab_mbps.max(self.load_ba_mbps) / self.capacity_mbps
    }
}

/// Timestamped FCS observation used by fault plans to model persistent
/// (rather than one-off) error conditions: the §7.1 failure-mitigation app
/// reacts only to *persistently* high FCS rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FcsObservation {
    /// When the monitor sampled the rate.
    pub at: SimTime,
    /// The sampled rate.
    pub rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_types::DeviceName;

    fn link() -> SimLink {
        SimLink::healthy(LinkName::between("tor-1-1", "agg-1-1"), 10_000.0)
    }

    #[test]
    fn healthy_link_is_up_when_endpoints_up() {
        let l = link();
        let now = SimTime::ZERO;
        assert!(l.oper_up(now, true, true));
        assert!(!l.oper_up(now, false, true));
        assert!(!l.oper_up(now, true, false));
    }

    #[test]
    fn admin_down_forces_oper_down() {
        let mut l = link();
        l.admin_power = PowerStatus::Off;
        assert!(!l.oper_up(SimTime::ZERO, true, true));
    }

    #[test]
    fn physical_fault_forces_oper_down() {
        let mut l = link();
        l.physically_down = true;
        assert!(!l.oper_up(SimTime::ZERO, true, true));
    }

    #[test]
    fn flap_takes_link_down_until_it_expires() {
        let mut l = link();
        l.flapping_until = Some(SimTime::from_secs(30));
        assert!(!l.oper_up(SimTime::from_secs(10), true, true));
        assert!(l.oper_up(SimTime::from_secs(30), true, true));
    }

    #[test]
    fn directed_loads_accumulate() {
        let mut l = link();
        // canonical order: a = "agg-1-1", b = "tor-1-1"
        l.add_load_from(&DeviceName::new("agg-1-1"), 100.0);
        l.add_load_from(&DeviceName::new("tor-1-1"), 40.0);
        l.add_load_from(&DeviceName::new("agg-1-1"), 60.0);
        assert_eq!(l.load_ab_mbps, 160.0);
        assert_eq!(l.load_ba_mbps, 40.0);
        assert!((l.peak_utilization() - 0.016).abs() < 1e-9);
        l.clear_loads();
        assert_eq!(l.load_ab_mbps, 0.0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn foreign_loader_panics() {
        let mut l = link();
        l.add_load_from(&DeviceName::new("core-1"), 1.0);
    }
}
