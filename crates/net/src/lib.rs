#![warn(missing_docs)]

//! # statesman-net
//!
//! The simulated network substrate the Statesman reproduction manages.
//!
//! The paper's deployment ran against ten production Azure datacenters;
//! this crate substitutes a deterministic, discrete-time simulator that
//! exposes the same observable surface the monitor and updater depend on:
//!
//! * per-device state machines ([`device::SimDevice`]): admin power,
//!   firmware (with reboot windows during upgrades), boot image,
//!   management interface, OpenFlow agent, routing tables, CPU/memory
//!   counters;
//! * per-link state ([`link::SimLink`]): admin power, derived operational
//!   status, IP/control-plane configuration, traffic/drop/FCS counters;
//! * a hop-by-hop forwarding engine ([`traffic`]) that routes offered
//!   flows through device routing tables and accumulates per-direction
//!   link loads — what the monitor reports and Fig 10 plots;
//! * fault injection ([`fault::FaultPlan`]): command failures, latency
//!   spikes, FCS-error onset at scheduled times (the §7.2 "link with FCS
//!   error"), link flaps;
//! * protocol adapters ([`protocol`]): SNMP-like polling, OpenFlow-like
//!   rule programming, and a vendor-CLI-like management interface, each
//!   with its own latency model and error surface, so the monitor's
//!   protocol translation and the updater's command-template pool (§6.2,
//!   §6.3) are exercised faithfully.
//!
//! Everything is driven by a shared [`clock::SimClock`]; commands take
//! effect after simulated latency, and all randomness flows from a seeded
//! RNG, so scenario runs are reproducible bit-for-bit.

pub mod clock;
pub mod command;
pub mod device;
pub mod fault;
pub mod link;
pub mod protocol;
pub mod sim;
pub mod traffic;

pub use clock::SimClock;
pub use command::{CommandOutcome, DeviceCommand, DeviceModel};
pub use fault::{FaultEvent, FaultPlan};
pub use protocol::{DeviceProtocol, OpenFlowSim, ProtocolKind, SnmpSim, VendorCliSim};
pub use sim::{SimConfig, SimNetwork};
pub use traffic::{FlowSpec, TrafficReport};
