//! Protocol adapters: the device-facing interfaces the monitor and updater
//! use.
//!
//! Paper §3: the monitor "uses the corresponding protocol (e.g., SNMP or
//! OpenFlow) to collect the network statistics, and it translates
//! protocol-specific data to protocol-agnostic state variables"; the
//! updater does the reverse through its command-template pool. We model
//! three adapters with distinct capability envelopes:
//!
//! * [`SnmpSim`] — read-only polling of power/firmware/config state and
//!   counters; cannot execute anything;
//! * [`OpenFlowSim`] — reads and programs routing state, but only on
//!   OpenFlow-capable models with a running agent;
//! * [`VendorCliSim`] — the management-plane catch-all: power, firmware,
//!   boot image, interface configuration; also renders BGP route updates
//!   for traditional routers.
//!
//! Each adapter returns typed [`StateError`]s for its failure surface so
//! the monitor and updater can implement the §6.2 "stateless and automatic
//! failure handling" without parsing strings.

use crate::command::{CommandOutcome, DeviceCommand, DeviceModel};
use crate::sim::SimNetwork;
use statesman_types::{Attribute, DeviceName, LinkName, StateError, StateResult, Value};

/// Which protocol an adapter speaks (for logging and template lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// SNMP-style polling.
    Snmp,
    /// OpenFlow-style rule programming.
    OpenFlow,
    /// Vendor CLI / API management plane.
    VendorCli,
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ProtocolKind::Snmp => "snmp",
            ProtocolKind::OpenFlow => "openflow",
            ProtocolKind::VendorCli => "vendor-cli",
        })
    }
}

/// A device-facing protocol adapter.
pub trait DeviceProtocol: Send + Sync {
    /// Which protocol this adapter speaks.
    fn kind(&self) -> ProtocolKind;

    /// Poll one device's protocol-visible state as attribute/value pairs.
    /// Errors with [`StateError::DeviceTimeout`] when the device's
    /// management plane does not answer.
    fn collect_device(&self, device: &DeviceName) -> StateResult<Vec<(Attribute, Value)>>;

    /// Poll one link's protocol-visible state. Link state is reported by
    /// its endpoint devices; if neither endpoint answers the poll times
    /// out.
    fn collect_link(&self, link: &LinkName) -> StateResult<Vec<(Attribute, Value)>>;

    /// Execute a management command. Errors with
    /// [`StateError::InvalidRequest`] when the protocol cannot carry this
    /// command class at all (the updater then picks another template).
    fn execute(&self, device: &DeviceName, command: DeviceCommand) -> StateResult<CommandOutcome>;
}

/// SNMP-like adapter: read-only.
#[derive(Clone)]
pub struct SnmpSim {
    net: SimNetwork,
}

impl SnmpSim {
    /// Build over a simulator handle.
    pub fn new(net: SimNetwork) -> Self {
        SnmpSim { net }
    }
}

impl DeviceProtocol for SnmpSim {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Snmp
    }

    fn collect_device(&self, device: &DeviceName) -> StateResult<Vec<(Attribute, Value)>> {
        let now = self.net.clock().now();
        let d = self
            .net
            .device_snapshot(device)
            .ok_or_else(|| StateError::DeviceTimeout {
                device: device.to_string(),
                operation: "snmp-walk".into(),
            })?;
        if !d.mgmt_reachable(now) {
            return Err(StateError::DeviceTimeout {
                device: device.to_string(),
                operation: "snmp-walk".into(),
            });
        }
        Ok(vec![
            (Attribute::DeviceAdminPower, Value::Power(d.admin_power)),
            (
                Attribute::DevicePowerUnitReachable,
                Value::Bool(d.power_unit_reachable),
            ),
            (
                Attribute::DeviceFirmwareVersion,
                Value::text(d.observed_firmware()),
            ),
            (Attribute::DeviceBootImage, Value::text(&d.boot_image)),
            (
                Attribute::DeviceMgmtInterface,
                Value::Bool(d.mgmt_configured),
            ),
            (Attribute::DeviceCpuUtilization, Value::Float(d.cpu_util)),
            (Attribute::DeviceMemoryUtilization, Value::Float(d.mem_util)),
        ])
    }

    fn collect_link(&self, link: &LinkName) -> StateResult<Vec<(Attribute, Value)>> {
        let now = self.net.clock().now();
        let l = self
            .net
            .link_snapshot(link)
            .ok_or_else(|| StateError::DeviceTimeout {
                device: link.to_string(),
                operation: "snmp-walk".into(),
            })?;
        // Link counters are reported by whichever endpoint answers.
        let a_ok = self
            .net
            .device_snapshot(&link.a)
            .map(|d| d.mgmt_reachable(now))
            .unwrap_or(false);
        let b_ok = self
            .net
            .device_snapshot(&link.b)
            .map(|d| d.mgmt_reachable(now))
            .unwrap_or(false);
        if !a_ok && !b_ok {
            return Err(StateError::DeviceTimeout {
                device: link.to_string(),
                operation: "snmp-walk".into(),
            });
        }
        let oper = self.net.link_oper_up(link);
        Ok(vec![
            (Attribute::LinkAdminPower, Value::Power(l.admin_power)),
            (Attribute::LinkOperStatus, Value::oper(oper)),
            (Attribute::LinkTrafficLoadAB, Value::Float(l.load_ab_mbps)),
            (Attribute::LinkTrafficLoadBA, Value::Float(l.load_ba_mbps)),
            (Attribute::LinkPacketDropRate, Value::Float(l.drop_rate)),
            (Attribute::LinkFcsErrorRate, Value::Float(l.fcs_error_rate)),
            (
                Attribute::LinkIpAssignment,
                match &l.ip_assignment {
                    Some(ip) => Value::text(ip),
                    None => Value::None,
                },
            ),
            (
                Attribute::LinkControlPlane,
                Value::ControlPlane(l.control_plane),
            ),
        ])
    }

    fn execute(&self, _device: &DeviceName, command: DeviceCommand) -> StateResult<CommandOutcome> {
        Err(StateError::invalid(format!(
            "SNMP adapter is read-only; cannot execute {}",
            command.verb()
        )))
    }
}

/// OpenFlow-like adapter: routing state only, OpenFlow models only.
#[derive(Clone)]
pub struct OpenFlowSim {
    net: SimNetwork,
}

impl OpenFlowSim {
    /// Build over a simulator handle.
    pub fn new(net: SimNetwork) -> Self {
        OpenFlowSim { net }
    }

    fn require_openflow(&self, device: &DeviceName) -> StateResult<crate::device::SimDevice> {
        let d = self
            .net
            .device_snapshot(device)
            .ok_or_else(|| StateError::DeviceTimeout {
                device: device.to_string(),
                operation: "of-echo".into(),
            })?;
        if d.model != DeviceModel::OpenFlowSwitch {
            return Err(StateError::invalid(format!(
                "{device} is model {} — not OpenFlow-capable",
                d.model
            )));
        }
        Ok(d)
    }
}

impl DeviceProtocol for OpenFlowSim {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::OpenFlow
    }

    fn collect_device(&self, device: &DeviceName) -> StateResult<Vec<(Attribute, Value)>> {
        let now = self.net.clock().now();
        let d = self.require_openflow(device)?;
        if !d.mgmt_reachable(now) {
            return Err(StateError::DeviceTimeout {
                device: device.to_string(),
                operation: "of-echo".into(),
            });
        }
        Ok(vec![
            (
                Attribute::DeviceOpenFlowAgent,
                Value::Bool(d.of_agent_running),
            ),
            (
                Attribute::DeviceRoutingRules,
                Value::Routes(d.routing_rules.clone()),
            ),
            (
                Attribute::DeviceLinkWeights,
                Value::Routes(
                    // Represent weights as pseudo-rules for wire uniformity.
                    d.link_weights
                        .iter()
                        .map(|(l, w)| statesman_types::FlowLinkRule::new("*", l.clone(), *w))
                        .collect(),
                ),
            ),
        ])
    }

    fn collect_link(&self, _link: &LinkName) -> StateResult<Vec<(Attribute, Value)>> {
        // Link state is collected over SNMP in this deployment.
        Ok(Vec::new())
    }

    fn execute(&self, device: &DeviceName, command: DeviceCommand) -> StateResult<CommandOutcome> {
        if !command.is_routing() {
            return Err(StateError::invalid(format!(
                "OpenFlow adapter carries routing commands only, not {}",
                command.verb()
            )));
        }
        self.require_openflow(device)?;
        Ok(self.net.submit(device, command))
    }
}

/// Vendor-CLI-like adapter: the management plane. Executes everything
/// except OpenFlow rule programming (on BGP models it also renders routing
/// changes, as route announcements/withdrawals).
#[derive(Clone)]
pub struct VendorCliSim {
    net: SimNetwork,
}

impl VendorCliSim {
    /// Build over a simulator handle.
    pub fn new(net: SimNetwork) -> Self {
        VendorCliSim { net }
    }
}

impl DeviceProtocol for VendorCliSim {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::VendorCli
    }

    fn collect_device(&self, device: &DeviceName) -> StateResult<Vec<(Attribute, Value)>> {
        let now = self.net.clock().now();
        let d = self
            .net
            .device_snapshot(device)
            .ok_or_else(|| StateError::DeviceTimeout {
                device: device.to_string(),
                operation: "cli-show".into(),
            })?;
        if !d.mgmt_reachable(now) {
            return Err(StateError::DeviceTimeout {
                device: device.to_string(),
                operation: "cli-show".into(),
            });
        }
        let mut rows = vec![(
            Attribute::DeviceMgmtInterface,
            Value::Bool(d.mgmt_configured),
        )];
        if d.model == DeviceModel::BgpRouter {
            // BGP routers expose their RIB through the CLI.
            rows.push((
                Attribute::DeviceRoutingRules,
                Value::Routes(d.routing_rules.clone()),
            ));
        }
        Ok(rows)
    }

    fn collect_link(&self, _link: &LinkName) -> StateResult<Vec<(Attribute, Value)>> {
        Ok(Vec::new())
    }

    fn execute(&self, device: &DeviceName, command: DeviceCommand) -> StateResult<CommandOutcome> {
        if command.is_routing() {
            let d = self
                .net
                .device_snapshot(device)
                .ok_or_else(|| StateError::DeviceTimeout {
                    device: device.to_string(),
                    operation: "cli-exec".into(),
                })?;
            if d.model != DeviceModel::BgpRouter {
                return Err(StateError::invalid(format!(
                    "{device} is model {} — routing goes through OpenFlow",
                    d.model
                )));
            }
        }
        Ok(self.net.submit(device, command))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::sim::SimConfig;
    use statesman_topology::{DcnSpec, WanSpec};
    use statesman_types::SimDuration;

    fn dc_sim() -> SimNetwork {
        SimNetwork::new(
            &DcnSpec::tiny("dc1").build(),
            SimClock::new(),
            SimConfig::ideal(),
        )
    }

    fn wan_sim() -> SimNetwork {
        SimNetwork::new(
            &WanSpec::fig9().build(),
            SimClock::new(),
            SimConfig::ideal(),
        )
    }

    #[test]
    fn snmp_collects_device_and_link_state() {
        let net = dc_sim();
        let snmp = SnmpSim::new(net.clone());
        let rows = snmp.collect_device(&DeviceName::new("agg-1-1")).unwrap();
        assert!(rows
            .iter()
            .any(|(a, _)| *a == Attribute::DeviceFirmwareVersion));
        let link = LinkName::between("tor-1-1", "agg-1-1");
        let rows = snmp.collect_link(&link).unwrap();
        assert!(rows
            .iter()
            .any(|(a, v)| *a == Attribute::LinkOperStatus && v.as_oper().unwrap().is_up()));
    }

    #[test]
    fn snmp_cannot_write() {
        let net = dc_sim();
        let snmp = SnmpSim::new(net);
        let err = snmp
            .execute(
                &DeviceName::new("agg-1-1"),
                DeviceCommand::SetBootImage { image: "x".into() },
            )
            .unwrap_err();
        assert!(matches!(err, StateError::InvalidRequest { .. }));
    }

    #[test]
    fn snmp_times_out_on_rebooting_device() {
        let g = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 600_000;
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        let dev = DeviceName::new("agg-1-1");
        net.submit(
            &dev,
            DeviceCommand::UpgradeFirmware {
                version: "7".into(),
            },
        );
        net.step(SimDuration::from_millis(1));
        let snmp = SnmpSim::new(net);
        let err = snmp.collect_device(&dev).unwrap_err();
        assert!(matches!(err, StateError::DeviceTimeout { .. }));
    }

    #[test]
    fn link_polling_survives_one_dead_endpoint() {
        let g = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 600_000;
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        let dev = DeviceName::new("agg-1-1");
        net.submit(
            &dev,
            DeviceCommand::UpgradeFirmware {
                version: "7".into(),
            },
        );
        net.step(SimDuration::from_millis(1));
        let snmp = SnmpSim::new(net);
        let link = LinkName::between("tor-1-1", "agg-1-1");
        let rows = snmp.collect_link(&link).unwrap(); // tor-1-1 answers
        let oper = rows
            .iter()
            .find(|(a, _)| *a == Attribute::LinkOperStatus)
            .unwrap();
        assert!(!oper.1.as_oper().unwrap().is_up(), "peer is rebooting");
    }

    #[test]
    fn openflow_rejects_bgp_models() {
        let net = wan_sim();
        let of = OpenFlowSim::new(net);
        let err = of.collect_device(&DeviceName::new("br-1")).unwrap_err();
        assert!(matches!(err, StateError::InvalidRequest { .. }));
    }

    #[test]
    fn openflow_programs_routing_on_switches() {
        let net = dc_sim();
        let of = OpenFlowSim::new(net.clone());
        let dev = DeviceName::new("agg-1-1");
        let out = of
            .execute(&dev, DeviceCommand::SetRoutingRules { rules: vec![] })
            .unwrap();
        assert!(out.is_applied());
        // ...but refuses management commands.
        let err = of
            .execute(&dev, DeviceCommand::SetBootImage { image: "x".into() })
            .unwrap_err();
        assert!(matches!(err, StateError::InvalidRequest { .. }));
    }

    #[test]
    fn cli_carries_routing_on_bgp_only() {
        let wan = wan_sim();
        let cli = VendorCliSim::new(wan.clone());
        let out = cli
            .execute(
                &DeviceName::new("br-1"),
                DeviceCommand::SetRoutingRules { rules: vec![] },
            )
            .unwrap();
        assert!(out.is_applied());

        let dc = dc_sim();
        let cli = VendorCliSim::new(dc);
        let err = cli
            .execute(
                &DeviceName::new("agg-1-1"),
                DeviceCommand::SetRoutingRules { rules: vec![] },
            )
            .unwrap_err();
        assert!(matches!(err, StateError::InvalidRequest { .. }));
    }

    #[test]
    fn cli_exposes_bgp_rib() {
        let wan = wan_sim();
        let cli = VendorCliSim::new(wan);
        let rows = cli.collect_device(&DeviceName::new("br-1")).unwrap();
        assert!(rows
            .iter()
            .any(|(a, _)| *a == Attribute::DeviceRoutingRules));
    }
}
