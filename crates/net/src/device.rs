//! Per-device simulated state.
//!
//! A [`SimDevice`] models the management-visible state of one switch or
//! router: the full Fig-4 device chain (power → firmware → configuration →
//! routing) plus utilization counters. Firmware upgrades open a *reboot
//! window* during which the device is operationally down and its
//! management plane unreachable — exactly the behaviour that makes the
//! Fig-1/Fig-2 conflicts dangerous.

use crate::command::DeviceModel;
use statesman_types::{DeviceName, FlowLinkRule, LinkName, PowerStatus, SimTime};

/// Simulated state of one device.
#[derive(Debug, Clone)]
pub struct SimDevice {
    /// Device name (unique in the simulation).
    pub name: DeviceName,
    /// Hardware model — selects the protocol adapter and command
    /// templates.
    pub model: DeviceModel,
    /// Administrative power status (PDU setting).
    pub admin_power: PowerStatus,
    /// Whether the power distribution unit responds (fault-injectable).
    pub power_unit_reachable: bool,
    /// Running firmware version.
    pub firmware: String,
    /// In-flight upgrade: target version and when the reboot completes.
    pub upgrading: Option<(String, SimTime)>,
    /// Selected boot image.
    pub boot_image: String,
    /// Management interface configured and reachable.
    pub mgmt_configured: bool,
    /// Management-plane fault flag (fault-injectable): when `false` the
    /// device keeps forwarding but stops answering the monitor and
    /// ignores in-band commands — the "silent but alive" failure mode.
    pub mgmt_plane_reachable: bool,
    /// Crashed (whole-device failure, fault-injectable): not forwarding,
    /// not manageable. Cleared by a restore event or by
    /// [`SimDevice::settle_crash`] once `crash_reboot_at` passes.
    pub crashed: bool,
    /// For crash-and-auto-reboot faults: when the device comes back up.
    pub crash_reboot_at: Option<SimTime>,
    /// OpenFlow agent running (only meaningful on OpenFlow models).
    pub of_agent_running: bool,
    /// Flow→link routing rules currently installed.
    pub routing_rules: Vec<FlowLinkRule>,
    /// Link weight allocation currently installed.
    pub link_weights: Vec<(LinkName, f64)>,
    /// CPU utilization in `[0,1]` (random-walk counter).
    pub cpu_util: f64,
    /// Memory utilization in `[0,1]` (random-walk counter).
    pub mem_util: f64,
}

impl SimDevice {
    /// A healthy, powered, configured device running `firmware`.
    pub fn healthy(name: impl Into<DeviceName>, model: DeviceModel, firmware: &str) -> Self {
        SimDevice {
            name: name.into(),
            model,
            admin_power: PowerStatus::On,
            power_unit_reachable: true,
            firmware: firmware.to_string(),
            upgrading: None,
            boot_image: "default-image".to_string(),
            mgmt_configured: true,
            mgmt_plane_reachable: true,
            crashed: false,
            crash_reboot_at: None,
            of_agent_running: matches!(model, DeviceModel::OpenFlowSwitch),
            routing_rules: Vec::new(),
            link_weights: Vec::new(),
            cpu_util: 0.10,
            mem_util: 0.30,
        }
    }

    /// Finish an upgrade whose reboot window has elapsed.
    pub fn settle_upgrade(&mut self, now: SimTime) {
        if let Some((version, done_at)) = &self.upgrading {
            if now >= *done_at {
                self.firmware = version.clone();
                self.upgrading = None;
            }
        }
    }

    /// Crash the device: forwarding stops, the management plane goes
    /// silent, and volatile state — installed routing rules, link
    /// weights, any in-flight upgrade — is lost (it lived in the agent's
    /// memory / TCAM). Non-volatile state (firmware, boot image,
    /// management config) survives. If `reboot_at` is set the device
    /// recovers on its own at that instant; otherwise it stays down until
    /// explicitly restored.
    pub fn crash(&mut self, reboot_at: Option<SimTime>) {
        self.crashed = true;
        self.crash_reboot_at = reboot_at;
        self.upgrading = None;
        self.routing_rules.clear();
        self.link_weights.clear();
    }

    /// Bring a crashed device back up. The OpenFlow agent restarts with
    /// the boot sequence (whether it then stays up is the control loop's
    /// business); routing state stays empty until re-pushed.
    pub fn restore(&mut self) {
        self.crashed = false;
        self.crash_reboot_at = None;
        self.of_agent_running = matches!(self.model, DeviceModel::OpenFlowSwitch);
    }

    /// Recover from a crash-and-auto-reboot fault whose window elapsed.
    pub fn settle_crash(&mut self, now: SimTime) {
        if let Some(at) = self.crash_reboot_at {
            if now >= at {
                self.restore();
            }
        }
    }

    /// Whether the device is operational (powered, not mid-reboot, not
    /// crashed): the condition for its links to be oper-up and traffic to
    /// flow.
    pub fn is_operational(&self, now: SimTime) -> bool {
        self.admin_power.is_on() && !self.in_reboot_window(now) && !self.crashed
    }

    /// Whether the device is inside an upgrade reboot window.
    pub fn in_reboot_window(&self, now: SimTime) -> bool {
        match &self.upgrading {
            Some((_, done_at)) => now < *done_at,
            None => false,
        }
    }

    /// Whether the management plane answers (vendor API / SNMP). Requires
    /// power, a configured management interface, not rebooting, and no
    /// injected management-plane fault.
    pub fn mgmt_reachable(&self, now: SimTime) -> bool {
        self.is_operational(now) && self.mgmt_configured && self.mgmt_plane_reachable
    }

    /// Whether the routing control plane accepts programming: the
    /// management plane must be up, and for OpenFlow models the agent must
    /// run (Fig 4: routing control depends on device configuration).
    pub fn routing_controllable(&self, now: SimTime) -> bool {
        self.mgmt_reachable(now)
            && match self.model {
                DeviceModel::OpenFlowSwitch => self.of_agent_running,
                DeviceModel::BgpRouter => true,
            }
    }

    /// The firmware version the monitor observes: the running version
    /// (upgrades only become visible once the reboot completes).
    pub fn observed_firmware(&self) -> &str {
        &self.firmware
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_types::SimDuration;

    fn dev() -> SimDevice {
        SimDevice::healthy("agg-1-1", DeviceModel::OpenFlowSwitch, "6.0")
    }

    #[test]
    fn healthy_device_is_fully_up() {
        let d = dev();
        let now = SimTime::ZERO;
        assert!(d.is_operational(now));
        assert!(d.mgmt_reachable(now));
        assert!(d.routing_controllable(now));
    }

    #[test]
    fn reboot_window_takes_device_down() {
        let mut d = dev();
        let done = SimTime::from_mins(10);
        d.upgrading = Some(("7.0".into(), done));
        let mid = SimTime::from_mins(5);
        assert!(d.in_reboot_window(mid));
        assert!(!d.is_operational(mid));
        assert!(!d.mgmt_reachable(mid));
        assert_eq!(d.observed_firmware(), "6.0");

        d.settle_upgrade(done);
        assert!(d.is_operational(done));
        assert_eq!(d.observed_firmware(), "7.0");
        assert!(d.upgrading.is_none());
    }

    #[test]
    fn settle_before_window_is_noop() {
        let mut d = dev();
        d.upgrading = Some(("7.0".into(), SimTime::from_mins(10)));
        d.settle_upgrade(SimTime::from_mins(9));
        assert!(d.upgrading.is_some());
        assert_eq!(d.observed_firmware(), "6.0");
    }

    #[test]
    fn power_off_takes_everything_down() {
        let mut d = dev();
        d.admin_power = PowerStatus::Off;
        let now = SimTime::ZERO;
        assert!(!d.is_operational(now));
        assert!(!d.mgmt_reachable(now));
        assert!(!d.routing_controllable(now));
    }

    #[test]
    fn openflow_routing_needs_agent() {
        let mut d = dev();
        d.of_agent_running = false;
        assert!(d.mgmt_reachable(SimTime::ZERO));
        assert!(!d.routing_controllable(SimTime::ZERO));

        // BGP models don't need an agent.
        let mut bgp = SimDevice::healthy("br-1", DeviceModel::BgpRouter, "9.2");
        bgp.of_agent_running = false;
        assert!(bgp.routing_controllable(SimTime::ZERO));
    }

    #[test]
    fn crash_loses_volatile_state_and_all_reachability() {
        let mut d = dev();
        d.routing_rules = vec![statesman_types::FlowLinkRule::new(
            "f",
            LinkName::between("a", "b"),
            1.0,
        )];
        d.upgrading = Some(("7.0".into(), SimTime::from_mins(10)));
        d.crash(None);
        let now = SimTime::from_mins(1);
        assert!(!d.is_operational(now));
        assert!(!d.mgmt_reachable(now));
        assert!(d.routing_rules.is_empty());
        assert!(d.upgrading.is_none());
        assert_eq!(d.observed_firmware(), "6.0"); // non-volatile survives

        d.restore();
        assert!(d.is_operational(now));
        assert!(d.of_agent_running);
        assert!(d.routing_rules.is_empty()); // routing must be re-pushed
    }

    #[test]
    fn auto_reboot_crash_settles_on_time() {
        let mut d = dev();
        d.crash(Some(SimTime::from_mins(5)));
        d.settle_crash(SimTime::from_mins(4));
        assert!(d.crashed);
        d.settle_crash(SimTime::from_mins(5));
        assert!(!d.crashed);
        assert!(d.crash_reboot_at.is_none());
    }

    #[test]
    fn mgmt_plane_fault_blocks_management_not_forwarding() {
        let mut d = dev();
        d.mgmt_plane_reachable = false;
        let now = SimTime::ZERO;
        assert!(d.is_operational(now)); // still forwards traffic
        assert!(!d.mgmt_reachable(now)); // but is silent to management
        assert!(!d.routing_controllable(now));
    }

    #[test]
    fn mgmt_unconfigured_blocks_control_but_not_forwarding() {
        let mut d = dev();
        d.mgmt_configured = false;
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        assert!(d.is_operational(now)); // still forwards traffic
        assert!(!d.mgmt_reachable(now)); // but can't be managed
    }
}
