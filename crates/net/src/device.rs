//! Per-device simulated state.
//!
//! A [`SimDevice`] models the management-visible state of one switch or
//! router: the full Fig-4 device chain (power → firmware → configuration →
//! routing) plus utilization counters. Firmware upgrades open a *reboot
//! window* during which the device is operationally down and its
//! management plane unreachable — exactly the behaviour that makes the
//! Fig-1/Fig-2 conflicts dangerous.

use crate::command::DeviceModel;
use statesman_types::{DeviceName, FlowLinkRule, LinkName, PowerStatus, SimTime};

/// Simulated state of one device.
#[derive(Debug, Clone)]
pub struct SimDevice {
    /// Device name (unique in the simulation).
    pub name: DeviceName,
    /// Hardware model — selects the protocol adapter and command
    /// templates.
    pub model: DeviceModel,
    /// Administrative power status (PDU setting).
    pub admin_power: PowerStatus,
    /// Whether the power distribution unit responds (fault-injectable).
    pub power_unit_reachable: bool,
    /// Running firmware version.
    pub firmware: String,
    /// In-flight upgrade: target version and when the reboot completes.
    pub upgrading: Option<(String, SimTime)>,
    /// Selected boot image.
    pub boot_image: String,
    /// Management interface configured and reachable.
    pub mgmt_configured: bool,
    /// OpenFlow agent running (only meaningful on OpenFlow models).
    pub of_agent_running: bool,
    /// Flow→link routing rules currently installed.
    pub routing_rules: Vec<FlowLinkRule>,
    /// Link weight allocation currently installed.
    pub link_weights: Vec<(LinkName, f64)>,
    /// CPU utilization in `[0,1]` (random-walk counter).
    pub cpu_util: f64,
    /// Memory utilization in `[0,1]` (random-walk counter).
    pub mem_util: f64,
}

impl SimDevice {
    /// A healthy, powered, configured device running `firmware`.
    pub fn healthy(name: impl Into<DeviceName>, model: DeviceModel, firmware: &str) -> Self {
        SimDevice {
            name: name.into(),
            model,
            admin_power: PowerStatus::On,
            power_unit_reachable: true,
            firmware: firmware.to_string(),
            upgrading: None,
            boot_image: "default-image".to_string(),
            mgmt_configured: true,
            of_agent_running: matches!(model, DeviceModel::OpenFlowSwitch),
            routing_rules: Vec::new(),
            link_weights: Vec::new(),
            cpu_util: 0.10,
            mem_util: 0.30,
        }
    }

    /// Finish an upgrade whose reboot window has elapsed.
    pub fn settle_upgrade(&mut self, now: SimTime) {
        if let Some((version, done_at)) = &self.upgrading {
            if now >= *done_at {
                self.firmware = version.clone();
                self.upgrading = None;
            }
        }
    }

    /// Whether the device is operational (powered and not mid-reboot):
    /// the condition for its links to be oper-up and traffic to flow.
    pub fn is_operational(&self, now: SimTime) -> bool {
        self.admin_power.is_on() && !self.in_reboot_window(now)
    }

    /// Whether the device is inside an upgrade reboot window.
    pub fn in_reboot_window(&self, now: SimTime) -> bool {
        match &self.upgrading {
            Some((_, done_at)) => now < *done_at,
            None => false,
        }
    }

    /// Whether the management plane answers (vendor API / SNMP). Requires
    /// power, a configured management interface, and not rebooting.
    pub fn mgmt_reachable(&self, now: SimTime) -> bool {
        self.is_operational(now) && self.mgmt_configured
    }

    /// Whether the routing control plane accepts programming: the
    /// management plane must be up, and for OpenFlow models the agent must
    /// run (Fig 4: routing control depends on device configuration).
    pub fn routing_controllable(&self, now: SimTime) -> bool {
        self.mgmt_reachable(now)
            && match self.model {
                DeviceModel::OpenFlowSwitch => self.of_agent_running,
                DeviceModel::BgpRouter => true,
            }
    }

    /// The firmware version the monitor observes: the running version
    /// (upgrades only become visible once the reboot completes).
    pub fn observed_firmware(&self) -> &str {
        &self.firmware
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_types::SimDuration;

    fn dev() -> SimDevice {
        SimDevice::healthy("agg-1-1", DeviceModel::OpenFlowSwitch, "6.0")
    }

    #[test]
    fn healthy_device_is_fully_up() {
        let d = dev();
        let now = SimTime::ZERO;
        assert!(d.is_operational(now));
        assert!(d.mgmt_reachable(now));
        assert!(d.routing_controllable(now));
    }

    #[test]
    fn reboot_window_takes_device_down() {
        let mut d = dev();
        let done = SimTime::from_mins(10);
        d.upgrading = Some(("7.0".into(), done));
        let mid = SimTime::from_mins(5);
        assert!(d.in_reboot_window(mid));
        assert!(!d.is_operational(mid));
        assert!(!d.mgmt_reachable(mid));
        assert_eq!(d.observed_firmware(), "6.0");

        d.settle_upgrade(done);
        assert!(d.is_operational(done));
        assert_eq!(d.observed_firmware(), "7.0");
        assert!(d.upgrading.is_none());
    }

    #[test]
    fn settle_before_window_is_noop() {
        let mut d = dev();
        d.upgrading = Some(("7.0".into(), SimTime::from_mins(10)));
        d.settle_upgrade(SimTime::from_mins(9));
        assert!(d.upgrading.is_some());
        assert_eq!(d.observed_firmware(), "6.0");
    }

    #[test]
    fn power_off_takes_everything_down() {
        let mut d = dev();
        d.admin_power = PowerStatus::Off;
        let now = SimTime::ZERO;
        assert!(!d.is_operational(now));
        assert!(!d.mgmt_reachable(now));
        assert!(!d.routing_controllable(now));
    }

    #[test]
    fn openflow_routing_needs_agent() {
        let mut d = dev();
        d.of_agent_running = false;
        assert!(d.mgmt_reachable(SimTime::ZERO));
        assert!(!d.routing_controllable(SimTime::ZERO));

        // BGP models don't need an agent.
        let mut bgp = SimDevice::healthy("br-1", DeviceModel::BgpRouter, "9.2");
        bgp.of_agent_running = false;
        assert!(bgp.routing_controllable(SimTime::ZERO));
    }

    #[test]
    fn mgmt_unconfigured_blocks_control_but_not_forwarding() {
        let mut d = dev();
        d.mgmt_configured = false;
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        assert!(d.is_operational(now)); // still forwards traffic
        assert!(!d.mgmt_reachable(now)); // but can't be managed
    }
}
