//! The discrete-time network simulator.
//!
//! [`SimNetwork`] owns every simulated device and link, the shared clock,
//! the fault plan, and the offered traffic. Components interact with it
//! the way Statesman interacts with a production network:
//!
//! * the **monitor** polls state through the protocol adapters
//!   ([`crate::protocol`]), which read the simulator;
//! * the **updater** submits [`DeviceCommand`]s, which are accepted or
//!   rejected per the fault plan and take effect after simulated latency
//!   (plus a reboot window for firmware upgrades);
//! * the **scenario driver** advances time with [`SimNetwork::step_to`],
//!   which fires scheduled faults, lands pending command effects, settles
//!   upgrades, walks utilization counters, and re-routes offered traffic
//!   through the installed routing tables.
//!
//! All mutation happens behind one mutex so adapters can be handed to
//! multi-threaded components (the HTTP examples) without extra plumbing;
//! scenario determinism comes from the seeded RNG plus single-driver
//! stepping.

use crate::clock::SimClock;
use crate::command::{CommandOutcome, DeviceCommand, DeviceModel};
use crate::device::SimDevice;
use crate::fault::{FaultEvent, FaultPlan, ScheduledFault};
use crate::link::SimLink;
use crate::traffic::{route_flows, FlowSpec, ForwardingEnv, TrafficReport};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use statesman_obs::{Counter, Registry};
use statesman_topology::NetworkGraph;
use statesman_types::{DeviceName, DeviceRole, LinkName, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Simulator construction knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed (drives latency jitter, stochastic failures, counter
    /// walks).
    pub seed: u64,
    /// The fault plan.
    pub faults: FaultPlan,
    /// Initial firmware version installed on every device.
    pub initial_firmware: String,
    /// Start with every device admin-powered off and every link
    /// admin-down — the "bring up a large DCN from scratch" state the
    /// Fig-4 dependency model is designed around (§4.1). Devices keep
    /// their factory firmware and management config, so they become
    /// manageable the moment power arrives.
    pub start_powered_off: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            faults: FaultPlan::default(),
            initial_firmware: "6.0.3".to_string(),
            start_powered_off: false,
        }
    }
}

impl SimConfig {
    /// Deterministic, fault-free, zero-latency config for logic tests.
    pub fn ideal() -> Self {
        SimConfig {
            seed: 7,
            faults: FaultPlan::ideal(),
            initial_firmware: "6.0.3".to_string(),
            start_powered_off: false,
        }
    }
}

/// A pending command effect.
#[derive(Debug, Clone)]
struct PendingEffect {
    effective_at: SimTime,
    device: DeviceName,
    command: DeviceCommand,
    /// Monotonic sequence for stable ordering among same-instant effects.
    seq: u64,
}

/// Cached metric handles for the simulator (created once at
/// [`SimNetwork::attach_obs`]).
#[derive(Clone)]
struct NetObs {
    commands_accepted: Counter,
    commands_failed: Counter,
    faults_fired: Counter,
    link_flaps: Counter,
}

impl NetObs {
    fn new(registry: &Registry) -> Self {
        NetObs {
            commands_accepted: registry.counter("net_commands_accepted_total"),
            commands_failed: registry.counter("net_commands_failed_total"),
            faults_fired: registry.counter("net_faults_fired_total"),
            link_flaps: registry.counter("net_link_flaps_total"),
        }
    }
}

/// Inner mutable simulator state.
struct SimState {
    devices: HashMap<DeviceName, SimDevice>,
    links: HashMap<LinkName, SimLink>,
    pending: Vec<PendingEffect>,
    scheduled_faults: Vec<ScheduledFault>,
    flows: Vec<FlowSpec>,
    last_traffic: TrafficReport,
    rng: StdRng,
    faults: FaultPlan,
    next_seq: u64,
    /// Running count of commands the simulator accepted (observability).
    commands_accepted: u64,
    /// Running count of commands rejected or timed out.
    commands_failed: u64,
    /// Shared-registry handles, if a registry was attached.
    obs: Option<NetObs>,
}

impl SimState {
    fn note_command_accepted(&mut self) {
        self.commands_accepted += 1;
        if let Some(o) = &self.obs {
            o.commands_accepted.inc();
        }
    }

    fn note_command_failed(&mut self) {
        self.commands_failed += 1;
        if let Some(o) = &self.obs {
            o.commands_failed.inc();
        }
    }
}

/// Cloneable handle to the simulated network.
#[derive(Clone)]
pub struct SimNetwork {
    state: Arc<Mutex<SimState>>,
    clock: SimClock,
}

impl SimNetwork {
    /// Build a simulator over a topology. Border routers are BGP models;
    /// everything else is an OpenFlow switch (override per device with
    /// [`SimNetwork::set_device_model`] before the scenario starts).
    pub fn new(graph: &NetworkGraph, clock: SimClock, config: SimConfig) -> Self {
        let mut devices = HashMap::new();
        for (_, n) in graph.nodes() {
            let model = match n.role {
                DeviceRole::Border => DeviceModel::BgpRouter,
                _ => DeviceModel::OpenFlowSwitch,
            };
            let mut dev = SimDevice::healthy(n.name.clone(), model, &config.initial_firmware);
            if config.start_powered_off {
                dev.admin_power = statesman_types::PowerStatus::Off;
            }
            devices.insert(n.name.clone(), dev);
        }
        let mut links = HashMap::new();
        for (_, e) in graph.edges() {
            let mut link = SimLink::healthy(e.name.clone(), e.capacity_mbps);
            if config.start_powered_off {
                link.admin_power = statesman_types::PowerStatus::Off;
            }
            links.insert(e.name.clone(), link);
        }
        let mut scheduled = config.faults.scheduled.clone();
        scheduled.sort_by_key(|f| f.at);
        SimNetwork {
            state: Arc::new(Mutex::new(SimState {
                devices,
                links,
                pending: Vec::new(),
                scheduled_faults: scheduled,
                flows: Vec::new(),
                last_traffic: TrafficReport::default(),
                rng: StdRng::seed_from_u64(config.seed),
                faults: config.faults,
                next_seq: 0,
                commands_accepted: 0,
                commands_failed: 0,
                obs: None,
            })),
            clock,
        }
    }

    /// The shared clock handle.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Mirror command/fault counters into a shared metrics registry.
    /// All clones of this network report into it; attaching again
    /// replaces the previous registry.
    pub fn attach_obs(&self, registry: &Registry) {
        self.state.lock().obs = Some(NetObs::new(registry));
    }

    /// Override a device's hardware model (call before the scenario runs).
    pub fn set_device_model(&self, device: &DeviceName, model: DeviceModel) {
        let mut s = self.state.lock();
        if let Some(d) = s.devices.get_mut(device) {
            d.model = model;
        }
    }

    /// Replace the offered traffic matrix. Loads are recomputed on the
    /// next [`SimNetwork::step_to`].
    pub fn offer_flows(&self, flows: Vec<FlowSpec>) {
        self.state.lock().flows = flows;
    }

    /// Submit a management command to a device. Returns immediately with
    /// the outcome; accepted effects land at `effective_at`.
    pub fn submit(&self, device: &DeviceName, command: DeviceCommand) -> CommandOutcome {
        let now = self.clock.now();
        let mut s = self.state.lock();

        // Stochastic failure surface (applies to all commands).
        let timeout_p = s.faults.command_timeout_prob;
        let failure_p = s.faults.command_failure_prob;
        if timeout_p > 0.0 && s.rng.gen::<f64>() < timeout_p {
            s.note_command_failed();
            return CommandOutcome::TimedOut;
        }
        if failure_p > 0.0 && s.rng.gen::<f64>() < failure_p {
            s.note_command_failed();
            return CommandOutcome::Rejected {
                code: "E-DEVICE-INTERNAL".to_string(),
            };
        }

        let Some(dev) = s.devices.get(device) else {
            s.note_command_failed();
            return CommandOutcome::Rejected {
                code: "E-NO-SUCH-DEVICE".to_string(),
            };
        };

        // Reachability gates (the dependency model made physical).
        if command.is_out_of_band() {
            if !dev.power_unit_reachable {
                s.note_command_failed();
                return CommandOutcome::Rejected {
                    code: "E-PDU-UNREACHABLE".to_string(),
                };
            }
        } else if command.is_routing() {
            if !dev.routing_controllable(now) {
                s.note_command_failed();
                return CommandOutcome::Rejected {
                    code: "E-CONTROL-PLANE-DOWN".to_string(),
                };
            }
        } else if !dev.mgmt_reachable(now) {
            s.note_command_failed();
            return CommandOutcome::TimedOut;
        }

        // Latency model.
        let jitter = if s.faults.command_jitter_ms > 0 {
            let j = s.faults.command_jitter_ms;
            s.rng.gen_range(0..=j)
        } else {
            0
        };
        let effective_at = now + SimDuration::from_millis(s.faults.command_latency_ms + jitter);
        let seq = s.next_seq;
        s.next_seq += 1;
        s.pending.push(PendingEffect {
            effective_at,
            device: device.clone(),
            command,
            seq,
        });
        s.note_command_accepted();
        CommandOutcome::Applied { effective_at }
    }

    /// Advance the simulation to `target`: fire scheduled faults and
    /// pending effects in timestamp order, settle upgrades, walk counters,
    /// recompute traffic, and move the shared clock.
    pub fn step_to(&self, target: SimTime) {
        {
            let prev_now = self.clock.now();
            let mut s = self.state.lock();

            // Interleave faults and effects by time. Simplicity over
            // generality: apply all faults due, then all effects due, in
            // their own time orders — events in one tick are commutative in
            // our scenarios (ticks are minutes; effects are seconds apart).
            let due_faults: Vec<ScheduledFault> = {
                let (due, rest): (Vec<_>, Vec<_>) =
                    s.scheduled_faults.drain(..).partition(|f| f.at <= target);
                s.scheduled_faults = rest;
                due
            };
            for f in due_faults {
                apply_fault(&mut s, f.at, &f.event);
            }

            let mut due_effects: Vec<PendingEffect> = {
                let (due, rest): (Vec<_>, Vec<_>) =
                    s.pending.drain(..).partition(|e| e.effective_at <= target);
                s.pending = rest;
                due
            };
            due_effects.sort_by_key(|e| (e.effective_at, e.seq));
            let reboot = SimDuration::from_millis(s.faults.reboot_window_ms);
            for e in due_effects {
                apply_effect(&mut s, &e, reboot);
            }

            // Settle any upgrades whose reboot window has elapsed, and
            // crash-reboots whose downtime has passed.
            for dev in s.devices.values_mut() {
                dev.settle_upgrade(target);
                dev.settle_crash(target);
            }

            // Probabilistic link flapping: each stable link may start a
            // flap this step, with the per-minute probability scaled to
            // the simulated time elapsed. Links are drawn in sorted order
            // from the seeded RNG, so identical seeds and step sequences
            // flap identically.
            let flap_p = s.faults.link_flap_prob_per_min;
            if flap_p > 0.0 {
                let elapsed = target.saturating_since(prev_now);
                let mins = elapsed.as_millis() as f64 / 60_000.0;
                let p_step = 1.0 - (1.0 - flap_p).powf(mins);
                if p_step > 0.0 {
                    let flap_len = SimDuration::from_millis(s.faults.link_flap_duration_ms);
                    let mut names: Vec<LinkName> = s.links.keys().cloned().collect();
                    names.sort();
                    let mut flaps_started = 0u64;
                    for name in names {
                        let roll: f64 = s.rng.gen();
                        if roll < p_step {
                            let l = s.links.get_mut(&name).expect("link exists");
                            if !l.flapping(target) {
                                l.flapping_until = Some(target + flap_len);
                                flaps_started += 1;
                            }
                        }
                    }
                    if flaps_started > 0 {
                        if let Some(o) = &s.obs {
                            o.link_flaps.add(flaps_started);
                        }
                    }
                }
            }

            // Counter random walk (CPU/memory wander within [0.02, 0.98]).
            // Collect deltas first to appease the borrow checker.
            let n = s.devices.len();
            let deltas: Vec<(f64, f64)> = (0..n)
                .map(|_| (s.rng.gen_range(-0.02..0.02), s.rng.gen_range(-0.01..0.01)))
                .collect();
            let mut names: Vec<DeviceName> = s.devices.keys().cloned().collect();
            names.sort();
            for (name, (dc, dm)) in names.into_iter().zip(deltas) {
                let d = s.devices.get_mut(&name).expect("device exists");
                d.cpu_util = (d.cpu_util + dc).clamp(0.02, 0.98);
                d.mem_util = (d.mem_util + dm).clamp(0.02, 0.98);
            }

            recompute_traffic(&mut s, target);
        }
        self.clock.advance_to(target);
    }

    /// Advance by a duration (convenience over [`SimNetwork::step_to`]).
    pub fn step(&self, d: SimDuration) {
        let target = self.clock.now() + d;
        self.step_to(target);
    }

    /// Snapshot one device's state (for protocol adapters and tests).
    pub fn device_snapshot(&self, name: &DeviceName) -> Option<SimDevice> {
        self.state.lock().devices.get(name).cloned()
    }

    /// Snapshot one link's state.
    pub fn link_snapshot(&self, name: &LinkName) -> Option<SimLink> {
        self.state.lock().links.get(name).cloned()
    }

    /// All device names, sorted (stable iteration for the monitor).
    pub fn device_names(&self) -> Vec<DeviceName> {
        let mut v: Vec<DeviceName> = self.state.lock().devices.keys().cloned().collect();
        v.sort();
        v
    }

    /// All link names, sorted.
    pub fn link_names(&self) -> Vec<LinkName> {
        let mut v: Vec<LinkName> = self.state.lock().links.keys().cloned().collect();
        v.sort();
        v
    }

    /// Whether a device is currently operational (forwarding traffic).
    pub fn device_operational(&self, name: &DeviceName) -> bool {
        let now = self.clock.now();
        self.state
            .lock()
            .devices
            .get(name)
            .map(|d| d.is_operational(now))
            .unwrap_or(false)
    }

    /// Whether a device's management plane currently answers (the
    /// monitor's-eye view; false for crashed or mgmt-faulted devices).
    pub fn device_mgmt_reachable(&self, name: &DeviceName) -> bool {
        let now = self.clock.now();
        self.state
            .lock()
            .devices
            .get(name)
            .map(|d| d.mgmt_reachable(now))
            .unwrap_or(false)
    }

    /// Whether a link is currently oper-up (including endpoint health).
    pub fn link_oper_up(&self, name: &LinkName) -> bool {
        let now = self.clock.now();
        let s = self.state.lock();
        link_oper_up_inner(&s, name, now)
    }

    /// The most recent traffic routing outcome.
    pub fn traffic_report(&self) -> TrafficReport {
        self.state.lock().last_traffic.clone()
    }

    /// (accepted, failed) command counters.
    pub fn command_stats(&self) -> (u64, u64) {
        let s = self.state.lock();
        (s.commands_accepted, s.commands_failed)
    }
}

fn link_oper_up_inner(s: &SimState, name: &LinkName, now: SimTime) -> bool {
    let Some(l) = s.links.get(name) else {
        return false;
    };
    let a_up = s
        .devices
        .get(&l.name.a)
        .map(|d| d.is_operational(now))
        .unwrap_or(false);
    let b_up = s
        .devices
        .get(&l.name.b)
        .map(|d| d.is_operational(now))
        .unwrap_or(false);
    l.oper_up(now, a_up, b_up)
}

fn apply_fault(s: &mut SimState, at: SimTime, event: &FaultEvent) {
    if let Some(o) = &s.obs {
        o.faults_fired.inc();
    }
    match event {
        FaultEvent::SetFcsErrorRate { link, rate } => {
            if let Some(l) = s.links.get_mut(link) {
                l.fcs_error_rate = *rate;
            }
        }
        FaultEvent::SetDropRate { link, rate } => {
            if let Some(l) = s.links.get_mut(link) {
                l.drop_rate = *rate;
            }
        }
        FaultEvent::SetPhysicalLinkState { link, cut } => {
            if let Some(l) = s.links.get_mut(link) {
                l.physically_down = *cut;
            }
        }
        FaultEvent::SetPowerUnitReachable { device, reachable } => {
            if let Some(d) = s.devices.get_mut(device) {
                d.power_unit_reachable = *reachable;
            }
        }
        FaultEvent::CrashOpenFlowAgent { device } => {
            if let Some(d) = s.devices.get_mut(device) {
                d.of_agent_running = false;
            }
        }
        FaultEvent::CrashDevice { device } => {
            if let Some(d) = s.devices.get_mut(device) {
                d.crash(None);
            }
        }
        FaultEvent::RestoreDevice { device } => {
            if let Some(d) = s.devices.get_mut(device) {
                d.restore();
            }
        }
        FaultEvent::RebootDevice { device, down_ms } => {
            if let Some(d) = s.devices.get_mut(device) {
                d.crash(Some(at + SimDuration::from_millis(*down_ms)));
            }
        }
        FaultEvent::SetMgmtPlaneReachable { device, reachable } => {
            if let Some(d) = s.devices.get_mut(device) {
                d.mgmt_plane_reachable = *reachable;
            }
        }
    }
}

fn apply_effect(s: &mut SimState, e: &PendingEffect, reboot: SimDuration) {
    let Some(dev) = s.devices.get_mut(&e.device) else {
        return;
    };
    match &e.command {
        DeviceCommand::SetAdminPower(p) => {
            dev.admin_power = *p;
            if !p.is_on() {
                // Power loss clears any in-flight upgrade.
                dev.upgrading = None;
            }
        }
        DeviceCommand::UpgradeFirmware { version } => {
            dev.upgrading = Some((version.clone(), e.effective_at + reboot));
        }
        DeviceCommand::SetBootImage { image } => {
            dev.boot_image = image.clone();
        }
        DeviceCommand::ConfigureMgmtInterface { enabled } => {
            dev.mgmt_configured = *enabled;
        }
        DeviceCommand::SetOpenFlowAgent { running } => {
            dev.of_agent_running = *running;
        }
        DeviceCommand::SetRoutingRules { rules } => {
            dev.routing_rules = rules.clone();
        }
        DeviceCommand::SetLinkWeights { weights } => {
            dev.link_weights = weights.clone();
        }
        DeviceCommand::SetLinkAdminPower { link, status } => {
            if let Some(l) = s.links.get_mut(link) {
                l.admin_power = *status;
            }
        }
        DeviceCommand::SetLinkIp { link, ip } => {
            if let Some(l) = s.links.get_mut(link) {
                l.ip_assignment = Some(ip.clone());
            }
        }
        DeviceCommand::SetLinkControlPlane { link, mode } => {
            if let Some(l) = s.links.get_mut(link) {
                l.control_plane = *mode;
            }
        }
    }
}

/// Forwarding environment over the locked state at a fixed instant.
struct EnvView<'a> {
    s: &'a SimState,
    now: SimTime,
}

impl ForwardingEnv for EnvView<'_> {
    fn matching_rules(&self, device: &DeviceName, flow: &str) -> Vec<(LinkName, f64)> {
        let now = self.now;
        match self.s.devices.get(device) {
            Some(d) if d.is_operational(now) => d
                .routing_rules
                .iter()
                .filter(|r| r.flow == flow)
                .map(|r| (r.out_link.clone(), r.weight))
                .collect(),
            _ => Vec::new(),
        }
    }

    fn link_oper_up(&self, link: &LinkName) -> bool {
        link_oper_up_inner(self.s, link, self.now)
    }

    fn device_operational(&self, device: &DeviceName) -> bool {
        self.s
            .devices
            .get(device)
            .map(|d| d.is_operational(self.now))
            .unwrap_or(false)
    }
}

fn recompute_traffic(s: &mut SimState, now: SimTime) {
    let report = {
        let env = EnvView { s, now };
        let flows = s.flows.clone();
        route_flows(&env, &flows)
    };
    for l in s.links.values_mut() {
        l.clear_loads();
    }
    for ((link, from), mbps) in &report.link_loads {
        if let Some(l) = s.links.get_mut(link) {
            l.add_load_from(from, *mbps);
        }
    }
    s.last_traffic = report;
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_topology::DcnSpec;
    use statesman_types::{FlowLinkRule, PowerStatus};

    fn sim() -> SimNetwork {
        let g = DcnSpec::tiny("dc1").build();
        SimNetwork::new(&g, SimClock::new(), SimConfig::ideal())
    }

    #[test]
    fn builds_all_entities() {
        let net = sim();
        assert_eq!(net.device_names().len(), 10); // 2*(2+2)+2
        assert_eq!(net.link_names().len(), 2 * 4 + 2 * 4);
    }

    #[test]
    fn ideal_commands_apply_immediately_on_step() {
        let net = sim();
        let dev = DeviceName::new("agg-1-1");
        let out = net.submit(
            &dev,
            DeviceCommand::SetBootImage {
                image: "img2".into(),
            },
        );
        assert!(out.is_applied());
        net.step(SimDuration::from_millis(1));
        assert_eq!(net.device_snapshot(&dev).unwrap().boot_image, "img2");
    }

    #[test]
    fn upgrade_opens_and_closes_reboot_window() {
        let g = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 60_000;
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        let dev = DeviceName::new("agg-1-1");
        net.submit(
            &dev,
            DeviceCommand::UpgradeFirmware {
                version: "7.0".into(),
            },
        );
        net.step(SimDuration::from_millis(1));
        assert!(!net.device_operational(&dev), "rebooting");
        assert_eq!(
            net.device_snapshot(&dev).unwrap().observed_firmware(),
            "6.0.3"
        );
        net.step(SimDuration::from_secs(61));
        assert!(net.device_operational(&dev));
        assert_eq!(
            net.device_snapshot(&dev).unwrap().observed_firmware(),
            "7.0"
        );
    }

    #[test]
    fn reboot_takes_links_oper_down() {
        let g = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 60_000;
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        let dev = DeviceName::new("agg-1-1");
        let link = LinkName::between("tor-1-1", "agg-1-1");
        assert!(net.link_oper_up(&link));
        net.submit(
            &dev,
            DeviceCommand::UpgradeFirmware {
                version: "7.0".into(),
            },
        );
        net.step(SimDuration::from_millis(1));
        assert!(!net.link_oper_up(&link));
    }

    #[test]
    fn mgmt_commands_time_out_while_rebooting() {
        let g = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 600_000;
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        let dev = DeviceName::new("agg-1-1");
        net.submit(
            &dev,
            DeviceCommand::UpgradeFirmware {
                version: "7.0".into(),
            },
        );
        net.step(SimDuration::from_millis(1));
        let out = net.submit(&dev, DeviceCommand::SetBootImage { image: "x".into() });
        assert_eq!(out, CommandOutcome::TimedOut);
        // ...but out-of-band power commands still work.
        let out = net.submit(&dev, DeviceCommand::SetAdminPower(PowerStatus::Off));
        assert!(out.is_applied());
    }

    #[test]
    fn routing_commands_need_control_plane() {
        let net = sim();
        let dev = DeviceName::new("agg-1-1");
        // Crash the OpenFlow agent via command, then routing is rejected.
        net.submit(&dev, DeviceCommand::SetOpenFlowAgent { running: false });
        net.step(SimDuration::from_millis(1));
        let out = net.submit(&dev, DeviceCommand::SetRoutingRules { rules: vec![] });
        assert_eq!(
            out,
            CommandOutcome::Rejected {
                code: "E-CONTROL-PLANE-DOWN".into()
            }
        );
    }

    #[test]
    fn scheduled_fault_fires_on_step() {
        let g = DcnSpec::tiny("dc1").build();
        let link = LinkName::between("tor-1-1", "agg-1-1");
        let mut cfg = SimConfig::ideal();
        cfg.faults = FaultPlan::ideal().with_event(
            SimTime::from_mins(5),
            FaultEvent::SetFcsErrorRate {
                link: link.clone(),
                rate: 0.05,
            },
        );
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        net.step_to(SimTime::from_mins(4));
        assert_eq!(net.link_snapshot(&link).unwrap().fcs_error_rate, 0.0);
        net.step_to(SimTime::from_mins(5));
        assert_eq!(net.link_snapshot(&link).unwrap().fcs_error_rate, 0.05);
    }

    #[test]
    fn traffic_flows_through_installed_rules() {
        let net = sim();
        let tor1 = DeviceName::new("tor-1-1");
        let agg = DeviceName::new("agg-1-1");
        let _tor2 = DeviceName::new("tor-1-2");
        let l1 = LinkName::between("tor-1-1", "agg-1-1");
        let l2 = LinkName::between("agg-1-1", "tor-1-2");
        net.submit(
            &tor1,
            DeviceCommand::SetRoutingRules {
                rules: vec![FlowLinkRule::new("f", l1.clone(), 1.0)],
            },
        );
        net.submit(
            &agg,
            DeviceCommand::SetRoutingRules {
                rules: vec![FlowLinkRule::new("f", l2.clone(), 1.0)],
            },
        );
        net.offer_flows(vec![FlowSpec::new("f", "tor-1-1", "tor-1-2", 500.0)]);
        net.step(SimDuration::from_secs(1));
        let report = net.traffic_report();
        assert!((report.delivered_mbps - 500.0).abs() < 1e-6);
        assert_eq!(
            net.link_snapshot(&l1).unwrap().load_ab_mbps
                + net.link_snapshot(&l1).unwrap().load_ba_mbps,
            500.0
        );
    }

    #[test]
    fn stochastic_failures_are_deterministic_per_seed() {
        let g = DcnSpec::tiny("dc1").build();
        let mk = || {
            let mut cfg = SimConfig::ideal();
            cfg.faults.command_failure_prob = 0.5;
            cfg.seed = 42;
            SimNetwork::new(&g, SimClock::new(), cfg)
        };
        let run = |net: SimNetwork| -> Vec<bool> {
            let dev = DeviceName::new("agg-1-1");
            (0..20)
                .map(|i| {
                    net.submit(
                        &dev,
                        DeviceCommand::SetBootImage {
                            image: format!("i{i}"),
                        },
                    )
                    .is_applied()
                })
                .collect()
        };
        assert_eq!(run(mk()), run(mk()));
    }

    #[test]
    fn command_stats_track() {
        let g = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.command_timeout_prob = 1.0;
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        let dev = DeviceName::new("agg-1-1");
        net.submit(&dev, DeviceCommand::SetBootImage { image: "x".into() });
        assert_eq!(net.command_stats(), (0, 1));
    }

    #[test]
    fn device_crash_and_restore_round_trip() {
        let g = DcnSpec::tiny("dc1").build();
        let dev = DeviceName::new("agg-1-1");
        let link = LinkName::between("tor-1-1", "agg-1-1");
        let mut cfg = SimConfig::ideal();
        cfg.faults = FaultPlan::ideal().with_device_outage(
            &dev,
            SimTime::from_mins(5),
            SimDuration::from_mins(10),
        );
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        // Install a rule so we can watch it vanish in the crash.
        net.submit(
            &dev,
            DeviceCommand::SetRoutingRules {
                rules: vec![FlowLinkRule::new("f", link.clone(), 1.0)],
            },
        );
        net.step_to(SimTime::from_mins(1));
        assert!(!net.device_snapshot(&dev).unwrap().routing_rules.is_empty());

        net.step_to(SimTime::from_mins(5));
        assert!(!net.device_operational(&dev));
        assert!(!net.device_mgmt_reachable(&dev));
        assert!(!net.link_oper_up(&link));
        // In-band commands time out while crashed.
        let out = net.submit(&dev, DeviceCommand::SetBootImage { image: "x".into() });
        assert_eq!(out, CommandOutcome::TimedOut);

        net.step_to(SimTime::from_mins(15));
        assert!(net.device_operational(&dev));
        assert!(net.device_mgmt_reachable(&dev));
        assert!(net.link_oper_up(&link));
        // Volatile routing state was lost: the loop must re-push it.
        assert!(net.device_snapshot(&dev).unwrap().routing_rules.is_empty());
    }

    #[test]
    fn reboot_fault_recovers_without_restore_event() {
        let g = DcnSpec::tiny("dc1").build();
        let dev = DeviceName::new("agg-1-1");
        let mut cfg = SimConfig::ideal();
        cfg.faults = FaultPlan::ideal().with_event(
            SimTime::from_mins(2),
            FaultEvent::RebootDevice {
                device: dev.clone(),
                down_ms: 3 * 60_000,
            },
        );
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        net.step_to(SimTime::from_mins(2));
        assert!(!net.device_operational(&dev));
        net.step_to(SimTime::from_mins(4));
        assert!(!net.device_operational(&dev));
        // Recovery is anchored to the scheduled fire time (2min + 3min).
        net.step_to(SimTime::from_mins(5));
        assert!(net.device_operational(&dev));
    }

    #[test]
    fn mgmt_outage_window_blocks_management_only() {
        let g = DcnSpec::tiny("dc1").build();
        let dev = DeviceName::new("agg-1-1");
        let mut cfg = SimConfig::ideal();
        cfg.faults = FaultPlan::ideal().with_mgmt_outage(
            &dev,
            SimTime::from_mins(1),
            SimDuration::from_mins(2),
        );
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        net.step_to(SimTime::from_mins(1));
        assert!(net.device_operational(&dev), "still forwarding");
        assert!(!net.device_mgmt_reachable(&dev));
        let out = net.submit(&dev, DeviceCommand::SetBootImage { image: "x".into() });
        assert_eq!(out, CommandOutcome::TimedOut);
        net.step_to(SimTime::from_mins(3));
        assert!(net.device_mgmt_reachable(&dev));
    }

    #[test]
    fn link_flapping_is_deterministic_and_heals() {
        let g = DcnSpec::tiny("dc1").build();
        let mk = || {
            let mut cfg = SimConfig::ideal();
            cfg.seed = 99;
            cfg.faults = FaultPlan::ideal().with_link_flapping(0.8, SimDuration::from_secs(30));
            SimNetwork::new(&g, SimClock::new(), cfg)
        };
        let run = |net: SimNetwork| -> Vec<bool> {
            let mut down_history = Vec::new();
            for i in 1..=10 {
                net.step_to(SimTime::from_mins(i));
                for l in net.link_names() {
                    down_history.push(net.link_oper_up(&l));
                }
            }
            down_history
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a, b, "same seed, same flaps");
        assert!(a.iter().any(|up| !up), "p=0.8/min over 10min must flap");
        // Flaps are time-bounded (30s here), so a link down at one probe
        // is up again at a later probe — healing is visible in-history.
        assert!(a.iter().any(|up| *up), "flaps heal between probes");
    }

    #[test]
    fn unknown_device_rejected() {
        let net = sim();
        let out = net.submit(
            &DeviceName::new("ghost"),
            DeviceCommand::SetBootImage { image: "x".into() },
        );
        assert_eq!(
            out,
            CommandOutcome::Rejected {
                code: "E-NO-SUCH-DEVICE".into()
            }
        );
    }

    #[test]
    fn power_off_clears_upgrade() {
        let g = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 600_000;
        let net = SimNetwork::new(&g, SimClock::new(), cfg);
        let dev = DeviceName::new("agg-1-1");
        net.submit(
            &dev,
            DeviceCommand::UpgradeFirmware {
                version: "7.0".into(),
            },
        );
        net.step(SimDuration::from_millis(1));
        net.submit(&dev, DeviceCommand::SetAdminPower(PowerStatus::Off));
        net.step(SimDuration::from_millis(1));
        let d = net.device_snapshot(&dev).unwrap();
        assert!(d.upgrading.is_none());
        assert_eq!(d.observed_firmware(), "6.0.3");
    }
}
