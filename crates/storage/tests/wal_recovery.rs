//! Property-based and targeted tests for the durable storage plane:
//! WAL record framing round trips, torn-write truncation at *every*
//! byte offset of the final record, mid-log hash-chain break detection,
//! snapshot-boundary recovery equivalence, and the deliberately broken
//! canary that proves the recovery-safety checker actually bites.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use statesman_storage::bus::ReplicaId;
use statesman_storage::cluster::{ClusterConfig, PaxosCluster};
use statesman_storage::machine::LogCommand;
use statesman_storage::recovery::{self, HashChainChecker, RecoverySafetyChecker};
use statesman_storage::wal::{encode_record, replay_log, DurabilityMode, RECORD_HEADER_LEN};
use statesman_types::{AppId, Attribute, EntityName, NetworkState, Pool, SimTime, Value};

/// Build a framed log from payloads, chained from `anchor`.
fn build_log(payloads: &[Vec<u8>], anchor: u64) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut hash = anchor;
    for (seq, p) in payloads.iter().enumerate() {
        bytes.extend_from_slice(&encode_record(seq as u64, hash, p));
        hash = statesman_storage::wal::chain_hash(hash, p);
    }
    bytes
}

fn payloads_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    pvec(pvec(any::<u8>(), 0..48), 1..8)
}

proptest! {
    /// Encode → append → replay is the identity on payloads: every
    /// record comes back byte-equal, in order, with a clean chain.
    #[test]
    fn record_round_trip_is_identity(payloads in payloads_strategy(), anchor in any::<u64>()) {
        let bytes = build_log(&payloads, anchor);
        let replayed = replay_log(&bytes, anchor);
        prop_assert!(replayed.corrupt.is_none(), "{:?}", replayed.corrupt);
        prop_assert_eq!(replayed.truncated_records, 0);
        prop_assert_eq!(&replayed.payloads, &payloads);
        prop_assert_eq!(replayed.valid_len, bytes.len());
        prop_assert_eq!(replayed.end_seq, payloads.len() as u64);
    }

    /// A torn write — the log cut at *any* byte offset inside the final
    /// record — is repaired by truncation, never mistaken for
    /// corruption: every earlier record survives, and exactly the torn
    /// one is counted (zero when the cut lands on the record boundary).
    #[test]
    fn torn_final_record_truncates_at_every_offset(
        payloads in payloads_strategy(),
        anchor in any::<u64>(),
    ) {
        let bytes = build_log(&payloads, anchor);
        let last_start = bytes.len()
            - RECORD_HEADER_LEN
            - payloads.last().expect("non-empty").len();
        for cut in last_start..bytes.len() {
            let replayed = replay_log(&bytes[..cut], anchor);
            prop_assert!(
                replayed.corrupt.is_none(),
                "cut {cut}: torn tail misread as corruption: {:?}",
                replayed.corrupt
            );
            prop_assert_eq!(replayed.payloads.len(), payloads.len() - 1, "cut {}", cut);
            prop_assert_eq!(replayed.valid_len, last_start, "cut {}", cut);
            let expect_truncated = u64::from(cut != last_start);
            prop_assert_eq!(replayed.truncated_records, expect_truncated, "cut {}", cut);
        }
    }

    /// A flipped payload byte in any *non-final* record is a mid-log
    /// integrity violation: acknowledged state is damaged, so replay
    /// must refuse (report corruption), not silently truncate.
    #[test]
    fn mid_log_payload_flip_is_detected(
        // Non-empty payloads so every record has a byte to flip.
        payloads in pvec(pvec(any::<u8>(), 1..48), 2..8),
        anchor in any::<u64>(),
        pick in 0..1000usize,
        offset in 0..1000usize,
    ) {
        let bytes = build_log(&payloads, anchor);
        let clean = replay_log(&bytes, anchor);
        let victim = pick % (payloads.len() - 1); // any record but the last
        let start = clean.offsets[victim] + RECORD_HEADER_LEN;
        let flip_at = start + offset % payloads[victim].len();
        let mut torn = bytes.clone();
        torn[flip_at] ^= 0xFF;
        let replayed = replay_log(&torn, anchor);
        prop_assert!(
            replayed.corrupt.is_some(),
            "flip at byte {flip_at} of record {victim} went undetected"
        );
        prop_assert_eq!(replayed.payloads.len(), victim, "valid prefix stops at the flip");
    }
}

fn wb(dev: &str, v: &str) -> LogCommand {
    LogCommand::WriteBatch {
        pool: Pool::Observed,
        rows: vec![NetworkState::new(
            EntityName::device("dc1", dev),
            Attribute::DeviceFirmwareVersion,
            Value::text(v),
            SimTime::ZERO,
            AppId::monitor(),
        )],
    }
}

fn framed_cluster(snapshot_every: u64, commits: usize) -> PaxosCluster {
    let mut cfg = ClusterConfig::intra_dc(5);
    cfg.durability = DurabilityMode::FramedMemory;
    cfg.snapshot_every = snapshot_every;
    let mut c = PaxosCluster::new(cfg);
    for i in 0..commits {
        c.submit(wb(&format!("dev-{i}"), "1")).unwrap();
    }
    c
}

proptest! {
    /// Snapshot-boundary recovery equivalence: a replica rebuilt purely
    /// from its durable store (snapshot + WAL tail) is bit-equal to the
    /// never-crashed replica, wherever the snapshot boundary happens to
    /// sit relative to the commit count.
    #[test]
    fn recovery_is_bit_equal_to_never_crashing(
        snapshot_every in 2..8u64,
        commits in 1..20usize,
    ) {
        let c = framed_cluster(snapshot_every, commits);
        let live = c.replica_machine(ReplicaId(2)).to_snapshot();
        let (recovered, report) = recovery::recover(ReplicaId(2), 3, &c.store(ReplicaId(2)));
        prop_assert!(!report.refused);
        prop_assert_eq!(recovered.applied_through(), c.applied_through(ReplicaId(2)));
        prop_assert_eq!(recovered.machine.to_snapshot(), live, "recovered state diverged");
    }
}

/// The deliberately broken canary: truncate a store below its highest
/// committed decree (exactly what a buggy compaction would do) and prove
/// the `RecoverySafetyChecker` catches it — while the `HashChainChecker`
/// stays clean, because the damage leaves a perfectly valid chain
/// prefix. Integrity checking alone cannot catch silent truncation;
/// the watermark checker exists for precisely this hole.
#[test]
fn canary_truncation_below_committed_is_caught() {
    // Default snapshot cadence (256) so nothing is snapshotted and the
    // whole history lives in the log tail.
    let c = framed_cluster(256, 8);
    let store = c.store(ReplicaId(1));
    let mut safety = RecoverySafetyChecker::default();
    safety.observe_committed("dc1", 1, c.applied_through(ReplicaId(1)));

    store.canary_truncate_tail_records(4);

    let mut chain = HashChainChecker::default();
    chain.record("dc1/r1", store.verify_chain());
    assert!(
        chain.is_clean(),
        "canary truncation keeps a valid chain prefix — integrity checks must NOT fire: {:?}",
        chain.violations
    );

    let (_replica, report) = recovery::recover(ReplicaId(1), 3, &store);
    assert!(!report.refused, "truncation is not corruption");
    safety.check_recovery("dc1", 1, report.recovered_frontier);
    assert_eq!(
        safety.violations.len(),
        1,
        "recovery-safety checker missed the truncation canary"
    );
    assert!(safety.violations[0].contains("recovery_safety violated"));
}
