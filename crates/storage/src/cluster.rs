//! A pump-driven Paxos ring: replicas + virtual-time bus + client API.
//!
//! [`PaxosCluster`] is the unit the storage service instantiates once per
//! datacenter (§6.1). It owns N [`Replica`]s and a [`MessageBus`], elects
//! and re-elects leaders, submits client commands with bounded retry
//! (retransmitting lost `Accept`s), and records *virtual* commit latencies
//! so benches can compare intra-DC rings against a WAN-spanning global
//! ring on equal footing.

use crate::bus::{LatencyModel, MessageBus, Micros, ReplicaId};
use crate::machine::{LogCommand, StateMachine};
use crate::paxos::{PaxosMsg, Replica, Slot};
use crate::recovery::{self, RecoveryReport};
use crate::wal::{DurabilityMode, ReplicaStore, WalCorruption, WalStats};
use statesman_types::{StateError, StateResult};

/// Ring construction knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of replicas (use odd; 3 in deployment-like setups).
    pub replicas: usize,
    /// Inter-replica latency model.
    pub latency: LatencyModel,
    /// Message drop probability.
    pub drop_prob: f64,
    /// RNG seed for the bus.
    pub seed: u64,
    /// Max submit retries (each retransmits uncommitted accepts).
    pub max_retries: usize,
    /// WAL backend for every replica in this ring.
    pub durability: DurabilityMode,
    /// Snapshot-compaction cadence in committed decrees.
    pub snapshot_every: u64,
    /// Per-pool change-index bound on every replica's state machine.
    /// Size it above the fabric's per-round churn (a 4M-variable fabric
    /// walks ~164K telemetry rows a round) or every `read_since` falls
    /// back to the snapshot path and the incremental checker reseeds
    /// from scratch each pass.
    pub change_index_capacity: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 3,
            latency: LatencyModel::intra_dc(),
            drop_prob: 0.0,
            seed: 1,
            max_retries: 8,
            durability: DurabilityMode::Memory,
            snapshot_every: 256,
            change_index_capacity: crate::machine::CHANGE_INDEX_CAPACITY,
        }
    }
}

impl ClusterConfig {
    /// A 3-replica intra-DC ring.
    pub fn intra_dc(seed: u64) -> Self {
        ClusterConfig {
            seed,
            ..Default::default()
        }
    }

    /// A ring whose replicas are spread across the WAN — the design §6.1
    /// rejects; used by the `storage_partitioning` bench.
    pub fn global_wan(seed: u64) -> Self {
        ClusterConfig {
            latency: LatencyModel::wan(),
            seed,
            ..Default::default()
        }
    }
}

/// Log slots retained below the apply frontier for peer catch-up;
/// replicas further behind are caught up by snapshot on restart.
const LOG_KEEP_LAST: u64 = 128;

/// One replicated storage ring.
pub struct PaxosCluster {
    replicas: Vec<Replica>,
    /// Per-replica durable stores. Held by the cluster (not only by the
    /// replica) so the "disk" survives a kill -9 dropping the replica.
    stores: Vec<ReplicaStore>,
    bus: MessageBus<PaxosMsg>,
    leader: Option<ReplicaId>,
    config: ClusterConfig,
    /// Virtual commit latency of every successful submit, µs.
    commit_latencies: Vec<Micros>,
    /// Next client request id (ring-unique; used for failover dedupe).
    next_request_id: u64,
    /// Report from the most recent replica recovery.
    last_recovery: Option<RecoveryReport>,
}

impl PaxosCluster {
    /// Build and immediately elect replica 0. Every replica is constructed
    /// through the recovery path, so a ring pointed at a directory with
    /// pre-existing WAL/snapshot files resumes from them (a full-process
    /// restart).
    pub fn new(config: ClusterConfig) -> Self {
        let stores: Vec<ReplicaStore> = (0..config.replicas as u8)
            .map(|i| ReplicaStore::new(&config.durability, ReplicaId(i)))
            .collect();
        let replicas = stores
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut r = recovery::recover(ReplicaId(i as u8), config.replicas, s).0;
                r.machine
                    .set_change_index_capacity(config.change_index_capacity);
                r
            })
            .collect();
        let mut bus = MessageBus::new(config.latency.clone(), config.seed);
        bus.drop_prob = config.drop_prob;
        let mut cluster = PaxosCluster {
            replicas,
            stores,
            bus,
            leader: None,
            config,
            commit_latencies: Vec::new(),
            next_request_id: 1,
            last_recovery: None,
        };
        cluster.ensure_leader();
        cluster
    }

    /// The current leader id, if an election has succeeded.
    pub fn leader(&self) -> Option<ReplicaId> {
        self.leader
    }

    /// Deliver messages until the bus is quiet.
    fn pump(&mut self) {
        while let Some((from, to, msg)) = self.bus.recv() {
            if self.bus.is_crashed(to) {
                continue;
            }
            let out = self.replicas[to.0 as usize].handle(from, msg);
            for (dest, m) in out {
                self.bus.send(to, dest, m);
            }
        }
    }

    /// Make sure some live replica leads; elect the lowest live id if not.
    /// Elections themselves ride the lossy bus, so each candidate gets
    /// retried up to `max_retries` rounds before giving up (a real
    /// deployment's election timeout loop).
    pub fn ensure_leader(&mut self) {
        if let Some(l) = self.leader {
            if !self.bus.is_crashed(l) && self.replicas[l.0 as usize].is_leader() {
                return;
            }
        }
        self.leader = None;
        for _round in 0..=self.config.max_retries {
            // Try live replicas in id order until one wins.
            for i in 0..self.replicas.len() {
                let id = ReplicaId(i as u8);
                if self.bus.is_crashed(id) {
                    continue;
                }
                let out = self.replicas[i].start_election();
                for (dest, m) in out {
                    self.bus.send(id, dest, m);
                }
                self.pump();
                if self.replicas[i].is_leader() {
                    self.leader = Some(id);
                    return;
                }
            }
        }
    }

    /// Submit a command; blocks (pumping the virtual network) until the
    /// command commits or retries are exhausted.
    ///
    /// The command is wrapped with a ring-unique request id, so if a
    /// leader is deposed mid-commit the command is safely re-proposed
    /// through the new leader — should the original instance *also*
    /// survive via recovery, the state machine deduplicates the apply.
    pub fn submit(&mut self, cmd: LogCommand) -> StateResult<Slot> {
        // Group commit: a single submit drives many WAL appends per
        // replica (promises, accepts, the commit record). Buffer them and
        // land each replica's group with one fsync when the submit
        // resolves — the caller is only acknowledged after end_group, so
        // durability at ack time is unchanged.
        for (i, s) in self.stores.iter().enumerate() {
            if !self.bus.is_crashed(ReplicaId(i as u8)) {
                s.begin_group();
            }
        }
        let result = self.submit_inner(cmd);
        for (i, s) in self.stores.iter().enumerate() {
            if !self.bus.is_crashed(ReplicaId(i as u8)) {
                s.end_group();
            }
        }
        result
    }

    fn submit_inner(&mut self, cmd: LogCommand) -> StateResult<Slot> {
        let id = self.next_request_id;
        self.next_request_id += 1;
        let tagged = LogCommand::Tagged {
            id,
            inner: Box::new(cmd),
        };
        let started = self.bus.now();
        let mut last_err = None;
        for _attempt in 0..=self.config.max_retries {
            self.ensure_leader();
            match self.try_commit(tagged.clone()) {
                Ok(slot) => {
                    self.commit_latencies.push(self.bus.now() - started);
                    // Bound log growth: retain an in-RAM catch-up window,
                    // and let each live replica fold its durable log into
                    // a snapshot when the compaction cadence is due.
                    // Crashed replicas are frozen: their stores must stay
                    // exactly as the dying process left them.
                    for (i, r) in self.replicas.iter_mut().enumerate() {
                        if !self.bus.is_crashed(ReplicaId(i as u8)) {
                            r.compact(LOG_KEEP_LAST);
                            r.maybe_snapshot(self.config.snapshot_every);
                        }
                    }
                    return Ok(slot);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| StateError::StorageUnavailable {
            partition: "ring".into(),
            reason: "no quorum".into(),
        }))
    }

    /// One commit attempt through the current leader.
    fn try_commit(&mut self, cmd: LogCommand) -> StateResult<Slot> {
        let Some(leader) = self.leader else {
            return Err(StateError::StorageUnavailable {
                partition: "ring".into(),
                reason: "no quorum for leader election".into(),
            });
        };
        let mut out = Vec::new();
        let slot = self.replicas[leader.0 as usize]
            .propose(cmd, &mut out)
            .expect("leader accepts proposals");
        for (dest, m) in out {
            self.bus.send(leader, dest, m);
        }
        self.pump();

        let mut tries = 0;
        while !self.replicas[leader.0 as usize].slot_committed(slot) {
            if tries >= self.config.max_retries {
                return Err(StateError::StorageUnavailable {
                    partition: "ring".into(),
                    reason: format!("slot {slot} failed to commit after {tries} retries"),
                });
            }
            tries += 1;
            // Leadership may have been usurped meanwhile; the outer
            // submit loop re-elects and re-proposes (dedup makes that
            // safe).
            if !self.replicas[leader.0 as usize].is_leader() {
                self.leader = None;
                return Err(StateError::StorageUnavailable {
                    partition: "ring".into(),
                    reason: "leader deposed mid-commit".into(),
                });
            }
            let mut out = Vec::new();
            self.replicas[leader.0 as usize].retransmit(&mut out);
            for (dest, m) in out {
                self.bus.send(leader, dest, m);
            }
            self.pump();
        }
        Ok(slot)
    }

    /// Read access to the leader's state machine (the up-to-date view).
    /// Errors when no leader can be elected.
    pub fn leader_machine(&mut self) -> StateResult<&StateMachine> {
        self.ensure_leader();
        match self.leader {
            Some(l) => Ok(&self.replicas[l.0 as usize].machine),
            None => Err(StateError::StorageUnavailable {
                partition: "ring".into(),
                reason: "no leader".into(),
            }),
        }
    }

    /// Mutable access to the leader's machine — used by the service layer
    /// to drain receipts (a read-modify op served linearizably by the
    /// leader).
    pub fn leader_machine_mut(&mut self) -> StateResult<&mut StateMachine> {
        self.ensure_leader();
        match self.leader {
            Some(l) => Ok(&mut self.replicas[l.0 as usize].machine),
            None => Err(StateError::StorageUnavailable {
                partition: "ring".into(),
                reason: "no leader".into(),
            }),
        }
    }

    /// A follower's (possibly stale) machine — models reading a cache
    /// replica.
    pub fn any_machine(&self) -> &StateMachine {
        // Prefer a non-leader replica to make staleness observable — but
        // never a crashed one: a killed replica's in-RAM husk is empty,
        // not stale, and must not serve bounded-stale reads.
        for (i, r) in self.replicas.iter().enumerate() {
            let id = ReplicaId(i as u8);
            if Some(id) != self.leader && !self.bus.is_crashed(id) {
                return &r.machine;
            }
        }
        let fallback = self.leader.map(|l| l.0 as usize).unwrap_or(0);
        &self.replicas[fallback].machine
    }

    /// Sever the network between two replicas (both directions); messages
    /// between them are dropped until [`PaxosCluster::heal_partitions`].
    pub fn partition_replicas(&mut self, a: ReplicaId, b: ReplicaId) {
        self.bus.partition(a, b);
    }

    /// Heal all network partitions.
    pub fn heal_partitions(&mut self) {
        self.bus.heal();
    }

    /// Crash a replica (drops traffic; durable state preserved).
    pub fn crash(&mut self, id: ReplicaId) {
        self.bus.crash(id);
        if self.leader == Some(id) {
            self.leader = None;
        }
    }

    /// Kill -9 a replica: traffic drops AND every byte of in-RAM state is
    /// gone — the slot holds an empty store-less husk until
    /// [`PaxosCluster::restart`] rebuilds it from the durable store, which
    /// is the only thing that survives.
    pub fn kill9(&mut self, id: ReplicaId) {
        self.bus.crash(id);
        self.replicas[id.0 as usize] = Replica::new(id, self.config.replicas);
        if self.leader == Some(id) {
            self.leader = None;
        }
    }

    /// Inject corruption into a crashed replica's durable store (chaos
    /// harness; models what recovery finds on disk after the crash).
    pub fn corrupt_store(&mut self, id: ReplicaId, corruption: &WalCorruption) {
        debug_assert!(
            self.bus.is_crashed(id),
            "corruption is only injected into crashed replicas"
        );
        self.stores[id.0 as usize].inject(corruption);
    }

    /// Restart a crashed replica through the recovery module: replay
    /// snapshot + WAL tail (repairing a torn final record, refusing a
    /// corrupted log), then rejoin the ring — if the ring has moved past
    /// the recovered frontier, the leader ships a snapshot (state
    /// transfer) exactly as before.
    pub fn restart(&mut self, id: ReplicaId) {
        self.bus.restart(id);
        let (mut replica, report) =
            recovery::recover(id, self.config.replicas, &self.stores[id.0 as usize]);
        replica
            .machine
            .set_change_index_capacity(self.config.change_index_capacity);
        self.replicas[id.0 as usize] = replica;
        self.last_recovery = Some(report);
        self.ensure_leader();
        if let Some(leader) = self.leader {
            if leader != id {
                let (machine, frontier) = {
                    let l = &self.replicas[leader.0 as usize];
                    (l.machine.clone(), l.applied_through() + 1)
                };
                if self.replicas[id.0 as usize].applied_through() + 1 < frontier {
                    self.replicas[id.0 as usize].install_snapshot(machine, frontier);
                }
            }
        }
    }

    /// Whether a replica is currently crashed.
    pub fn is_crashed(&self, id: ReplicaId) -> bool {
        self.bus.is_crashed(id)
    }

    /// Aggregated WAL counters across all replica stores.
    pub fn wal_stats(&self) -> WalStats {
        let mut total = WalStats::default();
        for s in &self.stores {
            total.merge(&s.stats());
        }
        total
    }

    /// One replica's WAL counters (per-replica `wal_tail_decree` gauge).
    pub fn replica_wal_stats(&self, id: ReplicaId) -> WalStats {
        self.stores[id.0 as usize].stats()
    }

    /// Verify every store's snapshot + log pair end to end; returns total
    /// records verified. Callers should skip stores of currently-crashed
    /// replicas if corruption was injected and not yet recovered.
    pub fn verify_chains(&self) -> Result<u64, String> {
        let mut n = 0;
        for (i, s) in self.stores.iter().enumerate() {
            n += s.verify_chain().map_err(|e| format!("r{i}: {e}"))?;
        }
        Ok(n)
    }

    /// A clone-handle to one replica's durable store (tests).
    pub fn store(&self, id: ReplicaId) -> ReplicaStore {
        self.stores[id.0 as usize].clone()
    }

    /// Report from the most recent replica recovery, if any.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// Direct read access to one replica's machine (recovery-equivalence
    /// tests).
    pub fn replica_machine(&self, id: ReplicaId) -> &StateMachine {
        &self.replicas[id.0 as usize].machine
    }

    /// Recorded virtual commit latencies, µs.
    pub fn commit_latencies(&self) -> &[Micros] {
        &self.commit_latencies
    }

    /// Mean commit latency, µs (0 if none).
    pub fn mean_commit_latency(&self) -> f64 {
        if self.commit_latencies.is_empty() {
            return 0.0;
        }
        self.commit_latencies.iter().sum::<u64>() as f64 / self.commit_latencies.len() as f64
    }

    /// (sent, dropped) bus counters.
    pub fn bus_stats(&self) -> (u64, u64) {
        (self.bus.sent, self.bus.dropped)
    }

    /// Set the message drop probability mid-run (failure injection).
    pub fn set_drop_prob(&mut self, p: f64) {
        self.bus.drop_prob = p;
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// A given replica's applied-through slot (for replication tests).
    pub fn applied_through(&self, id: ReplicaId) -> Slot {
        self.replicas[id.0 as usize].applied_through()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_types::{AppId, Attribute, EntityName, NetworkState, Pool, SimTime, Value};

    fn row(dev: &str, v: &str) -> NetworkState {
        NetworkState::new(
            EntityName::device("dc1", dev),
            Attribute::DeviceFirmwareVersion,
            Value::text(v),
            SimTime::ZERO,
            AppId::monitor(),
        )
    }

    fn wb(dev: &str, v: &str) -> LogCommand {
        LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row(dev, v)],
        }
    }

    #[test]
    fn commits_replicate_to_all() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(1));
        c.submit(wb("a", "1")).unwrap();
        c.submit(wb("b", "2")).unwrap();
        for i in 0..3 {
            assert_eq!(c.applied_through(ReplicaId(i)), 2, "replica {i}");
        }
        let m = c.leader_machine().unwrap();
        assert_eq!(m.pool_len(&Pool::Observed), 2);
    }

    #[test]
    fn survives_minority_crash() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(2));
        c.submit(wb("a", "1")).unwrap();
        c.crash(ReplicaId(2));
        c.submit(wb("b", "2")).unwrap();
        let m = c.leader_machine().unwrap();
        assert_eq!(m.pool_len(&Pool::Observed), 2);
    }

    #[test]
    fn leader_crash_triggers_failover_preserving_data() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(3));
        c.submit(wb("a", "1")).unwrap();
        let old = c.leader().unwrap();
        c.crash(old);
        c.submit(wb("b", "2")).unwrap();
        let new = c.leader().unwrap();
        assert_ne!(old, new);
        let m = c.leader_machine().unwrap();
        assert_eq!(
            m.get(&Pool::Observed, &row("a", "").key()).unwrap().value,
            Value::text("1"),
            "pre-failover write survives"
        );
        assert_eq!(m.pool_len(&Pool::Observed), 2);
    }

    #[test]
    fn majority_crash_is_unavailable() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(3));
        c.crash(ReplicaId(1));
        c.crash(ReplicaId(2));
        let err = c.submit(wb("a", "1")).unwrap_err();
        assert!(matches!(err, StateError::StorageUnavailable { .. }));
        // Heal and retry.
        c.restart(ReplicaId(1));
        c.submit(wb("a", "1")).unwrap();
    }

    #[test]
    fn lossy_network_commits_via_retry() {
        let mut cfg = ClusterConfig::intra_dc(7);
        cfg.drop_prob = 0.3;
        let mut c = PaxosCluster::new(cfg);
        for i in 0..20 {
            c.submit(wb(&format!("d{i}"), "v")).unwrap();
        }
        let (sent, dropped) = c.bus_stats();
        assert!(dropped > 0, "loss actually happened ({sent} sent)");
        let m = c.leader_machine().unwrap();
        assert_eq!(m.pool_len(&Pool::Observed), 20);
    }

    #[test]
    fn restarted_replica_catches_up_on_later_commits() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(3));
        c.submit(wb("a", "1")).unwrap();
        c.crash(ReplicaId(2));
        c.submit(wb("b", "2")).unwrap();
        c.restart(ReplicaId(2));
        // Replica 2 missed slot 2; later commits still apply in order only
        // after the gap is filled. A fresh election re-proposes history.
        c.submit(wb("c", "3")).unwrap();
        // The restarted node may still lag (no anti-entropy beyond
        // leader-change recovery) — but the ring as a whole is healthy.
        let m = c.leader_machine().unwrap();
        assert_eq!(m.pool_len(&Pool::Observed), 3);
    }

    #[test]
    fn wan_ring_is_much_slower_than_intra_dc_ring() {
        let mut intra = PaxosCluster::new(ClusterConfig::intra_dc(5));
        let mut wan = PaxosCluster::new(ClusterConfig::global_wan(5));
        for i in 0..10 {
            intra.submit(wb(&format!("d{i}"), "v")).unwrap();
            wan.submit(wb(&format!("d{i}"), "v")).unwrap();
        }
        // §6.1's rationale: WAN consensus latency dwarfs intra-DC.
        assert!(wan.mean_commit_latency() > 20.0 * intra.mean_commit_latency());
    }

    #[test]
    fn stale_follower_reads_lag_behind_leader() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(3));
        // Partition a follower's inbound traffic by crashing it so commits
        // don't reach it, then restart: its machine is behind.
        c.submit(wb("a", "1")).unwrap();
        c.crash(ReplicaId(2));
        c.submit(wb("b", "2")).unwrap();
        c.restart(ReplicaId(2));
        let lagging = &c.replicas[2].machine;
        assert!(lagging.pool_len(&Pool::Observed) <= 2);
    }

    #[test]
    fn minority_partition_does_not_block_commits() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(13));
        c.submit(wb("a", "1")).unwrap();
        let leader = c.leader().unwrap();
        // Cut the third replica off from the leader.
        let isolated = (0..3u8).map(ReplicaId).find(|r| *r != leader).unwrap();
        c.partition_replicas(leader, isolated);
        c.submit(wb("b", "2")).unwrap();
        // The isolated replica lags; the ring still commits via the
        // remaining majority.
        assert!(c.applied_through(isolated) < c.applied_through(leader));

        // Heal: subsequent traffic flows again and the leader keeps
        // serving the full history.
        c.heal_partitions();
        c.submit(wb("c", "3")).unwrap();
        let m = c.leader_machine().unwrap();
        assert_eq!(m.pool_len(&Pool::Observed), 3);
    }

    #[test]
    fn symmetric_partition_of_leader_forces_failover() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(17));
        c.submit(wb("a", "1")).unwrap();
        let old_leader = c.leader().unwrap();
        // Cut the leader from BOTH peers: it cannot reach quorum.
        for r in 0..3u8 {
            let r = ReplicaId(r);
            if r != old_leader {
                c.partition_replicas(old_leader, r);
            }
        }
        // Force a leadership check: the next submit must elect one of the
        // connected pair. (ensure_leader only re-elects when the cached
        // leader stops claiming leadership, so nudge it.)
        c.crash(old_leader);
        c.restart(old_leader);
        c.submit(wb("b", "2")).unwrap();
        let new_leader = c.leader().unwrap();
        assert_ne!(new_leader, old_leader);
        let m = c.leader_machine().unwrap();
        assert_eq!(m.pool_len(&Pool::Observed), 2, "history preserved");
    }

    #[test]
    fn kill9_drops_ram_and_restart_recovers_from_wal() {
        let mut cfg = ClusterConfig::intra_dc(3);
        cfg.durability = DurabilityMode::FramedMemory;
        cfg.snapshot_every = 4;
        let mut c = PaxosCluster::new(cfg);
        for i in 0..10 {
            c.submit(wb(&format!("d{i}"), "v")).unwrap();
        }
        let before = c.applied_through(ReplicaId(2));
        assert!(before >= 8, "replica 2 tracked the commits");
        c.kill9(ReplicaId(2));
        assert_eq!(c.applied_through(ReplicaId(2)), 0, "kill -9 drops RAM");
        c.submit(wb("x", "v")).unwrap();
        c.restart(ReplicaId(2));
        assert!(
            c.applied_through(ReplicaId(2)) >= before,
            "recovery never lands below the pre-crash committed decree"
        );
        assert!(c.wal_stats().compactions > 0, "snapshot cadence fired");
        c.verify_chains().expect("chains intact after recovery");
        let rec = c.last_recovery().unwrap();
        assert!(!rec.refused);
    }

    #[test]
    fn group_commit_bounds_fsyncs_per_submit() {
        let mut cfg = ClusterConfig::intra_dc(5);
        cfg.durability = DurabilityMode::FramedMemory;
        // Keep compaction out of the way so the counters isolate submits.
        cfg.snapshot_every = u64::MAX;
        let mut c = PaxosCluster::new(cfg);
        for i in 0..20 {
            c.submit(wb(&format!("d{i}"), "v")).unwrap();
        }
        let stats = c.wal_stats();
        assert!(
            stats.appends > stats.fsyncs,
            "a submit appends several WAL records per replica \
             (appends={}, fsyncs={})",
            stats.appends,
            stats.fsyncs
        );
        // 3 replicas × (1 election group + 20 submit groups), with a small
        // allowance for retries: far below one fsync per append.
        assert!(
            stats.fsyncs <= 3 * 21 + 6,
            "grouped submits flush once per replica per submit, got {}",
            stats.fsyncs
        );
        c.verify_chains().expect("grouped chains verify end to end");
        // Recovery still replays everything the grouped log holds.
        c.kill9(ReplicaId(2));
        c.restart(ReplicaId(2));
        assert_eq!(c.applied_through(ReplicaId(2)), 20);
        assert!(!c.last_recovery().unwrap().refused);
    }

    #[test]
    fn torn_tail_is_repaired_on_restart() {
        let mut cfg = ClusterConfig::intra_dc(11);
        cfg.durability = DurabilityMode::FramedMemory;
        let mut c = PaxosCluster::new(cfg);
        for i in 0..5 {
            c.submit(wb(&format!("d{i}"), "v")).unwrap();
        }
        let before = c.applied_through(ReplicaId(1));
        c.kill9(ReplicaId(1));
        c.corrupt_store(ReplicaId(1), &WalCorruption::TornTail { bytes: 13 });
        c.restart(ReplicaId(1));
        let rec = c.last_recovery().unwrap();
        assert_eq!(rec.truncated_records, 1, "the torn junk was truncated");
        assert!(!rec.refused);
        assert!(c.applied_through(ReplicaId(1)) >= before);
        c.verify_chains().expect("medium repaired in place");
    }

    #[test]
    fn bit_flip_is_refused_and_replica_rejoins_via_catchup() {
        let mut cfg = ClusterConfig::intra_dc(13);
        cfg.durability = DurabilityMode::FramedMemory;
        cfg.snapshot_every = 3;
        let mut c = PaxosCluster::new(cfg);
        for i in 0..9 {
            c.submit(wb(&format!("d{i}"), "v")).unwrap();
        }
        let before = c.applied_through(ReplicaId(2));
        c.kill9(ReplicaId(2));
        c.corrupt_store(ReplicaId(2), &WalCorruption::BitFlip);
        c.restart(ReplicaId(2));
        let rec = c.last_recovery().unwrap().clone();
        assert!(rec.refused, "acknowledged-state damage must be refused");
        // Leader catch-up restored everything the refused log lost.
        assert!(c.applied_through(ReplicaId(2)) >= before);
        c.verify_chains().expect("refused log was reset cleanly");
        let m = &c.replica_machine(ReplicaId(2));
        assert_eq!(m.pool_len(&Pool::Observed), 9);
    }

    #[test]
    fn any_machine_never_serves_a_killed_husk() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(4));
        c.submit(wb("a", "1")).unwrap();
        let leader = c.leader().unwrap();
        let follower = (0..3u8).map(ReplicaId).find(|r| *r != leader).unwrap();
        c.kill9(follower);
        // The killed husk has an empty machine; bounded-stale reads must
        // fall through to a live replica.
        assert_eq!(c.any_machine().pool_len(&Pool::Observed), 1);
    }

    #[test]
    fn dir_backed_ring_survives_full_process_restart() {
        let dir =
            std::env::temp_dir().join(format!("statesman-wal-test-{}-cluster", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ClusterConfig::intra_dc(5);
        cfg.durability = DurabilityMode::Dir(dir.clone());
        let applied = {
            let mut c = PaxosCluster::new(cfg.clone());
            for i in 0..6 {
                c.submit(wb(&format!("d{i}"), "v")).unwrap();
            }
            c.applied_through(c.leader().unwrap())
        }; // the whole cluster object (every replica's RAM) is dropped here
        let mut c = PaxosCluster::new(cfg);
        let m = c.leader_machine().unwrap();
        assert_eq!(m.pool_len(&Pool::Observed), 6, "state came back from disk");
        assert!(c.applied_through(c.leader().unwrap()) >= applied);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn commit_latency_is_recorded() {
        let mut c = PaxosCluster::new(ClusterConfig::intra_dc(1));
        c.submit(wb("a", "1")).unwrap();
        assert_eq!(c.commit_latencies().len(), 1);
        assert!(c.mean_commit_latency() > 0.0);
    }
}
