//! The replicated state machine: pools of versioned `NetworkState` rows.
//!
//! Every storage partition (Paxos ring) replicates a log of
//! [`LogCommand`]s; applying the log in slot order to a [`StateMachine`]
//! yields the partition's current OS/PS/TS contents. Rows get a
//! monotonically increasing [`Version`] stamped at apply time, which the
//! checker uses to detect stale-basis proposals.

use serde::{Deserialize, Serialize};
use statesman_types::{
    slot_registry, AppId, Column, NetworkState, Pool, SlotId, StateDelta, StateKey, Version,
    WriteReceipt,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

/// Default bound on the per-pool change index. Entries beyond it are
/// compacted away (oldest first), raising the pool's compaction floor;
/// `read_since` requests from before the floor fall back to a full
/// snapshot. Sized so steady-state churn (a few thousand rows per round)
/// keeps weeks of history, while a full 394K-variable resync immediately
/// compacts to the newest window instead of hoarding memory. Fabrics
/// whose per-round churn exceeds this (4M variables ≈ 164K telemetry
/// rows a round) must raise it via
/// [`ClusterConfig::change_index_capacity`](crate::ClusterConfig) or
/// every round degenerates to the snapshot fallback; entries are two
/// words each, so the memory cost of a larger window is modest and only
/// materializes under real churn.
pub const CHANGE_INDEX_CAPACITY: usize = 65_536;

/// A command in the replicated log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogCommand {
    /// Write (upsert) a batch of rows into one pool. Batching is the wire
    /// reality of Table 3 ("Body is list of NetworkState objects in JSON")
    /// and keeps large monitor rounds to one consensus commit.
    WriteBatch {
        /// Destination pool.
        pool: Pool,
        /// The rows to upsert.
        rows: Vec<NetworkState>,
    },
    /// Delete a batch of keys from one pool (e.g. clearing an application's
    /// PS after the checker consumed it).
    DeleteBatch {
        /// Target pool.
        pool: Pool,
        /// Keys to remove.
        keys: Vec<StateKey>,
    },
    /// Bootstrap bulk ingest: upsert a large batch with batched slot
    /// minting, pre-sized column storage, and a **single** change-index
    /// watermark bump instead of one changefeed entry per row. Applies
    /// the fast path only when the destination pool is empty (the seed
    /// case); over a non-empty pool it degrades to [`WriteBatch`]
    /// semantics, so replaying a recovered `BulkBatch` over
    /// snapshot-restored rows stays deterministic.
    ///
    /// Incremental readers from before the bulk load observe a raised
    /// compaction floor and fall back to a full snapshot — exactly what
    /// a seed-sized `WriteBatch` would force anyway by blowing through
    /// the change-index capacity.
    ///
    /// [`WriteBatch`]: LogCommand::WriteBatch
    BulkBatch {
        /// Destination pool.
        pool: Pool,
        /// The rows to upsert. Shared, not owned: a seed batch is
        /// millions of rows, and the commit path copies the command
        /// several times (the submit retry clone, the WAL accept and
        /// commit records, replica catch-up). Behind an `Arc` every copy
        /// is a refcount bump; the wire format is unchanged
        /// (serialization is transparent over the pointer).
        rows: std::sync::Arc<Vec<NetworkState>>,
    },
    /// Record checker receipts for an application to poll.
    PostReceipts {
        /// The receipts.
        receipts: Vec<WriteReceipt>,
    },
    /// A no-op used by new leaders to commit a barrier slot (standard
    /// multi-Paxos trick to learn the commit frontier).
    Noop,
    /// A client command wrapped with a ring-unique request id. The state
    /// machine applies each id at most once, which makes leader-failover
    /// re-submission safe: if the original proposal is *also* recovered
    /// and chosen by a later leader, the duplicate apply is skipped
    /// (exactly-once above at-least-once, the textbook construction).
    Tagged {
        /// Ring-unique request id.
        id: u64,
        /// The wrapped command.
        inner: Box<LogCommand>,
    },
}

impl LogCommand {
    /// Rough payload size (row count) for bus-load accounting.
    pub fn weight(&self) -> usize {
        match self {
            LogCommand::WriteBatch { rows, .. } => rows.len().max(1),
            LogCommand::BulkBatch { rows, .. } => rows.len().max(1),
            LogCommand::DeleteBatch { keys, .. } => keys.len().max(1),
            LogCommand::PostReceipts { receipts } => receipts.len().max(1),
            LogCommand::Noop => 1,
            LogCommand::Tagged { inner, .. } => inner.weight(),
        }
    }
}

/// One pool's bounded changefeed: (version, slot id) pairs in commit
/// order, plus the compaction floor and the pool watermark.
#[derive(Debug, Clone, Default)]
struct ChangeIndex {
    /// Effective changes, oldest first. Compact [`SlotId`]s only —
    /// `read_since` materializes current row values straight from the
    /// column at read time, and tombstones resolve slot → var → string
    /// key at the wire edge, so the index stays a word and a half per
    /// entry no matter how large keys or rows are.
    entries: VecDeque<(u64, SlotId)>,
    /// Version of the newest compacted-away entry; requests at or below
    /// it cannot be served incrementally.
    floor: u64,
    /// Version of the newest effective change to this pool.
    watermark: u64,
}

impl ChangeIndex {
    fn record(&mut self, version: u64, key: SlotId, capacity: usize) {
        if self.entries.len() >= capacity {
            if let Some((v, _)) = self.entries.pop_front() {
                self.floor = v;
            }
        }
        self.entries.push_back((version, key));
        self.watermark = version;
    }
}

/// The materialized store one replica derives from the committed log.
///
/// Pools are columnar [`Column`]s over the process-wide slot space: every
/// upsert, delete, and point read resolves one dense slot index instead
/// of hashing entity strings, row payloads sit contiguously in each
/// column's arena, and the rows themselves still carry their names — so
/// everything wire-visible (reads, deltas, receipts) is produced without
/// consulting the interner, except delta *tombstones*, whose keys are
/// resolved back to strings at the read edge.
#[derive(Debug, Clone)]
pub struct StateMachine {
    pools: HashMap<Pool, Column>,
    receipts: HashMap<AppId, Vec<WriteReceipt>>,
    next_version: u64,
    applied: u64,
    /// Request ids already applied (dedupe for failover re-submission).
    applied_ids: std::collections::HashSet<u64>,
    /// Per-pool bounded changefeeds (deterministic replica state: derived
    /// purely from the committed log, like the pools themselves).
    changes: HashMap<Pool, ChangeIndex>,
    /// Value-identical writes suppressed so far (cumulative).
    suppressed: u64,
    /// Per-pool change-index bound (runtime sizing, not logical state —
    /// snapshots do not carry it; recovery paths must re-apply it).
    change_index_cap: usize,
    /// Cumulative bulk-ingest stage timings (runtime observability, not
    /// logical state — excluded from snapshots and replica equality).
    bulk: BulkStats,
}

/// Cumulative stage timings of every [`LogCommand::BulkBatch`] this
/// machine has applied: wall time minting slots (including entity
/// interning via `var_id`), filling column arenas, and maintaining the
/// change index. Runtime observability only — never part of snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BulkStats {
    /// Rows bulk-ingested so far.
    pub rows: u64,
    /// Nanoseconds spent in batched slot minting (the intern stage).
    pub intern_nanos: u64,
    /// Nanoseconds spent stamping versions and filling the column arena.
    pub fill_nanos: u64,
    /// Nanoseconds spent on change-index/watermark maintenance.
    pub index_nanos: u64,
}

impl BulkStats {
    /// Field-wise difference against an earlier reading (saturating).
    pub fn since(&self, earlier: &BulkStats) -> BulkStats {
        BulkStats {
            rows: self.rows.saturating_sub(earlier.rows),
            intern_nanos: self.intern_nanos.saturating_sub(earlier.intern_nanos),
            fill_nanos: self.fill_nanos.saturating_sub(earlier.fill_nanos),
            index_nanos: self.index_nanos.saturating_sub(earlier.index_nanos),
        }
    }
}

impl Default for StateMachine {
    fn default() -> Self {
        StateMachine {
            pools: HashMap::new(),
            receipts: HashMap::new(),
            next_version: 0,
            applied: 0,
            applied_ids: std::collections::HashSet::new(),
            changes: HashMap::new(),
            suppressed: 0,
            change_index_cap: CHANGE_INDEX_CAPACITY,
            bulk: BulkStats::default(),
        }
    }
}

impl StateMachine {
    /// Upsert `rows` into `pool` with per-row slot resolution, version
    /// stamping, value-identical suppression, and changefeed recording —
    /// the [`LogCommand::WriteBatch`] semantics, shared with the
    /// non-empty-pool fallback of [`LogCommand::BulkBatch`].
    fn apply_write_rows(&mut self, pool: &Pool, rows: &[NetworkState]) -> usize {
        let p = self
            .pools
            .entry(pool.clone())
            .or_insert_with(|| Column::new(pool.clone()));
        let idx = self.changes.entry(pool.clone()).or_default();
        let mut effective = 0;
        for row in rows {
            let slot = slot_registry().slot_of(pool, row.var_id());
            // Value-identical re-writes are complete no-ops: no
            // version bump, no watermark move, no index entry, and
            // the stored row keeps its original timestamp. This is
            // what lets delta-maintained views stay bit-equal to
            // full reads while quiescent rounds write nothing new.
            if let Some(existing) = p.get_slot(slot) {
                if existing.value == row.value && existing.writer == row.writer {
                    self.suppressed += 1;
                    continue;
                }
            }
            self.next_version += 1;
            let mut stamped = row.clone();
            stamped.version = Version(self.next_version);
            p.upsert_at(slot, stamped);
            idx.record(self.next_version, slot, self.change_index_cap);
            effective += 1;
        }
        effective
    }

    /// An empty machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the per-pool change-index bound (see
    /// [`CHANGE_INDEX_CAPACITY`] for the default and sizing guidance).
    /// A shrunk bound takes effect on subsequent writes.
    pub fn set_change_index_capacity(&mut self, capacity: usize) {
        self.change_index_cap = capacity.max(1);
    }

    /// Apply one committed command. Returns the number of rows touched.
    pub fn apply(&mut self, cmd: &LogCommand) -> usize {
        self.applied += 1;
        match cmd {
            LogCommand::WriteBatch { pool, rows } => self.apply_write_rows(pool, rows),
            LogCommand::BulkBatch { pool, rows } => {
                if self.pools.get(pool).map(|p| !p.is_empty()).unwrap_or(false) {
                    // Replay safety: over a non-empty pool (e.g. a log
                    // tail replayed atop a snapshot that post-dates the
                    // original bulk apply on another replica's timeline),
                    // fall back to ordinary per-row semantics.
                    return self.apply_write_rows(pool, rows);
                }
                let minted = Instant::now();
                let vars: Vec<statesman_types::VarId> = rows.iter().map(|r| r.var_id()).collect();
                let slots = slot_registry().slots_of_batch(pool, &vars);
                let filled = Instant::now();
                let p = self
                    .pools
                    .entry(pool.clone())
                    .or_insert_with(|| Column::new(pool.clone()));
                p.reserve(slot_registry().pool_slots(pool), rows.len());
                for (slot, row) in slots.iter().zip(rows.iter()) {
                    self.next_version += 1;
                    let mut stamped = row.clone();
                    stamped.version = Version(self.next_version);
                    p.upsert_at(*slot, stamped);
                }
                let indexed = Instant::now();
                // One watermark bump for the whole batch. Raising the
                // floor with it declares the pre-seed history unservable,
                // which is what per-row recording would have converged to
                // after compaction at seed scale.
                let idx = self.changes.entry(pool.clone()).or_default();
                idx.entries.clear();
                idx.floor = self.next_version;
                idx.watermark = self.next_version;
                let done = Instant::now();
                self.bulk.rows += rows.len() as u64;
                self.bulk.intern_nanos += (filled - minted).as_nanos() as u64;
                self.bulk.fill_nanos += (indexed - filled).as_nanos() as u64;
                self.bulk.index_nanos += (done - indexed).as_nanos() as u64;
                rows.len()
            }
            LogCommand::DeleteBatch { pool, keys } => {
                let mut removed = 0;
                if let Some(p) = self.pools.get_mut(pool) {
                    let idx = self.changes.entry(pool.clone()).or_default();
                    for k in keys {
                        let Some(slot) = slot_registry().lookup(pool, k.var_id()) else {
                            continue;
                        };
                        if p.remove_slot(slot).is_some() {
                            self.next_version += 1;
                            idx.record(self.next_version, slot, self.change_index_cap);
                            removed += 1;
                        }
                    }
                }
                removed
            }
            LogCommand::PostReceipts { receipts } => {
                for r in receipts {
                    self.receipts
                        .entry(r.app.clone())
                        .or_default()
                        .push(r.clone());
                }
                receipts.len()
            }
            LogCommand::Noop => 0,
            LogCommand::Tagged { id, inner } => {
                if self.applied_ids.insert(*id) {
                    // Inner apply; undo the outer tick so `applied`
                    // counts logical commands once.
                    self.applied -= 1;
                    self.apply(inner)
                } else {
                    0
                }
            }
        }
    }

    /// Read one row.
    pub fn get(&self, pool: &Pool, key: &StateKey) -> Option<&NetworkState> {
        self.pools.get(pool)?.get_var(key.var_id())
    }

    /// All rows of a pool, in slot order.
    pub fn pool_rows(&self, pool: &Pool) -> Vec<NetworkState> {
        self.pools
            .get(pool)
            .map(|p| p.rows().cloned().collect())
            .unwrap_or_default()
    }

    /// All rows of a pool whose entity matches `pred`.
    pub fn pool_rows_where(
        &self,
        pool: &Pool,
        pred: impl Fn(&NetworkState) -> bool,
    ) -> Vec<NetworkState> {
        self.pools
            .get(pool)
            .map(|p| p.rows().filter(|r| pred(r)).cloned().collect())
            .unwrap_or_default()
    }

    /// Number of rows in a pool.
    pub fn pool_len(&self, pool: &Pool) -> usize {
        self.pools.get(pool).map(|p| p.len()).unwrap_or(0)
    }

    /// Total live rows across every pool. O(pools): columns track their
    /// live count.
    pub fn total_rows(&self) -> usize {
        self.pools.values().map(|p| p.len()).sum()
    }

    /// Live row count per pool, sorted by wire name. O(pools), not
    /// O(rows): columns track their live count.
    pub fn pool_stats(&self) -> Vec<(Pool, u64)> {
        let mut v: Vec<(Pool, u64)> = self
            .pools
            .iter()
            .map(|(p, col)| (p.clone(), col.len() as u64))
            .collect();
        v.sort_by_key(|(p, _)| p.wire_name());
        v
    }

    /// Approximate resident bytes of all columns (slot vectors, bitmaps,
    /// arena reservations, live payloads) and the live rows they hold —
    /// the source of the `state_bytes_per_var` gauge.
    pub fn state_bytes(&self) -> (u64, u64) {
        let bytes: usize = self.pools.values().map(|c| c.approx_bytes()).sum();
        let rows: usize = self.pools.values().map(|c| c.len()).sum();
        (bytes as u64, rows as u64)
    }

    /// All non-empty pools, sorted by wire name (stable enumeration for
    /// the checker's PS discovery).
    pub fn pools(&self) -> Vec<Pool> {
        let mut v: Vec<Pool> = self
            .pools
            .iter()
            .filter(|(_, rows)| !rows.is_empty())
            .map(|(p, _)| p.clone())
            .collect();
        v.sort_by_key(|p| p.wire_name());
        v
    }

    /// Drain (return and clear) the receipts queued for one application.
    pub fn take_receipts(&mut self, app: &AppId) -> Vec<WriteReceipt> {
        self.receipts.remove(app).unwrap_or_default()
    }

    /// Peek queued receipts without draining.
    pub fn peek_receipts(&self, app: &AppId) -> &[WriteReceipt] {
        self.receipts.get(app).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Commands applied so far (monotone; equality across replicas after
    /// the same log prefix is the replication invariant tests assert).
    pub fn applied_count(&self) -> u64 {
        self.applied
    }

    /// The highest version stamped so far.
    pub fn current_version(&self) -> Version {
        Version(self.next_version)
    }

    /// The version of the newest effective change to one pool (GENESIS if
    /// the pool has never changed).
    pub fn pool_watermark(&self, pool: &Pool) -> Version {
        Version(self.changes.get(pool).map(|c| c.watermark).unwrap_or(0))
    }

    /// Value-identical writes suppressed so far (cumulative).
    pub fn suppressed_count(&self) -> u64 {
        self.suppressed
    }

    /// Cumulative bulk-ingest stage timings (see [`BulkStats`]).
    pub fn bulk_stats(&self) -> BulkStats {
        self.bulk
    }

    /// Everything that changed in one pool after `since`, or `None` when
    /// the change index cannot serve the request — `since` predates the
    /// compaction floor, or is ahead of this replica's watermark (a
    /// behind follower). Callers fall back to a full snapshot.
    ///
    /// Upserts carry the row's *current* value (keys touched several
    /// times appear once); keys no longer present are tombstone deletes.
    pub fn changes_since(&self, pool: &Pool, since: Version) -> Option<StateDelta> {
        let idx = self.changes.get(pool);
        let (floor, watermark) = idx.map(|c| (c.floor, c.watermark)).unwrap_or((0, 0));
        if since.0 < floor || since.0 > watermark {
            return None;
        }
        if since.0 == watermark {
            return Some(StateDelta::incremental(vec![], vec![], Version(watermark)));
        }
        let idx = idx.expect("watermark > since >= 0 implies a change index");
        let rows = self.pools.get(pool);
        let mut seen: HashSet<SlotId> = HashSet::new();
        let mut upserts = Vec::new();
        let mut deletes = Vec::new();
        // Newest-first so the dedupe keeps each key's latest disposition.
        for (v, slot) in idx.entries.iter().rev() {
            if *v <= since.0 {
                break;
            }
            if !seen.insert(*slot) {
                continue;
            }
            match rows.and_then(|p| p.get_slot(*slot)) {
                Some(row) => upserts.push(row.clone()),
                // Tombstones are the one place the read edge consults the
                // interner: the deleted row is gone, so its string key is
                // rebuilt from the slot's variable (counted as a key
                // resolution).
                None => deletes.push(slot_registry().var_of(pool, *slot).resolve_key()),
            }
        }
        Some(StateDelta::incremental(
            upserts,
            deletes,
            Version(watermark),
        ))
    }

    /// A canonical, serializable image of this machine for durable
    /// snapshots and recovery-equivalence checks. Hash-map contents are
    /// emitted in a deterministic order (pools by wire name, rows by key,
    /// receipts by application id) and interned [`VarId`]s are resolved
    /// back to string keys, so two machines with identical logical
    /// contents produce bit-identical snapshots — including across
    /// processes with differently populated interners.
    pub fn to_snapshot(&self) -> MachineSnapshot {
        let mut pools: Vec<(Pool, Vec<NetworkState>)> = self
            .pools
            .iter()
            .map(|(p, col)| {
                let mut rows: Vec<NetworkState> = col.rows().cloned().collect();
                rows.sort_by_key(|r| r.key());
                (p.clone(), rows)
            })
            .collect();
        pools.sort_by_key(|(p, _)| p.wire_name());
        let mut receipts: Vec<(AppId, Vec<WriteReceipt>)> = self
            .receipts
            .iter()
            .map(|(a, r)| (a.clone(), r.clone()))
            .collect();
        receipts.sort_by(|(a, _), (b, _)| a.0.cmp(&b.0));
        let mut applied_ids: Vec<u64> = self.applied_ids.iter().copied().collect();
        applied_ids.sort_unstable();
        let mut changes: Vec<(Pool, ChangeIndexSnapshot)> = self
            .changes
            .iter()
            .map(|(p, idx)| {
                (
                    p.clone(),
                    ChangeIndexSnapshot {
                        entries: idx
                            .entries
                            .iter()
                            .map(|(v, slot)| (*v, slot_registry().var_of(p, *slot).resolve_key()))
                            .collect(),
                        floor: idx.floor,
                        watermark: idx.watermark,
                    },
                )
            })
            .collect();
        changes.sort_by_key(|(p, _)| p.wire_name());
        MachineSnapshot {
            pools,
            receipts,
            next_version: self.next_version,
            applied: self.applied,
            applied_ids,
            changes,
            suppressed: self.suppressed,
        }
    }

    /// Rebuild a machine from a [`MachineSnapshot`] (the recovery path).
    /// String keys are re-interned into [`VarId`]s on load.
    pub fn from_snapshot(snap: &MachineSnapshot) -> StateMachine {
        let pools = snap
            .pools
            .iter()
            .map(|(p, rows)| {
                let mut col = Column::new(p.clone());
                for r in rows {
                    col.upsert(r.clone());
                }
                (p.clone(), col)
            })
            .collect();
        let receipts = snap.receipts.iter().cloned().collect();
        let changes = snap
            .changes
            .iter()
            .map(|(p, idx)| {
                (
                    p.clone(),
                    ChangeIndex {
                        entries: idx
                            .entries
                            .iter()
                            .map(|(v, key)| (*v, slot_registry().slot_of(p, key.var_id())))
                            .collect(),
                        floor: idx.floor,
                        watermark: idx.watermark,
                    },
                )
            })
            .collect();
        StateMachine {
            pools,
            receipts,
            next_version: snap.next_version,
            applied: snap.applied,
            applied_ids: snap.applied_ids.iter().copied().collect(),
            changes,
            suppressed: snap.suppressed,
            change_index_cap: CHANGE_INDEX_CAPACITY,
            bulk: BulkStats::default(),
        }
    }
}

/// Serializable image of one pool's change index (see
/// [`StateMachine::to_snapshot`]). Interned ids are resolved to string
/// keys so the image is self-contained across process restarts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangeIndexSnapshot {
    entries: Vec<(u64, StateKey)>,
    floor: u64,
    watermark: u64,
}

/// A canonical, serializable image of a [`StateMachine`].
///
/// Produced by [`StateMachine::to_snapshot`]; all collections are in a
/// deterministic order, so `PartialEq` on two images is a bit-equality
/// check of the logical machine state (the recovery-equivalence tests
/// rely on this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSnapshot {
    pools: Vec<(Pool, Vec<NetworkState>)>,
    receipts: Vec<(AppId, Vec<WriteReceipt>)>,
    next_version: u64,
    applied: u64,
    applied_ids: Vec<u64>,
    changes: Vec<(Pool, ChangeIndexSnapshot)>,
    suppressed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_types::{Attribute, EntityName, SimTime, Value, WriteOutcome};

    fn row(dev: &str, fw: &str) -> NetworkState {
        NetworkState::new(
            EntityName::device("dc1", dev),
            Attribute::DeviceFirmwareVersion,
            Value::text(fw),
            SimTime::ZERO,
            AppId::monitor(),
        )
    }

    #[test]
    fn writes_stamp_increasing_versions() {
        let mut m = StateMachine::new();
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "1"), row("b", "1")],
        });
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "2")],
        });
        let a = m.get(&Pool::Observed, &row("a", "").key()).unwrap();
        let b = m.get(&Pool::Observed, &row("b", "").key()).unwrap();
        assert!(a.version.is_newer_than(b.version));
        assert_eq!(a.value, Value::text("2"));
        assert_eq!(m.pool_len(&Pool::Observed), 2);
        assert_eq!(m.current_version(), Version(3));
    }

    #[test]
    fn pools_are_independent() {
        let mut m = StateMachine::new();
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "1")],
        });
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Target,
            rows: vec![row("a", "9")],
        });
        assert_eq!(
            m.get(&Pool::Observed, &row("a", "").key()).unwrap().value,
            Value::text("1")
        );
        assert_eq!(
            m.get(&Pool::Target, &row("a", "").key()).unwrap().value,
            Value::text("9")
        );
    }

    #[test]
    fn deletes_remove_rows() {
        let mut m = StateMachine::new();
        let app = AppId::new("te");
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Proposed(app.clone()),
            rows: vec![row("a", "1")],
        });
        let removed = m.apply(&LogCommand::DeleteBatch {
            pool: Pool::Proposed(app.clone()),
            keys: vec![row("a", "").key()],
        });
        assert_eq!(removed, 1);
        assert_eq!(m.pool_len(&Pool::Proposed(app)), 0);
    }

    #[test]
    fn receipts_queue_and_drain() {
        let mut m = StateMachine::new();
        let app = AppId::new("upgrade");
        let receipt = WriteReceipt {
            app: app.clone(),
            key: row("a", "").key(),
            proposed: Value::text("7"),
            outcome: WriteOutcome::Accepted,
            decided_at: SimTime::ZERO,
        };
        m.apply(&LogCommand::PostReceipts {
            receipts: vec![receipt.clone()],
        });
        assert_eq!(m.peek_receipts(&app).len(), 1);
        assert_eq!(m.take_receipts(&app), vec![receipt]);
        assert!(m.take_receipts(&app).is_empty());
    }

    #[test]
    fn noop_touches_nothing() {
        let mut m = StateMachine::new();
        assert_eq!(m.apply(&LogCommand::Noop), 0);
        assert_eq!(m.applied_count(), 1);
        assert_eq!(m.current_version(), Version::GENESIS);
    }

    #[test]
    fn filtered_scan() {
        let mut m = StateMachine::new();
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("agg-1-1", "1"), row("tor-1-1", "1")],
        });
        let aggs = m.pool_rows_where(&Pool::Observed, |r| {
            r.entity
                .as_device()
                .map(|d| d.as_str().starts_with("agg"))
                .unwrap_or(false)
        });
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn value_identical_writes_are_complete_noops() {
        let mut m = StateMachine::new();
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "1")],
        });
        let before = m.get(&Pool::Observed, &row("a", "").key()).unwrap().clone();
        // Same value+writer, later timestamp: suppressed entirely.
        let mut later = row("a", "1");
        later.updated_at = SimTime::from_secs(300);
        let touched = m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![later],
        });
        assert_eq!(touched, 0);
        assert_eq!(m.suppressed_count(), 1);
        assert_eq!(
            m.get(&Pool::Observed, &row("a", "").key()).unwrap(),
            &before,
            "suppressed writes leave the row bit-identical"
        );
        assert_eq!(m.pool_watermark(&Pool::Observed), Version(1));
        // A real change still lands and moves the watermark.
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "2")],
        });
        assert_eq!(m.pool_watermark(&Pool::Observed), Version(2));
    }

    #[test]
    fn changes_since_returns_current_rows_and_tombstones() {
        let mut m = StateMachine::new();
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "1"), row("b", "1")],
        });
        let w0 = m.pool_watermark(&Pool::Observed);
        assert_eq!(w0, Version(2));
        // Touch `a` twice and delete `b`: the delta dedupes to the final
        // disposition of each key.
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "2")],
        });
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "3")],
        });
        m.apply(&LogCommand::DeleteBatch {
            pool: Pool::Observed,
            keys: vec![row("b", "").key()],
        });
        let d = m.changes_since(&Pool::Observed, w0).unwrap();
        assert_eq!(d.upserts.len(), 1);
        assert_eq!(d.upserts[0].value, Value::text("3"));
        assert_eq!(d.deletes, vec![row("b", "").key()]);
        assert_eq!(d.watermark, Version(5), "deletes bump versions too");
        assert!(!d.snapshot);
        // Reading at the watermark is an empty delta; reading ahead of it
        // (a behind replica) cannot be served.
        assert!(m
            .changes_since(&Pool::Observed, Version(5))
            .unwrap()
            .is_empty());
        assert!(m.changes_since(&Pool::Observed, Version(9)).is_none());
    }

    #[test]
    fn compaction_floor_forces_fallback() {
        let mut m = StateMachine::new();
        let rows: Vec<NetworkState> = (0..CHANGE_INDEX_CAPACITY + 10)
            .map(|i| row(&format!("d{i}"), "1"))
            .collect();
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows,
        });
        // The oldest 10 entries were compacted away: genesis reads fall
        // back, reads above the floor still work.
        assert!(m.changes_since(&Pool::Observed, Version::GENESIS).is_none());
        let d = m.changes_since(&Pool::Observed, Version(10 + 100)).unwrap();
        assert_eq!(d.upserts.len(), CHANGE_INDEX_CAPACITY - 100);
        // Pool contents are unaffected by index compaction.
        assert_eq!(m.pool_len(&Pool::Observed), CHANGE_INDEX_CAPACITY + 10);
    }

    #[test]
    fn bulk_batch_seeds_empty_pool_with_single_watermark_bump() {
        let mut m = StateMachine::new();
        let rows: Vec<NetworkState> = (0..100).map(|i| row(&format!("bulk{i}"), "1")).collect();
        let touched = m.apply(&LogCommand::BulkBatch {
            pool: Pool::Observed,
            rows: rows.clone().into(),
        });
        assert_eq!(touched, 100);
        assert_eq!(m.pool_len(&Pool::Observed), 100);
        assert_eq!(m.pool_watermark(&Pool::Observed), Version(100));
        assert_eq!(m.bulk_stats().rows, 100);
        // Versions stamped per row, ascending, like a WriteBatch would.
        let v0 = m.get(&Pool::Observed, &rows[0].key()).unwrap().version;
        let v99 = m.get(&Pool::Observed, &rows[99].key()).unwrap().version;
        assert!(v99.is_newer_than(v0));
        // Pre-seed history is unservable (floor raised); reads at the
        // watermark are an empty delta, exactly like post-compaction.
        assert!(m.changes_since(&Pool::Observed, Version::GENESIS).is_none());
        assert!(m
            .changes_since(&Pool::Observed, Version(100))
            .unwrap()
            .is_empty());
        // Subsequent incremental writes are served normally.
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("bulk0", "2")],
        });
        let d = m.changes_since(&Pool::Observed, Version(100)).unwrap();
        assert_eq!(d.upserts.len(), 1);
        assert_eq!(d.upserts[0].value, Value::text("2"));
    }

    #[test]
    fn bulk_batch_over_non_empty_pool_degrades_to_write_semantics() {
        let mut m = StateMachine::new();
        m.apply(&LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "1")],
        });
        let touched = m.apply(&LogCommand::BulkBatch {
            pool: Pool::Observed,
            rows: vec![row("a", "1"), row("b", "2")].into(),
        });
        // Value-identical row suppressed, new row recorded in the index.
        assert_eq!(touched, 1);
        assert_eq!(m.suppressed_count(), 1);
        assert_eq!(m.bulk_stats().rows, 0, "fast path did not run");
        let d = m.changes_since(&Pool::Observed, Version(1)).unwrap();
        assert_eq!(d.upserts.len(), 1);
        assert_eq!(d.upserts[0].value, Value::text("2"));
    }

    #[test]
    fn bulk_batch_snapshot_round_trips_like_any_write() {
        let mut m = StateMachine::new();
        m.apply(&LogCommand::BulkBatch {
            pool: Pool::Observed,
            rows: std::sync::Arc::new((0..50).map(|i| row(&format!("s{i}"), "1")).collect()),
        });
        let snap = m.to_snapshot();
        let back = StateMachine::from_snapshot(&snap);
        assert_eq!(back.to_snapshot(), snap, "snapshot round-trip is exact");
        assert_eq!(back.pool_watermark(&Pool::Observed), Version(50));
        assert!(back
            .changes_since(&Pool::Observed, Version::GENESIS)
            .is_none());
    }

    #[test]
    fn command_weights() {
        assert_eq!(LogCommand::Noop.weight(), 1);
        assert_eq!(
            LogCommand::WriteBatch {
                pool: Pool::Observed,
                rows: vec![row("a", "1"), row("b", "1")]
            }
            .weight(),
            2
        );
    }
}
