//! Per-replica durable write-ahead log with CRC32 + length framing and a
//! `prev_hash` chain.
//!
//! Every acceptor promise, acceptor accept, and learner commit is appended
//! to the replica's [`ReplicaStore`] *before* the corresponding message is
//! acknowledged, so a kill -9 never loses acknowledged state. The framed
//! backends lay records out as
//!
//! ```text
//! ┌─────────┬─────────┬─────────┬───────────┬────────────────┐
//! │ len u32 │ crc u32 │ seq u64 │ prev u64  │ payload (JSON) │
//! │   LE    │   LE    │   LE    │   LE      │   len bytes    │
//! └─────────┴─────────┴─────────┴───────────┴────────────────┘
//! ```
//!
//! where `crc` covers `seq ‖ prev ‖ payload` and `prev` is the running
//! FNV-1a-64 hash chain: the genesis record hashes from zero, and after a
//! snapshot compaction the retained tail is re-framed onto a fresh chain
//! anchored at `chain_hash(0, snapshot_payload)` — so the snapshot + log
//! pair is tamper-evident as a unit.
//!
//! Recovery ([`ReplicaStore::load`]) is repair-or-refuse:
//!
//! * a torn **final** record (incomplete bytes or CRC failure at the tail)
//!   is truncated and the medium repaired — the record was never
//!   acknowledged, so dropping it is safe;
//! * any **mid-log** CRC, sequence, or chain break means tampering or
//!   media corruption of acknowledged state: the log is *refused*, the
//!   replica recovers from its last valid snapshot alone, and the ring's
//!   catch-up machinery re-ships the lost suffix from the leader.
//!
//! Three backends share one API ([`DurabilityMode`]): a logical in-memory
//! event store (the default — no byte serialization, keeps bench numbers
//! comparable), a byte-framed in-memory store (corruption-injectable, used
//! by chaos), and real files (one `replica-N.wal`/`replica-N.snap` pair
//! per replica under a per-partition directory).

use crate::bus::ReplicaId;
use crate::machine::StateMachine;
use crate::paxos::{Ballot, Slot};
use crate::snapshot::{MachineImage, Snapshot, SnapshotWire};
use crate::LogCommand;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Which durability backend a ring's replicas write to.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum DurabilityMode {
    /// Logical in-memory event store: structural clones, no byte framing.
    /// The default — existing benches measure consensus, not serialization.
    #[default]
    Memory,
    /// Byte-framed log held in memory: full CRC + hash-chain framing,
    /// corruption injectable, no filesystem traffic. The chaos default.
    FramedMemory,
    /// Byte-framed log on real files under the given directory (one
    /// subdirectory per partition, one `.wal`/`.snap` pair per replica).
    Dir(PathBuf),
}

/// One durable log record: the acceptor/learner transitions that must
/// survive a crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalEvent {
    /// Acceptor promised a ballot (phase 1b, or a candidate's
    /// self-promise).
    Promise {
        /// The promised ballot.
        ballot: Ballot,
    },
    /// Acceptor accepted a value for a slot (phase 2b, or a leader's
    /// self-accept).
    Accept {
        /// Target slot.
        slot: Slot,
        /// The accepting ballot.
        ballot: Ballot,
        /// The accepted value.
        cmd: LogCommand,
    },
    /// Learner committed a chosen slot.
    Commit {
        /// The chosen slot.
        slot: Slot,
        /// The chosen value.
        cmd: LogCommand,
    },
}

impl WalEvent {
    /// Rough payload size (row count) for snapshot-cadence accounting.
    pub fn weight(&self) -> usize {
        match self {
            WalEvent::Promise { .. } => 1,
            WalEvent::Accept { cmd, .. } | WalEvent::Commit { cmd, .. } => cmd.weight(),
        }
    }
}

/// Corruption to inject into a crashed replica's durable files (chaos
/// harness). Only meaningful on framed backends; the logical backend
/// models a perfect medium and ignores injection.
#[derive(Debug, Clone, PartialEq)]
pub enum WalCorruption {
    /// No corruption.
    None,
    /// Append this many garbage bytes to the log tail — models a record
    /// that was mid-write (and therefore never acknowledged) when the
    /// process died. Recovery must truncate it.
    TornTail {
        /// Number of garbage bytes to append.
        bytes: usize,
    },
    /// Flip a bit in acknowledged durable state: a mid-log record when the
    /// log has two or more records, otherwise the snapshot blob. Recovery
    /// must refuse the damaged portion (never serve it) and fall back to
    /// snapshot + leader catch-up.
    BitFlip,
}

/// Cumulative per-store counters, surfaced as `wal_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WalStats {
    /// Records appended (acknowledged writes only — injection excluded).
    pub appends: u64,
    /// Bytes written (framed backends: exact; logical backend: estimate).
    pub bytes_written: u64,
    /// Synchronous flushes (one per append/snapshot write, modeling
    /// sync-before-ack; real `File::sync_all` calls on the dir backend).
    pub fsyncs: u64,
    /// Snapshot compactions performed.
    pub compactions: u64,
    /// Torn records truncated during recovery.
    pub truncated_records: u64,
    /// Recoveries that refused a corrupted log/snapshot.
    pub refusals: u64,
    /// Highest decree durably committed in this store.
    pub tail_decree: u64,
}

impl WalStats {
    /// Fold another store's counters into this one (ring aggregation).
    pub fn merge(&mut self, other: &WalStats) {
        self.appends += other.appends;
        self.bytes_written += other.bytes_written;
        self.fsyncs += other.fsyncs;
        self.compactions += other.compactions;
        self.truncated_records += other.truncated_records;
        self.refusals += other.refusals;
        self.tail_decree = self.tail_decree.max(other.tail_decree);
    }
}

/// What [`ReplicaStore::load`] recovered from the medium.
#[derive(Debug)]
pub struct WalLoad {
    /// The durable snapshot, if one was written and is intact.
    pub snapshot: Option<Snapshot>,
    /// The log tail above the snapshot, in append order (empty when the
    /// log was refused).
    pub events: Vec<WalEvent>,
    /// Torn tail records truncated by this load.
    pub truncated_records: u64,
    /// Whether acknowledged durable state was refused as corrupt (the
    /// replica must rejoin via leader catch-up).
    pub refused: bool,
}

// ---- framing primitives ----

/// Bytes of fixed header per record: len(4) + crc(4) + seq(8) + prev(8).
pub const RECORD_HEADER_LEN: usize = 24;

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One FNV-1a-64 hash-chain step: fold the previous link and this record's
/// payload. The genesis record chains from `prev = 0`; a post-snapshot
/// chain is anchored at `chain_hash(0, snapshot_payload)`.
pub fn chain_hash(prev: u64, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in prev.to_le_bytes().iter().chain(payload.iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn u32_le(bytes: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"))
}

fn u64_le(bytes: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"))
}

/// Frame one record: `[len][crc][seq][prev_hash][payload]`, CRC over
/// `seq ‖ prev_hash ‖ payload`.
pub fn encode_record(seq: u64, prev_hash: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&prev_hash.to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf[8..]);
    buf[4..8].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// The outcome of walking a framed log from its chain anchor.
#[derive(Debug)]
pub struct ReplayedLog {
    /// Payloads of every verified record, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte offset where each verified record starts.
    pub offsets: Vec<usize>,
    /// Length of the verified prefix; bytes beyond it are torn or corrupt.
    pub valid_len: usize,
    /// Sequence number the next append would take.
    pub end_seq: u64,
    /// Chain hash after the last verified record.
    pub end_hash: u64,
    /// Torn records found at the tail (safe to truncate: never
    /// acknowledged).
    pub truncated_records: u64,
    /// A mid-log CRC/sequence/chain violation, if one was found —
    /// acknowledged state is damaged and the log must be refused.
    pub corrupt: Option<String>,
}

/// Walk a framed log, verifying CRCs, sequence numbers, and the hash
/// chain from `anchor`. Stops at the first problem: an incomplete or
/// CRC-failing *final* record counts as torn; anything else marks the log
/// corrupt.
pub fn replay_log(bytes: &[u8], anchor: u64) -> ReplayedLog {
    let mut out = ReplayedLog {
        payloads: Vec::new(),
        offsets: Vec::new(),
        valid_len: 0,
        end_seq: 0,
        end_hash: anchor,
        truncated_records: 0,
        corrupt: None,
    };
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < RECORD_HEADER_LEN {
            out.truncated_records += 1;
            break;
        }
        let len = u32_le(bytes, pos) as usize;
        if remaining < RECORD_HEADER_LEN + len {
            // NOTE: a corrupted length field that points past EOF is
            // indistinguishable from a torn tail and is truncated; the
            // ring-level `RecoverySafetyChecker` is the backstop if that
            // ever drops acknowledged commits.
            out.truncated_records += 1;
            break;
        }
        let crc = u32_le(bytes, pos + 4);
        let seq = u64_le(bytes, pos + 8);
        let prev = u64_le(bytes, pos + 16);
        let end = pos + RECORD_HEADER_LEN + len;
        let actual = crc32(&bytes[pos + 8..end]);
        if actual != crc {
            if end == bytes.len() {
                out.truncated_records += 1;
            } else {
                out.corrupt = Some(format!(
                    "crc mismatch at record {} (offset {pos}): stored {crc:#010x}, computed {actual:#010x}",
                    out.end_seq
                ));
            }
            break;
        }
        if seq != out.end_seq || prev != out.end_hash {
            out.corrupt = Some(format!(
                "hash chain break at record {} (offset {pos}): expected seq {} prev {:#018x}, found seq {seq} prev {prev:#018x}",
                out.end_seq, out.end_seq, out.end_hash
            ));
            break;
        }
        let payload = &bytes[pos + RECORD_HEADER_LEN..end];
        out.end_hash = chain_hash(out.end_hash, payload);
        out.end_seq += 1;
        out.offsets.push(pos);
        out.payloads.push(payload.to_vec());
        pos = end;
        out.valid_len = pos;
    }
    out
}

/// Frame a snapshot blob: `[len u32][crc u32][payload]`, CRC over the
/// payload. Returns the blob and the chain anchor the log after this
/// snapshot must start from.
pub fn encode_snapshot_blob(wire: &SnapshotWire) -> (Vec<u8>, u64) {
    let payload = serde_json::to_vec(wire).expect("snapshot serializes");
    let mut blob = Vec::with_capacity(8 + payload.len());
    blob.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    blob.extend_from_slice(&crc32(&payload).to_le_bytes());
    blob.extend_from_slice(&payload);
    let anchor = chain_hash(0, &payload);
    (blob, anchor)
}

/// Decode and verify a snapshot blob. Returns the snapshot and the chain
/// anchor derived from its payload.
pub fn decode_snapshot_blob(blob: &[u8]) -> Result<(SnapshotWire, u64), String> {
    if blob.len() < 8 {
        return Err(format!("snapshot blob too short ({} bytes)", blob.len()));
    }
    let len = u32_le(blob, 0) as usize;
    if blob.len() != 8 + len {
        return Err(format!(
            "snapshot blob length mismatch: header says {len}, have {}",
            blob.len() - 8
        ));
    }
    let crc = u32_le(blob, 4);
    let payload = &blob[8..];
    let actual = crc32(payload);
    if actual != crc {
        return Err(format!(
            "snapshot crc mismatch: stored {crc:#010x}, computed {actual:#010x}"
        ));
    }
    let wire: SnapshotWire = serde_json::from_slice(payload)
        .map_err(|e| format!("snapshot payload unparseable: {e:?}"))?;
    Ok((wire, chain_hash(0, payload)))
}

// ---- media ----

#[derive(Debug)]
enum Media {
    Mem {
        wal: Vec<u8>,
        snap: Option<Vec<u8>>,
    },
    Dir {
        wal_path: PathBuf,
        snap_path: PathBuf,
    },
}

impl Media {
    fn read_wal(&self) -> Vec<u8> {
        match self {
            Media::Mem { wal, .. } => wal.clone(),
            Media::Dir { wal_path, .. } => std::fs::read(wal_path).unwrap_or_default(),
        }
    }

    fn read_snap(&self) -> Option<Vec<u8>> {
        match self {
            Media::Mem { snap, .. } => snap.clone(),
            Media::Dir { snap_path, .. } => std::fs::read(snap_path).ok(),
        }
    }

    /// Append + flush. Returns fsyncs performed (modeled as 1 in memory).
    fn append_wal(&mut self, bytes: &[u8]) -> u64 {
        match self {
            Media::Mem { wal, .. } => {
                wal.extend_from_slice(bytes);
                1
            }
            Media::Dir { wal_path, .. } => {
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&*wal_path)
                    .unwrap_or_else(|e| panic!("open {}: {e}", wal_path.display()));
                f.write_all(bytes)
                    .unwrap_or_else(|e| panic!("append {}: {e}", wal_path.display()));
                f.sync_all()
                    .unwrap_or_else(|e| panic!("fsync {}: {e}", wal_path.display()));
                1
            }
        }
    }

    /// Replace the whole log + flush. Returns fsyncs performed.
    fn rewrite_wal(&mut self, bytes: &[u8]) -> u64 {
        match self {
            Media::Mem { wal, .. } => {
                *wal = bytes.to_vec();
                1
            }
            Media::Dir { wal_path, .. } => {
                let mut f = std::fs::File::create(&*wal_path)
                    .unwrap_or_else(|e| panic!("create {}: {e}", wal_path.display()));
                f.write_all(bytes)
                    .unwrap_or_else(|e| panic!("write {}: {e}", wal_path.display()));
                f.sync_all()
                    .unwrap_or_else(|e| panic!("fsync {}: {e}", wal_path.display()));
                1
            }
        }
    }

    /// Write the snapshot blob (tmp + rename on disk). Returns fsyncs.
    fn write_snap(&mut self, bytes: &[u8]) -> u64 {
        match self {
            Media::Mem { snap, .. } => {
                *snap = Some(bytes.to_vec());
                1
            }
            Media::Dir { snap_path, .. } => {
                let tmp = snap_path.with_extension("snap.tmp");
                let mut f = std::fs::File::create(&tmp)
                    .unwrap_or_else(|e| panic!("create {}: {e}", tmp.display()));
                f.write_all(bytes)
                    .unwrap_or_else(|e| panic!("write {}: {e}", tmp.display()));
                f.sync_all()
                    .unwrap_or_else(|e| panic!("fsync {}: {e}", tmp.display()));
                std::fs::rename(&tmp, &snap_path)
                    .unwrap_or_else(|e| panic!("rename {}: {e}", snap_path.display()));
                1
            }
        }
    }

    fn remove_snap(&mut self) {
        match self {
            Media::Mem { snap, .. } => *snap = None,
            Media::Dir { snap_path, .. } => {
                let _ = std::fs::remove_file(snap_path);
            }
        }
    }

    fn anchor(&self) -> u64 {
        match self.read_snap() {
            Some(blob) => decode_snapshot_blob(&blob).map(|(_, a)| a).unwrap_or(0),
            None => 0,
        }
    }
}

// ---- the store ----

// One store per replica, so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum StoreInner {
    /// Logical event store: an ideal medium that never tears or flips.
    Logical {
        snapshot: Option<Snapshot>,
        events: Vec<WalEvent>,
        stats: WalStats,
    },
    /// Byte-framed medium (in memory or on disk). `next_seq`/`last_hash`
    /// track the append position; they are established by
    /// [`ReplicaStore::load`], which must run before the first append on
    /// pre-existing media.
    Framed {
        media: Media,
        next_seq: u64,
        last_hash: u64,
        stats: WalStats,
        /// Framed records buffered by an open commit group (group commit:
        /// one media write + one fsync at [`ReplicaStore::end_group`]
        /// instead of per-append). Always empty between groups.
        pending: Vec<u8>,
        /// Open group nesting depth; appends hit the media directly at 0.
        group_depth: u32,
    },
}

/// One replica's durable storage: WAL + snapshot, shared by handle so the
/// "disk" survives the in-RAM replica being dropped on kill -9.
#[derive(Clone)]
pub struct ReplicaStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl ReplicaStore {
    /// Open (or create) the store for one replica.
    pub fn new(mode: &DurabilityMode, id: ReplicaId) -> ReplicaStore {
        let inner = match mode {
            DurabilityMode::Memory => StoreInner::Logical {
                snapshot: None,
                events: Vec::new(),
                stats: WalStats::default(),
            },
            DurabilityMode::FramedMemory => StoreInner::Framed {
                media: Media::Mem {
                    wal: Vec::new(),
                    snap: None,
                },
                next_seq: 0,
                last_hash: 0,
                stats: WalStats::default(),
                pending: Vec::new(),
                group_depth: 0,
            },
            DurabilityMode::Dir(base) => {
                std::fs::create_dir_all(base)
                    .unwrap_or_else(|e| panic!("create dir {}: {e}", base.display()));
                StoreInner::Framed {
                    media: Media::Dir {
                        wal_path: base.join(format!("replica-{}.wal", id.0)),
                        snap_path: base.join(format!("replica-{}.snap", id.0)),
                    },
                    next_seq: 0,
                    last_hash: 0,
                    stats: WalStats::default(),
                    pending: Vec::new(),
                    group_depth: 0,
                }
            }
        };
        ReplicaStore {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    /// Whether this store verifies byte framing (false for the logical
    /// backend, whose medium is modeled as perfect).
    pub fn is_framed(&self) -> bool {
        matches!(&*self.inner.lock().unwrap(), StoreInner::Framed { .. })
    }

    /// Durably append one event (synchronous: the flush is counted before
    /// this returns, modeling log-before-ack).
    pub fn append(&self, ev: &WalEvent) {
        let mut inner = self.inner.lock().unwrap();
        match &mut *inner {
            StoreInner::Logical { events, stats, .. } => {
                stats.appends += 1;
                stats.fsyncs += 1;
                // Estimated encoded size; the logical backend never
                // serializes, so benches don't pay for byte framing.
                stats.bytes_written += (RECORD_HEADER_LEN + 24 + 16 * ev.weight()) as u64;
                if let WalEvent::Commit { slot, .. } = ev {
                    stats.tail_decree = stats.tail_decree.max(*slot);
                }
                events.push(ev.clone());
            }
            StoreInner::Framed {
                media,
                next_seq,
                last_hash,
                stats,
                pending,
                group_depth,
            } => {
                let payload = serde_json::to_vec(ev).expect("wal event serializes");
                let rec = encode_record(*next_seq, *last_hash, &payload);
                if *group_depth > 0 {
                    // Group commit: buffer the framed record; the group's
                    // single media write + fsync happens at end_group,
                    // before the client's commit is acknowledged.
                    pending.extend_from_slice(&rec);
                } else {
                    stats.fsyncs += media.append_wal(&rec);
                }
                stats.appends += 1;
                stats.bytes_written += rec.len() as u64;
                *last_hash = chain_hash(*last_hash, &payload);
                *next_seq += 1;
                if let WalEvent::Commit { slot, .. } = ev {
                    stats.tail_decree = stats.tail_decree.max(*slot);
                }
            }
        }
    }

    /// Open a commit group: subsequent appends buffer their framed
    /// records instead of writing + flushing the medium one at a time.
    /// The whole group lands with **one** media write and one fsync at
    /// the matching [`ReplicaStore::end_group`] — the classic group
    /// commit, sound here because the client's acknowledgment (the
    /// return from the ring's `submit`) is deferred until after the
    /// group closes. Logical stores model an ideal medium and ignore
    /// grouping. Groups nest; only the outermost close flushes.
    pub fn begin_group(&self) {
        let mut inner = self.inner.lock().unwrap();
        if let StoreInner::Framed { group_depth, .. } = &mut *inner {
            *group_depth += 1;
        }
    }

    /// Close a commit group, flushing every buffered record with a single
    /// media write + fsync. No-op when nothing was buffered.
    pub fn end_group(&self) {
        let mut inner = self.inner.lock().unwrap();
        if let StoreInner::Framed {
            media,
            stats,
            pending,
            group_depth,
            ..
        } = &mut *inner
        {
            *group_depth = group_depth.saturating_sub(1);
            if *group_depth == 0 && !pending.is_empty() {
                stats.fsyncs += media.append_wal(pending);
                pending.clear();
            }
        }
    }

    /// Recover durable state from the medium: verify framing and the hash
    /// chain, repair a torn tail (truncate; those records were never
    /// acknowledged), refuse a mid-log break (fall back to the snapshot
    /// alone and let leader catch-up re-ship the suffix).
    pub fn load(&self) -> WalLoad {
        let mut inner = self.inner.lock().unwrap();
        match &mut *inner {
            StoreInner::Logical {
                snapshot, events, ..
            } => WalLoad {
                snapshot: snapshot.clone(),
                events: events.clone(),
                truncated_records: 0,
                refused: false,
            },
            StoreInner::Framed {
                media,
                next_seq,
                last_hash,
                stats,
                pending,
                group_depth,
            } => {
                // A load with an open group means the caller abandoned the
                // group (e.g. a crash-restart mid-submit): flush whatever
                // was buffered so the chain on the medium matches the
                // in-memory seq/hash cursor before replaying it.
                if !pending.is_empty() {
                    stats.fsyncs += media.append_wal(pending);
                    pending.clear();
                }
                *group_depth = 0;
                let (snapshot, anchor) = match media.read_snap() {
                    None => (None, 0u64),
                    Some(blob) => match decode_snapshot_blob(&blob) {
                        Ok((wire, anchor)) => (Some(wire.into_snapshot()), anchor),
                        Err(_) => {
                            // The snapshot itself is damaged: refuse
                            // everything, start empty, rejoin by catch-up.
                            media.remove_snap();
                            stats.fsyncs += media.rewrite_wal(&[]);
                            stats.refusals += 1;
                            *next_seq = 0;
                            *last_hash = 0;
                            return WalLoad {
                                snapshot: None,
                                events: Vec::new(),
                                truncated_records: 0,
                                refused: true,
                            };
                        }
                    },
                };
                let bytes = media.read_wal();
                let replay = replay_log(&bytes, anchor);
                let mut refused = replay.corrupt.is_some();
                let mut events = Vec::with_capacity(replay.payloads.len());
                if !refused {
                    for p in &replay.payloads {
                        match serde_json::from_slice::<WalEvent>(p) {
                            Ok(ev) => events.push(ev),
                            Err(_) => {
                                refused = true;
                                events.clear();
                                break;
                            }
                        }
                    }
                }
                if refused {
                    stats.fsyncs += media.rewrite_wal(&[]);
                    stats.refusals += 1;
                    *next_seq = 0;
                    *last_hash = anchor;
                    if let Some(s) = &snapshot {
                        stats.tail_decree = stats.tail_decree.max(s.frontier.saturating_sub(1));
                    }
                    return WalLoad {
                        snapshot,
                        events: Vec::new(),
                        truncated_records: 0,
                        refused: true,
                    };
                }
                if replay.valid_len < bytes.len() {
                    stats.fsyncs += media.rewrite_wal(&bytes[..replay.valid_len]);
                }
                stats.truncated_records += replay.truncated_records;
                *next_seq = replay.end_seq;
                *last_hash = replay.end_hash;
                let mut tail = snapshot
                    .as_ref()
                    .map(|s| s.frontier.saturating_sub(1))
                    .unwrap_or(0);
                for ev in &events {
                    if let WalEvent::Commit { slot, .. } = ev {
                        tail = tail.max(*slot);
                    }
                }
                stats.tail_decree = stats.tail_decree.max(tail);
                WalLoad {
                    snapshot,
                    events,
                    truncated_records: replay.truncated_records,
                    refused: false,
                }
            }
        }
    }

    /// Snapshot compaction: persist the machine image at a committed
    /// decree boundary, then truncate the log prefix below it by
    /// re-framing `tail` (slots at or above `frontier`) onto a fresh
    /// chain anchored to the snapshot payload.
    pub fn write_snapshot(
        &self,
        frontier: Slot,
        promised: Ballot,
        machine: &StateMachine,
        tail: &[WalEvent],
    ) {
        let mut inner = self.inner.lock().unwrap();
        match &mut *inner {
            StoreInner::Logical {
                snapshot,
                events,
                stats,
            } => {
                *snapshot = Some(Snapshot {
                    frontier,
                    promised,
                    image: MachineImage::Live(machine.clone()),
                });
                *events = tail.to_vec();
                stats.compactions += 1;
                stats.fsyncs += 2;
                stats.tail_decree = stats.tail_decree.max(frontier.saturating_sub(1));
            }
            StoreInner::Framed {
                media,
                next_seq,
                last_hash,
                stats,
                pending,
                ..
            } => {
                // Compaction rewrites the log from scratch; any records a
                // group buffered are part of the tail being re-framed, so
                // the buffer itself is dead.
                pending.clear();
                let wire = SnapshotWire {
                    frontier,
                    promised,
                    machine: machine.to_snapshot(),
                };
                let (blob, anchor) = encode_snapshot_blob(&wire);
                stats.fsyncs += media.write_snap(&blob);
                stats.bytes_written += blob.len() as u64;
                let mut buf = Vec::new();
                let mut seq = 0u64;
                let mut hash = anchor;
                for ev in tail {
                    let payload = serde_json::to_vec(ev).expect("wal event serializes");
                    buf.extend_from_slice(&encode_record(seq, hash, &payload));
                    hash = chain_hash(hash, &payload);
                    seq += 1;
                }
                stats.fsyncs += media.rewrite_wal(&buf);
                stats.bytes_written += buf.len() as u64;
                *next_seq = seq;
                *last_hash = hash;
                stats.compactions += 1;
                stats.tail_decree = stats.tail_decree.max(frontier.saturating_sub(1));
            }
        }
    }

    /// Inject corruption into the durable medium. Chaos-harness use only,
    /// and only while the owning replica is crashed (the injected damage
    /// models what recovery finds on disk after a kill -9).
    pub fn inject(&self, c: &WalCorruption) {
        let mut inner = self.inner.lock().unwrap();
        let StoreInner::Framed { media, .. } = &mut *inner else {
            return; // logical medium is modeled as perfect
        };
        match c {
            WalCorruption::None => {}
            WalCorruption::TornTail { bytes } => {
                let junk = vec![0xA7u8; (*bytes).max(1)];
                media.append_wal(&junk);
            }
            WalCorruption::BitFlip => {
                let anchor = media.anchor();
                let mut bytes = media.read_wal();
                let replay = replay_log(&bytes, anchor);
                if replay.offsets.len() >= 2 {
                    // Damage the first record's CRC: a mid-log break that
                    // recovery must refuse.
                    bytes[replay.offsets[0] + 4] ^= 0x01;
                    media.rewrite_wal(&bytes);
                } else if let Some(mut blob) = media.read_snap() {
                    if blob.len() > 8 {
                        blob[8] ^= 0x01;
                        media.write_snap(&blob);
                    }
                } else if replay.offsets.len() == 1 {
                    // Degenerate single-record log: the flip lands on the
                    // final record and recovery treats it as torn.
                    bytes[replay.offsets[0] + 4] ^= 0x01;
                    media.rewrite_wal(&bytes);
                }
            }
        }
    }

    /// Deliberately drop the last `n` acknowledged records, keeping the
    /// chain prefix valid — the broken canary that must trip the
    /// `RecoverySafetyChecker` (never call this outside tests).
    pub fn canary_truncate_tail_records(&self, n: usize) {
        let mut inner = self.inner.lock().unwrap();
        match &mut *inner {
            StoreInner::Logical { events, .. } => {
                let keep = events.len().saturating_sub(n);
                events.truncate(keep);
            }
            StoreInner::Framed {
                media,
                next_seq,
                last_hash,
                ..
            } => {
                let anchor = media.anchor();
                let bytes = media.read_wal();
                let replay = replay_log(&bytes, anchor);
                let keep = replay.payloads.len().saturating_sub(n);
                if keep == replay.payloads.len() {
                    return;
                }
                let cut = if keep == 0 { 0 } else { replay.offsets[keep] };
                media.rewrite_wal(&bytes[..cut]);
                let again = replay_log(&bytes[..cut], anchor);
                *next_seq = again.end_seq;
                *last_hash = again.end_hash;
            }
        }
    }

    /// Strict end-to-end verification of the snapshot + log pair: CRCs,
    /// sequence numbers, and the hash chain from the snapshot anchor.
    /// Returns the number of verified records. The logical backend has no
    /// bytes to verify and trivially passes.
    pub fn verify_chain(&self) -> Result<u64, String> {
        let inner = self.inner.lock().unwrap();
        match &*inner {
            StoreInner::Logical { events, .. } => Ok(events.len() as u64),
            StoreInner::Framed { media, .. } => {
                let anchor = match media.read_snap() {
                    None => 0,
                    Some(blob) => {
                        decode_snapshot_blob(&blob)
                            .map_err(|e| format!("snapshot: {e}"))?
                            .1
                    }
                };
                let bytes = media.read_wal();
                let replay = replay_log(&bytes, anchor);
                if let Some(msg) = replay.corrupt {
                    return Err(msg);
                }
                if replay.truncated_records > 0 {
                    return Err(format!(
                        "unexpected torn tail: {} incomplete record(s) on a live store",
                        replay.truncated_records
                    ));
                }
                Ok(replay.end_seq)
            }
        }
    }

    /// Cumulative counters (monotone for the lifetime of this store
    /// handle, across kill/restart of the owning replica).
    pub fn stats(&self) -> WalStats {
        let inner = self.inner.lock().unwrap();
        match &*inner {
            StoreInner::Logical { stats, .. } | StoreInner::Framed { stats, .. } => *stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn framed_append_and_load_round_trip() {
        let store = ReplicaStore::new(&DurabilityMode::FramedMemory, ReplicaId(0));
        let evs = vec![
            WalEvent::Promise {
                ballot: Ballot {
                    n: 1,
                    id: ReplicaId(0),
                },
            },
            WalEvent::Commit {
                slot: 1,
                cmd: LogCommand::Noop,
            },
        ];
        for ev in &evs {
            store.append(ev);
        }
        let load = store.load();
        assert_eq!(load.events, evs);
        assert_eq!(load.truncated_records, 0);
        assert!(!load.refused);
        assert_eq!(store.verify_chain().unwrap(), 2);
        assert_eq!(store.stats().tail_decree, 1);
    }

    #[test]
    fn torn_tail_is_truncated_and_repaired() {
        let store = ReplicaStore::new(&DurabilityMode::FramedMemory, ReplicaId(0));
        store.append(&WalEvent::Commit {
            slot: 1,
            cmd: LogCommand::Noop,
        });
        store.inject(&WalCorruption::TornTail { bytes: 11 });
        assert!(
            store.verify_chain().is_err(),
            "torn tail visible pre-repair"
        );
        let load = store.load();
        assert_eq!(load.events.len(), 1);
        assert_eq!(load.truncated_records, 1);
        assert!(!load.refused);
        // The medium was repaired in place.
        assert_eq!(store.verify_chain().unwrap(), 1);
    }

    #[test]
    fn mid_log_bit_flip_is_refused() {
        let store = ReplicaStore::new(&DurabilityMode::FramedMemory, ReplicaId(0));
        for slot in 1..=3 {
            store.append(&WalEvent::Commit {
                slot,
                cmd: LogCommand::Noop,
            });
        }
        store.inject(&WalCorruption::BitFlip);
        assert!(store.verify_chain().is_err());
        let load = store.load();
        assert!(load.refused, "acknowledged-state damage must be refused");
        assert!(load.events.is_empty());
        assert_eq!(store.stats().refusals, 1);
    }

    #[test]
    fn group_commit_lands_many_appends_with_one_fsync() {
        let store = ReplicaStore::new(&DurabilityMode::FramedMemory, ReplicaId(0));
        store.append(&WalEvent::Commit {
            slot: 1,
            cmd: LogCommand::Noop,
        });
        let before = store.stats();
        store.begin_group();
        for slot in 2..=9 {
            store.append(&WalEvent::Commit {
                slot,
                cmd: LogCommand::Noop,
            });
        }
        assert_eq!(
            store.stats().fsyncs,
            before.fsyncs,
            "appends inside an open group must not touch the medium"
        );
        store.end_group();
        let after = store.stats();
        assert_eq!(after.appends, before.appends + 8);
        assert_eq!(after.fsyncs, before.fsyncs + 1, "one flush per group");
        // The grouped records chain onto the pre-group tail and replay
        // exactly like per-append writes.
        assert_eq!(store.verify_chain().unwrap(), 9);
        let load = store.load();
        assert_eq!(load.events.len(), 9);
        assert!(!load.refused);
        assert_eq!(store.stats().tail_decree, 9);
    }

    #[test]
    fn empty_and_nested_groups_do_not_flush() {
        let store = ReplicaStore::new(&DurabilityMode::FramedMemory, ReplicaId(0));
        let before = store.stats().fsyncs;
        store.begin_group();
        store.end_group();
        assert_eq!(store.stats().fsyncs, before, "empty group is free");
        store.begin_group();
        store.begin_group();
        store.append(&WalEvent::Commit {
            slot: 1,
            cmd: LogCommand::Noop,
        });
        store.end_group();
        assert_eq!(
            store.stats().fsyncs,
            before,
            "inner close must not flush while the outer group is open"
        );
        store.end_group();
        assert_eq!(store.stats().fsyncs, before + 1);
        assert_eq!(store.verify_chain().unwrap(), 1);
    }

    #[test]
    fn logical_store_ignores_injection() {
        let store = ReplicaStore::new(&DurabilityMode::Memory, ReplicaId(0));
        store.append(&WalEvent::Commit {
            slot: 1,
            cmd: LogCommand::Noop,
        });
        store.inject(&WalCorruption::BitFlip);
        let load = store.load();
        assert_eq!(load.events.len(), 1);
        assert!(!load.refused);
    }
}
