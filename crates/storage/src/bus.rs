//! A virtual-time message bus between Paxos replicas.
//!
//! Consensus latency in Statesman is a real design force: §6.1 chooses
//! per-DC rings precisely because "WAN latencies will hurt the scalability
//! and performance". To reproduce that tradeoff rather than assume it, the
//! bus delivers messages on a virtual microsecond clock: each replica pair
//! has a configured one-way delay, messages can be dropped or partitioned,
//! and commit latency falls out of the delivery schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Identifier of a replica within one ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(pub u8);

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Virtual time in microseconds since ring start.
pub type Micros = u64;

/// An addressed, scheduled message.
#[derive(Debug, Clone)]
struct Scheduled<M> {
    deliver_at: Micros,
    /// Creation order; retained for debugging dumps of in-flight traffic.
    #[allow(dead_code)]
    seq: u64,
    from: ReplicaId,
    to: ReplicaId,
    msg: M,
}

/// Latency model: one-way delay between each pair of replicas.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Base one-way delay, microseconds.
    pub base_us: u64,
    /// Uniform jitter bound added per message, microseconds.
    pub jitter_us: u64,
}

impl LatencyModel {
    /// Intra-datacenter latency (~250µs one-way).
    pub fn intra_dc() -> Self {
        LatencyModel {
            base_us: 250,
            jitter_us: 100,
        }
    }

    /// Cross-datacenter WAN latency (~30ms one-way) — what a single global
    /// ring would pay (§6.1's rejected design).
    pub fn wan() -> Self {
        LatencyModel {
            base_us: 30_000,
            jitter_us: 5_000,
        }
    }
}

/// The bus: a priority queue of scheduled messages plus fault knobs.
pub struct MessageBus<M> {
    queue: BinaryHeap<Reverse<(Micros, u64)>>,
    slots: Vec<Option<Scheduled<M>>>,
    free: Vec<usize>,
    /// map from (deliver_at, seq) is implicit: seq indexes `slots`
    now: Micros,
    next_seq: u64,
    latency: LatencyModel,
    /// Probability each message is silently dropped.
    pub drop_prob: f64,
    /// Unreachable replica pairs (directed).
    partitions: HashSet<(ReplicaId, ReplicaId)>,
    /// Crashed replicas drop all input and output.
    crashed: HashSet<ReplicaId>,
    rng: StdRng,
    /// Total messages sent (observability).
    pub sent: u64,
    /// Total messages dropped by loss or partition.
    pub dropped: u64,
}

impl<M> MessageBus<M> {
    /// A bus with the given latency model and RNG seed.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        MessageBus {
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            now: 0,
            next_seq: 0,
            latency,
            drop_prob: 0.0,
            partitions: HashSet::new(),
            crashed: HashSet::new(),
            rng: StdRng::seed_from_u64(seed),
            sent: 0,
            dropped: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Send `msg` from `from` to `to`; it will be delivered after the
    /// modeled latency unless dropped.
    pub fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: M) {
        self.sent += 1;
        if self.crashed.contains(&from) || self.crashed.contains(&to) {
            self.dropped += 1;
            return;
        }
        if self.partitions.contains(&(from, to)) {
            self.dropped += 1;
            return;
        }
        if self.drop_prob > 0.0 && self.rng.gen::<f64>() < self.drop_prob {
            self.dropped += 1;
            return;
        }
        let jitter = if self.latency.jitter_us > 0 {
            self.rng.gen_range(0..=self.latency.jitter_us)
        } else {
            0
        };
        let deliver_at = self.now + self.latency.base_us + jitter;
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(Scheduled {
                    deliver_at,
                    seq,
                    from,
                    to,
                    msg,
                });
                i
            }
            None => {
                self.slots.push(Some(Scheduled {
                    deliver_at,
                    seq,
                    from,
                    to,
                    msg,
                }));
                self.slots.len() - 1
            }
        };
        // Encode the slot index into the seq ordering key's low bits is
        // unnecessary: we keep a parallel mapping by pushing (time, idx).
        self.queue.push(Reverse((deliver_at, idx as u64)));
    }

    /// Pop the next deliverable message, advancing virtual time to its
    /// delivery instant. Returns `None` when the bus is quiet.
    pub fn recv(&mut self) -> Option<(ReplicaId, ReplicaId, M)> {
        while let Some(Reverse((at, idx))) = self.queue.pop() {
            let slot = self.slots[idx as usize].take();
            self.free.push(idx as usize);
            let Some(s) = slot else { continue };
            debug_assert_eq!(s.deliver_at, at);
            self.now = self.now.max(at);
            if self.crashed.contains(&s.to) {
                self.dropped += 1;
                continue;
            }
            return Some((s.from, s.to, s.msg));
        }
        None
    }

    /// Sever the directed pair (messages `a`→`b` are dropped).
    pub fn partition_one_way(&mut self, a: ReplicaId, b: ReplicaId) {
        self.partitions.insert((a, b));
    }

    /// Sever both directions between two replicas.
    pub fn partition(&mut self, a: ReplicaId, b: ReplicaId) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Heal all partitions.
    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    /// Crash a replica (drops everything to/from it, including queued
    /// deliveries).
    pub fn crash(&mut self, r: ReplicaId) {
        self.crashed.insert(r);
    }

    /// Restart a crashed replica (it keeps its durable acceptor state;
    /// volatile state recovery is the cluster's job).
    pub fn restart(&mut self, r: ReplicaId) {
        self.crashed.remove(&r);
    }

    /// Whether a replica is crashed.
    pub fn is_crashed(&self, r: ReplicaId) -> bool {
        self.crashed.contains(&r)
    }

    /// Advance virtual time without delivering (models client-side think
    /// time between rounds).
    pub fn advance(&mut self, us: Micros) {
        self.now += us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> MessageBus<&'static str> {
        MessageBus::new(
            LatencyModel {
                base_us: 100,
                jitter_us: 0,
            },
            1,
        )
    }

    #[test]
    fn delivery_advances_virtual_time() {
        let mut b = bus();
        b.send(ReplicaId(0), ReplicaId(1), "hi");
        let (from, to, m) = b.recv().unwrap();
        assert_eq!((from, to, m), (ReplicaId(0), ReplicaId(1), "hi"));
        assert_eq!(b.now(), 100);
        assert!(b.recv().is_none());
    }

    #[test]
    fn ordering_is_by_delivery_time() {
        let mut b = bus();
        b.send(ReplicaId(0), ReplicaId(1), "first");
        b.advance(50);
        b.send(ReplicaId(0), ReplicaId(1), "second");
        let (_, _, m1) = b.recv().unwrap();
        let (_, _, m2) = b.recv().unwrap();
        assert_eq!((m1, m2), ("first", "second"));
        assert_eq!(b.now(), 150);
    }

    #[test]
    fn partitions_drop() {
        let mut b = bus();
        b.partition(ReplicaId(0), ReplicaId(1));
        b.send(ReplicaId(0), ReplicaId(1), "lost");
        b.send(ReplicaId(1), ReplicaId(0), "lost too");
        assert!(b.recv().is_none());
        assert_eq!(b.dropped, 2);
        b.heal();
        b.send(ReplicaId(0), ReplicaId(1), "ok");
        assert!(b.recv().is_some());
    }

    #[test]
    fn crash_drops_queued_deliveries() {
        let mut b = bus();
        b.send(ReplicaId(0), ReplicaId(1), "in flight");
        b.crash(ReplicaId(1));
        assert!(b.recv().is_none());
        assert_eq!(b.dropped, 1);
        b.restart(ReplicaId(1));
        assert!(!b.is_crashed(ReplicaId(1)));
    }

    #[test]
    fn drop_probability_is_seeded() {
        let run = |seed| {
            let mut b: MessageBus<u32> = MessageBus::new(
                LatencyModel {
                    base_us: 1,
                    jitter_us: 0,
                },
                seed,
            );
            b.drop_prob = 0.5;
            for i in 0..50 {
                b.send(ReplicaId(0), ReplicaId(1), i);
            }
            let mut got = Vec::new();
            while let Some((_, _, m)) = b.recv() {
                got.push(m);
            }
            got
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).len(), 50);
    }

    #[test]
    fn wan_is_slower_than_intra_dc() {
        let mut intra: MessageBus<()> = MessageBus::new(LatencyModel::intra_dc(), 3);
        let mut wan: MessageBus<()> = MessageBus::new(LatencyModel::wan(), 3);
        intra.send(ReplicaId(0), ReplicaId(1), ());
        wan.send(ReplicaId(0), ReplicaId(1), ());
        intra.recv();
        wan.recv();
        assert!(wan.now() > 10 * intra.now());
    }
}
