//! Crash-restart recovery: rebuild a replica from snapshot + WAL tail.
//!
//! This module is the *only* path by which a restarted replica regains
//! state — there is no in-RAM carryover (the old `Replica::on_restart`
//! fiction). [`recover`] loads the durable store, which verifies CRCs and
//! the hash chain, repairs a torn tail, or refuses a corrupted log
//! (see [`crate::wal::ReplicaStore::load`]); it then folds the surviving
//! events into acceptor/learner state and re-applies committed decrees
//! from the snapshot frontier. A replica whose log was refused (or that
//! is simply behind) rejoins via the ring's existing leader catch-up.
//!
//! The module also hosts the two invariant checkers the chaos harness
//! asserts continuously (`docs/invariants.md`):
//!
//! * [`RecoverySafetyChecker`] — a restarted replica never comes back
//!   below its highest observed committed decree (after rejoin);
//! * [`HashChainChecker`] — every store's snapshot + log pair verifies
//!   end to end.

use crate::bus::ReplicaId;
use crate::machine::{LogCommand, StateMachine};
use crate::paxos::{Ballot, RecoveredState, Replica, Slot};
use crate::wal::{ReplicaStore, WalEvent};
use std::collections::{BTreeMap, HashMap};

/// What one recovery did, for observability (`/v1/status` carries a
/// serialized summary of the most recent one).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The recovered replica's id.
    pub replica: u8,
    /// Whether acknowledged durable state was refused as corrupt (the
    /// replica restarted from its snapshot alone).
    pub refused: bool,
    /// Torn tail records truncated during load.
    pub truncated_records: u64,
    /// WAL events replayed above the snapshot.
    pub replayed_events: u64,
    /// The apply frontier restored from the snapshot (1 when none).
    pub snapshot_frontier: Slot,
    /// Decrees applied through after local replay (before any leader
    /// catch-up).
    pub recovered_frontier: Slot,
}

/// Rebuild a replica purely from its durable store.
pub fn recover(
    id: ReplicaId,
    n_replicas: usize,
    store: &ReplicaStore,
) -> (Replica, RecoveryReport) {
    let load = store.load();
    let (mut promised, machine, frontier) = match &load.snapshot {
        Some(s) => (s.promised, s.machine(), s.frontier),
        None => (Ballot::ZERO, StateMachine::new(), 1),
    };
    let snapshot_frontier = frontier;
    let mut accepted: BTreeMap<Slot, (Ballot, LogCommand)> = BTreeMap::new();
    let mut chosen: BTreeMap<Slot, LogCommand> = BTreeMap::new();
    let mut replayed_weight = 0usize;
    for ev in &load.events {
        replayed_weight += ev.weight();
        match ev {
            WalEvent::Promise { ballot } => promised = promised.max(*ballot),
            WalEvent::Accept { slot, ballot, cmd } => {
                promised = promised.max(*ballot);
                // Append order is chronological: a later accept for the
                // same slot supersedes the earlier one.
                accepted.insert(*slot, (*ballot, cmd.clone()));
            }
            WalEvent::Commit { slot, cmd } => {
                chosen.insert(*slot, cmd.clone());
            }
        }
    }
    let replayed_events = load.events.len() as u64;
    let replica = Replica::from_recovery(
        id,
        n_replicas,
        Some(store.clone()),
        RecoveredState {
            promised,
            accepted,
            chosen,
            machine,
            frontier,
            replayed_weight,
        },
    );
    let report = RecoveryReport {
        replica: id.0,
        refused: load.refused,
        truncated_records: load.truncated_records,
        replayed_events,
        snapshot_frontier,
        recovered_frontier: replica.applied_through(),
    };
    (replica, report)
}

/// Enforces the recovery-safety invariant: a restarted replica never
/// truncates below its highest committed decree. The harness feeds it
/// committed frontiers while replicas are live ([`Self::observe_committed`])
/// and checks each recovery against the recorded watermark
/// ([`Self::check_recovery`]).
#[derive(Debug, Clone, Default)]
pub struct RecoverySafetyChecker {
    committed: HashMap<(String, u8), Slot>,
    /// Recoveries checked so far.
    pub checks: u64,
    /// Human-readable descriptions of every violation found.
    pub violations: Vec<String>,
}

impl RecoverySafetyChecker {
    /// Record a live replica's committed (applied-through) decree.
    pub fn observe_committed(&mut self, partition: &str, replica: u8, applied_through: Slot) {
        let e = self
            .committed
            .entry((partition.to_string(), replica))
            .or_insert(0);
        *e = (*e).max(applied_through);
    }

    /// Check a post-recovery (post-rejoin) frontier against the recorded
    /// committed watermark.
    pub fn check_recovery(&mut self, partition: &str, replica: u8, recovered_through: Slot) {
        self.checks += 1;
        let watermark = self
            .committed
            .get(&(partition.to_string(), replica))
            .copied()
            .unwrap_or(0);
        if recovered_through < watermark {
            self.violations.push(format!(
                "recovery_safety violated: {partition}/r{replica} recovered through decree \
                 {recovered_through} but had committed through {watermark}"
            ));
        }
    }

    /// True when no violation has been recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Wraps [`ReplicaStore::verify_chain`] with counting, for continuous
/// assertion in the chaos harness.
#[derive(Debug, Clone, Default)]
pub struct HashChainChecker {
    /// Verification passes run.
    pub checks: u64,
    /// Total records verified across all passes.
    pub records_verified: u64,
    /// Human-readable descriptions of every violation found.
    pub violations: Vec<String>,
}

impl HashChainChecker {
    /// Fold one store-verification result in.
    pub fn record(&mut self, label: &str, result: Result<u64, String>) {
        self.checks += 1;
        match result {
            Ok(n) => self.records_verified += n,
            Err(e) => self
                .violations
                .push(format!("hash_chain violated: {label}: {e}")),
        }
    }

    /// True when no violation has been recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::DurabilityMode;

    #[test]
    fn empty_store_recovers_to_fresh_replica() {
        let store = ReplicaStore::new(&DurabilityMode::FramedMemory, ReplicaId(1));
        let (r, report) = recover(ReplicaId(1), 3, &store);
        assert_eq!(r.applied_through(), 0);
        assert!(!r.is_leader());
        assert!(!report.refused);
        assert_eq!(report.replayed_events, 0);
    }

    #[test]
    fn safety_checker_flags_regression() {
        let mut c = RecoverySafetyChecker::default();
        c.observe_committed("dc1", 0, 5);
        c.observe_committed("dc1", 0, 9);
        c.observe_committed("dc1", 0, 7); // stale sample: watermark keeps max
        c.check_recovery("dc1", 0, 9);
        assert!(c.is_clean());
        c.check_recovery("dc1", 0, 8);
        assert_eq!(c.violations.len(), 1);
        assert_eq!(c.checks, 2);
    }

    #[test]
    fn chain_checker_counts_and_flags() {
        let mut c = HashChainChecker::default();
        c.record("dc1/r0", Ok(12));
        assert!(c.is_clean());
        c.record("dc1/r1", Err("crc mismatch".into()));
        assert_eq!(c.records_verified, 12);
        assert_eq!(c.violations.len(), 1);
    }
}
