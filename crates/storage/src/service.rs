//! The storage service: per-DC rings, the global proxy, and freshness.
//!
//! Paper §6.1–§6.4. One [`PaxosCluster`] per datacenter stores the rows of
//! entities homed there; the service front end is the "globally available
//! proxy layer that provides uniform access to the network states" —
//! callers never name a ring, only entities. Reads take a [`Freshness`]:
//!
//! * `UpToDate` — served by the partition leader (linearizable with
//!   respect to commits through this service);
//! * `BoundedStale` — served from a per-partition cache refreshed from a
//!   follower replica no more often than the staleness bound (5 minutes in
//!   the paper), trading freshness for read throughput.
//!
//! Locking is sharded to match the paper's partitioning: each partition
//! owns its own ring mutex and bookkeeping, so operations against
//! different datacenters never contend (§6.1: partitions are independent
//! consensus groups). The partition map itself is immutable after
//! construction, so routing, health checks, and counter reads take no
//! lock at all.

use crate::bus::ReplicaId;
use crate::cluster::{ClusterConfig, PaxosCluster};
use crate::machine::LogCommand;
use crate::wal::{DurabilityMode, WalCorruption};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use statesman_obs::{Counter, Gauge, Histogram, RecoverySummary, Registry};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, RetryPolicy,
    SimDuration, SimTime, StateDelta, StateError, StateKey, StateResult, VarId, Version,
    WriteReceipt,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Replicas per ring.
    pub replicas_per_ring: usize,
    /// Bounded-staleness window (paper: 5 minutes).
    pub staleness_bound: SimDuration,
    /// Seed for ring buses (each ring perturbs it by partition index).
    pub seed: u64,
    /// Base ring config (latency model etc.).
    pub ring: ClusterConfig,
    /// Bounded retry schedule for consensus commits: when a partition
    /// reports [`StateError::StorageUnavailable`], the proxy retries up
    /// to the policy's budget with jittered exponential backoff (in
    /// simulated time) before surfacing the typed error to the caller.
    pub retry: RetryPolicy,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            replicas_per_ring: 3,
            staleness_bound: SimDuration::from_mins(5),
            seed: 11,
            ring: ClusterConfig::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// A read request (the native form of Table 3's GET).
#[derive(Debug, Clone)]
pub struct ReadRequest {
    /// Which datacenter partition to read.
    pub datacenter: DatacenterId,
    /// Which pool.
    pub pool: Pool,
    /// Freshness mode.
    pub freshness: Freshness,
    /// Optional filter: only rows of this entity.
    pub entity: Option<EntityName>,
    /// Optional filter: only rows of this attribute.
    pub attribute: Option<Attribute>,
}

/// A write request (the native form of Table 3's POST).
#[derive(Debug, Clone)]
pub struct WriteRequest {
    /// Destination pool.
    pub pool: Pool,
    /// Rows to upsert (may span partitions; the proxy splits them).
    pub rows: Vec<NetworkState>,
}

/// Stage breakdown of one [`StorageService::write_bulk`] call. Stage
/// times are summed across partitions (leader-replica apply time); the
/// consensus/WAL remainder is `wall_ms` minus the stages — with
/// partitions committing concurrently the stage sum can exceed the
/// wall clock, so treat `commit_ms` as a floor of zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SeedStats {
    /// Rows ingested.
    pub rows: u64,
    /// Partitions that committed a sub-batch.
    pub partitions: usize,
    /// Batched slot minting (including entity interning), ms.
    pub intern_ms: f64,
    /// Version stamping + column arena fill, ms.
    pub fill_ms: f64,
    /// Change-index/watermark maintenance, ms.
    pub index_ms: f64,
    /// Consensus + replication + WAL remainder (wall minus stages,
    /// clamped at zero), ms.
    pub commit_ms: f64,
    /// End-to-end wall time of the bulk write, ms.
    pub wall_ms: f64,
}

/// Cached pool snapshot for bounded-stale reads. Rows are shared via
/// `Arc` so concurrent cache readers never copy under the lock. The
/// watermark records which pool version the snapshot reflects, so an
/// expired entry can be refreshed by applying a small delta to its own
/// rows instead of recopying the pool out of a replica.
struct CacheEntry {
    fetched_at: SimTime,
    watermark: Version,
    rows: Arc<Vec<NetworkState>>,
}

/// µs buckets for the per-partition ring-lock wait histogram. An
/// uncontended `parking_lot` acquisition lands in the first bucket; the
/// tail buckets only fill when callers pile onto one partition.
const LOCK_WAIT_BUCKETS_US: &[f64] = &[
    1.0, 10.0, 50.0, 250.0, 1_000.0, 5_000.0, 25_000.0, 100_000.0,
];

/// Cached metric handles for the storage service (created once at
/// [`StorageService::attach_obs`]; increments are lock-free).
#[derive(Clone)]
struct StorageObs {
    writes: Counter,
    rows_written: Counter,
    deletes: Counter,
    reads: Counter,
    leader_reads: Counter,
    cache_hits: Counter,
    retries: Counter,
    retries_exhausted: Counter,
    unavailable: Counter,
    receipts_posted: Counter,
    receipts_taken: Counter,
    partitions_offline: Gauge,
    delta_reads: Counter,
    full_fallbacks: Counter,
    writes_suppressed: Counter,
    cache_delta_refreshes: Counter,
    /// Per-partition contention series, labeled
    /// `storage_lock_wait_us{partition="..."}` /
    /// `storage_partition_inflight{partition="..."}`.
    lock_wait: HashMap<DatacenterId, Histogram>,
    partition_inflight: HashMap<DatacenterId, Gauge>,
    /// Durable-storage-plane counters, service-wide (incremented by
    /// diffing each ring's cumulative [`crate::wal::WalStats`] when its
    /// lock is released, so WAL activity costs nothing on the hot path).
    wal_appends: Counter,
    wal_fsyncs: Counter,
    wal_bytes_written: Counter,
    snapshot_compactions: Counter,
    recovery_truncated_records: Counter,
    /// Per-replica WAL tail decree, labeled
    /// `wal_tail_decree{partition="...",replica="..."}`.
    wal_tail_decree: HashMap<(DatacenterId, u8), Gauge>,
}

impl StorageObs {
    fn new(registry: &Registry, partitions: &[DatacenterId], replicas: usize) -> Self {
        let mut lock_wait = HashMap::new();
        let mut partition_inflight = HashMap::new();
        let mut wal_tail_decree = HashMap::new();
        for dc in partitions {
            let name = dc.to_string();
            let labels = [("partition", name.as_str())];
            lock_wait.insert(
                dc.clone(),
                registry.histogram_with("storage_lock_wait_us", &labels, LOCK_WAIT_BUCKETS_US),
            );
            partition_inflight.insert(
                dc.clone(),
                registry.gauge_with("storage_partition_inflight", &labels),
            );
            for r in 0..replicas {
                let replica = r.to_string();
                let labels = [("partition", name.as_str()), ("replica", replica.as_str())];
                wal_tail_decree.insert(
                    (dc.clone(), r as u8),
                    registry.gauge_with("wal_tail_decree", &labels),
                );
            }
        }
        StorageObs {
            writes: registry.counter("storage_writes_total"),
            rows_written: registry.counter("storage_rows_written_total"),
            deletes: registry.counter("storage_deletes_total"),
            reads: registry.counter("storage_reads_total"),
            leader_reads: registry.counter("storage_leader_reads_total"),
            cache_hits: registry.counter("storage_cache_hits_total"),
            retries: registry.counter("storage_retries_total"),
            retries_exhausted: registry.counter("storage_retries_exhausted_total"),
            unavailable: registry.counter("storage_unavailable_errors_total"),
            receipts_posted: registry.counter("storage_receipts_posted_total"),
            receipts_taken: registry.counter("storage_receipts_taken_total"),
            partitions_offline: registry.gauge("storage_partitions_offline"),
            delta_reads: registry.counter("storage_delta_reads_total"),
            full_fallbacks: registry.counter("storage_full_fallbacks_total"),
            writes_suppressed: registry.counter("storage_writes_suppressed_total"),
            cache_delta_refreshes: registry.counter("storage_cache_delta_refreshes_total"),
            lock_wait,
            partition_inflight,
            wal_appends: registry.counter("wal_appends_total"),
            wal_fsyncs: registry.counter("wal_fsyncs_total"),
            wal_bytes_written: registry.counter("wal_bytes_written"),
            snapshot_compactions: registry.counter("snapshot_compactions_total"),
            recovery_truncated_records: registry.counter("recovery_truncated_records_total"),
            wal_tail_decree,
        }
    }
}

/// One storage partition: a consensus ring plus everything the proxy
/// tracks about it. Each partition has its own mutex, so operations
/// against different datacenters run concurrently end to end; the
/// counters are atomics so stats reads never touch the ring lock; the
/// offline flag is an atomic so `check_online` is lock-free.
struct Partition {
    ring: Mutex<PaxosCluster>,
    /// Jitter source for this partition's retry backoff, seeded from the
    /// partition's own ring seed (`config.seed + idx`) so retry schedules
    /// stay deterministic per partition no matter how concurrent
    /// operations interleave across partitions.
    rng: Mutex<StdRng>,
    /// Fault-injected offline (degraded-mode / chaos scenarios).
    offline: AtomicBool,
    /// Reads served by this partition's leader.
    leader_reads: AtomicU64,
    /// Retries performed against this partition.
    retries: AtomicU64,
    /// Operations that exhausted their retry budget here.
    retries_exhausted: AtomicU64,
    /// `read_since` requests served incrementally from the change index.
    delta_reads: AtomicU64,
    /// `read_since` requests that fell back to a full snapshot.
    full_fallbacks: AtomicU64,
    /// Value-identical rows suppressed at apply time (leader tally).
    writes_suppressed: AtomicU64,
    /// Cumulative wall-clock µs spent waiting to acquire the ring lock
    /// (contention observability; zero when partitions never collide).
    lock_wait_us: AtomicU64,
    /// Operations currently holding or waiting for the ring lock.
    inflight: AtomicU64,
    /// Replicas of this partition currently mid-recovery (killed and not
    /// yet restarted). While non-zero the partition reports retryable
    /// unavailability rather than serving a stale pre-crash watermark.
    recovering: AtomicU64,
    /// Previously exported cumulative WAL stats, for diffing into the
    /// service-wide counters on ring-lock release.
    wal_appends_seen: AtomicU64,
    wal_fsyncs_seen: AtomicU64,
    wal_bytes_seen: AtomicU64,
    wal_compactions_seen: AtomicU64,
    wal_truncated_seen: AtomicU64,
}

impl Partition {
    fn new(rc: ClusterConfig) -> Self {
        // Same derivation the old global jitter source used, applied to
        // the per-partition ring seed instead of the service seed.
        let rng_seed = rc.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
        Partition {
            ring: Mutex::new(PaxosCluster::new(rc)),
            rng: Mutex::new(StdRng::seed_from_u64(rng_seed)),
            offline: AtomicBool::new(false),
            leader_reads: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            retries_exhausted: AtomicU64::new(0),
            delta_reads: AtomicU64::new(0),
            full_fallbacks: AtomicU64::new(0),
            writes_suppressed: AtomicU64::new(0),
            lock_wait_us: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            recovering: AtomicU64::new(0),
            wal_appends_seen: AtomicU64::new(0),
            wal_fsyncs_seen: AtomicU64::new(0),
            wal_bytes_seen: AtomicU64::new(0),
            wal_compactions_seen: AtomicU64::new(0),
            wal_truncated_seen: AtomicU64::new(0),
        }
    }

    /// Fail fast if this partition is fault-injected offline or has a
    /// replica mid-recovery. Lock-free: health checks never wait behind
    /// in-flight commits. The mid-recovery case takes the same typed
    /// retryable [`StateError::StorageUnavailable`] path as outages —
    /// callers retry instead of reading a stale pre-crash watermark.
    fn check_online(&self, dc: &DatacenterId) -> StateResult<()> {
        if self.offline.load(Ordering::Relaxed) {
            Err(StateError::StorageUnavailable {
                partition: dc.to_string(),
                reason: "partition offline".into(),
            })
        } else if self.recovering.load(Ordering::Relaxed) > 0 {
            Err(StateError::StorageUnavailable {
                partition: dc.to_string(),
                reason: "replica mid-recovery".into(),
            })
        } else {
            Ok(())
        }
    }
}

/// A held partition ring lock that keeps the inflight gauge honest: the
/// gauge counts from lock request to release, so it shows pile-ups while
/// they happen rather than after. On release (ring lock still held while
/// the drop body runs) it also folds the ring's cumulative WAL stats
/// into the service-wide durable-storage counters, so WAL observability
/// costs one diff per lock cycle instead of one metric op per append.
struct RingGuard<'a> {
    guard: parking_lot::MutexGuard<'a, PaxosCluster>,
    part: &'a Partition,
    gauge: Option<Gauge>,
    dc: &'a DatacenterId,
    obs: Option<&'a StorageObs>,
}

impl Drop for RingGuard<'_> {
    fn drop(&mut self) {
        self.part.inflight.fetch_sub(1, Ordering::Relaxed);
        if let Some(g) = &self.gauge {
            g.add(-1);
        }
        if let Some(o) = self.obs {
            // The mutex guard is dropped after this body, so the stats
            // snapshot and the `*_seen` swap are both taken under the
            // ring lock — deltas never race or double-count.
            let s = self.guard.wal_stats();
            let delta =
                |seen: &AtomicU64, now: u64| now.saturating_sub(seen.swap(now, Ordering::Relaxed));
            o.wal_appends
                .add(delta(&self.part.wal_appends_seen, s.appends));
            o.wal_fsyncs
                .add(delta(&self.part.wal_fsyncs_seen, s.fsyncs));
            o.wal_bytes_written
                .add(delta(&self.part.wal_bytes_seen, s.bytes_written));
            o.snapshot_compactions
                .add(delta(&self.part.wal_compactions_seen, s.compactions));
            o.recovery_truncated_records
                .add(delta(&self.part.wal_truncated_seen, s.truncated_records));
            for r in 0..self.guard.replica_count() {
                if let Some(g) = o.wal_tail_decree.get(&(self.dc.clone(), r as u8)) {
                    let tail = self.guard.replica_wal_stats(ReplicaId(r as u8)).tail_decree;
                    g.set(tail as i64);
                }
            }
        }
    }
}

impl std::ops::Deref for RingGuard<'_> {
    type Target = PaxosCluster;
    fn deref(&self) -> &PaxosCluster {
        &self.guard
    }
}

impl std::ops::DerefMut for RingGuard<'_> {
    fn deref_mut(&mut self) -> &mut PaxosCluster {
        &mut self.guard
    }
}

/// The partitioned, proxied storage service. Cheap to clone; all clones
/// share state.
#[derive(Clone)]
pub struct StorageService {
    /// The partition map, immutable after construction: lookups, routing,
    /// and health checks are lock-free reads of an `Arc`.
    parts: Arc<HashMap<DatacenterId, Partition>>,
    /// Partition names in sorted order (the deterministic iteration order
    /// every multi-partition operation uses).
    names: Arc<Vec<DatacenterId>>,
    config: Arc<StorageConfig>,
    /// Bounded-stale read cache, deliberately *outside* the partition
    /// locks: cache hits are concurrent reads that never contend with
    /// writes or leader reads — the architectural point of §6.4 (cache
    /// replicas scale out; leaders do not).
    cache: Arc<parking_lot::RwLock<HashMap<(DatacenterId, Pool), CacheEntry>>>,
    cache_hits: Arc<AtomicU64>,
    clock: statesman_net::SimClock,
    /// Metric handles, attached at most once via
    /// [`StorageService::attach_obs`]. Outside the partition locks so the
    /// bounded-stale cache-hit path can record without contending.
    obs: Arc<std::sync::OnceLock<StorageObs>>,
    /// The most recent replica crash recovery across all partitions, for
    /// the `/v1/status` `last_recovery` block.
    last_recovery: Arc<Mutex<Option<RecoverySummary>>>,
}

impl StorageService {
    /// Build a service with rings for the given datacenters (plus the WAN
    /// pseudo-datacenter, which is always present).
    pub fn new(
        datacenters: impl IntoIterator<Item = DatacenterId>,
        clock: statesman_net::SimClock,
        config: StorageConfig,
    ) -> Self {
        // Directory-backed durability gets one subdirectory per partition
        // so rings never share WAL files.
        let scope_durability = |rc: &mut ClusterConfig, dc: &DatacenterId| {
            if let DurabilityMode::Dir(base) = &config.ring.durability {
                rc.durability = DurabilityMode::Dir(base.join(dc.to_string()));
            }
        };
        let mut parts = HashMap::new();
        let mut idx = 0u64;
        for dc in datacenters {
            let mut rc = config.ring.clone();
            rc.replicas = config.replicas_per_ring;
            rc.seed = config.seed.wrapping_add(idx);
            scope_durability(&mut rc, &dc);
            idx += 1;
            parts.insert(dc, Partition::new(rc));
        }
        if let std::collections::hash_map::Entry::Vacant(e) = parts.entry(DatacenterId::wan()) {
            let mut rc = config.ring.clone();
            rc.replicas = config.replicas_per_ring;
            rc.seed = config.seed.wrapping_add(idx);
            scope_durability(&mut rc, &DatacenterId::wan());
            e.insert(Partition::new(rc));
        }
        let mut names: Vec<DatacenterId> = parts.keys().cloned().collect();
        names.sort();
        StorageService {
            parts: Arc::new(parts),
            names: Arc::new(names),
            config: Arc::new(config),
            cache: Arc::new(parking_lot::RwLock::new(HashMap::new())),
            cache_hits: Arc::new(AtomicU64::new(0)),
            clock,
            obs: Arc::new(std::sync::OnceLock::new()),
            last_recovery: Arc::new(Mutex::new(None)),
        }
    }

    /// Attach a metrics registry. Handles are created once and shared by
    /// every clone of this service; a second attach is a no-op (the
    /// registry is process-wide plumbing, not per-call state).
    pub fn attach_obs(&self, registry: &Registry) {
        let _ = self.obs.set(StorageObs::new(
            registry,
            &self.names,
            self.config.replicas_per_ring,
        ));
    }

    fn obs(&self) -> Option<&StorageObs> {
        self.obs.get()
    }

    /// The simulated clock this service stamps against.
    pub fn clock(&self) -> &statesman_net::SimClock {
        &self.clock
    }

    /// Convenience: a single-DC service with default config.
    pub fn single_dc(dc: impl Into<DatacenterId>, clock: statesman_net::SimClock) -> Self {
        StorageService::new([dc.into()], clock, StorageConfig::default())
    }

    /// The partition owning `dc`, or the typed unavailable error.
    fn part(&self, dc: &DatacenterId) -> StateResult<&Partition> {
        self.parts
            .get(dc)
            .ok_or_else(|| StateError::StorageUnavailable {
                partition: dc.to_string(),
                reason: "unknown partition".into(),
            })
    }

    /// Acquire one partition's ring lock, recording how long the
    /// acquisition waited (contention observability) and keeping the
    /// inflight gauge up while the guard lives.
    fn lock_ring<'a>(&'a self, dc: &'a DatacenterId, part: &'a Partition) -> RingGuard<'a> {
        part.inflight.fetch_add(1, Ordering::Relaxed);
        let gauge = self
            .obs()
            .and_then(|o| o.partition_inflight.get(dc))
            .cloned();
        if let Some(g) = &gauge {
            g.add(1);
        }
        let started = Instant::now();
        let guard = part.ring.lock();
        let waited = started.elapsed().as_micros() as u64;
        part.lock_wait_us.fetch_add(waited, Ordering::Relaxed);
        if let Some(h) = self.obs().and_then(|o| o.lock_wait.get(dc)) {
            h.observe(waited as f64);
        }
        RingGuard {
            guard,
            part,
            gauge,
            dc,
            obs: self.obs(),
        }
    }

    /// The partition (datacenter) names, sorted. Lock-free: the partition
    /// set is fixed at construction.
    pub fn partitions(&self) -> Vec<DatacenterId> {
        self.names.as_ref().clone()
    }

    /// Proxy routing: the partition owning an entity (its home DC).
    /// Errors if no ring exists for that DC. Lock-free.
    pub fn route(&self, entity: &EntityName) -> StateResult<DatacenterId> {
        if self.parts.contains_key(&entity.datacenter) {
            Ok(entity.datacenter.clone())
        } else {
            Err(StateError::UnroutableEntity {
                entity: entity.clone(),
            })
        }
    }

    /// Write rows. The proxy splits the batch by partition; each partition
    /// gets one consensus commit, and when the batch spans partitions the
    /// sub-batches commit **concurrently** — partitions share no state
    /// (§6.1), so there is nothing to serialize on.
    ///
    /// A multi-partition batch is **not a transaction**: each sub-batch
    /// is an independent single-partition commit, so when one partition
    /// fails (offline, no quorum) every healthy partition's sub-batch
    /// still lands. On error the result covers *all* failures — the
    /// partition's own typed error when exactly one failed, or an
    /// aggregate [`StateError::StorageUnavailable`] naming every failed
    /// partition. (The pre-shard proxy committed sequentially in sorted
    /// partition order and stopped at the first failure; callers must
    /// not infer a committed sorted prefix from an error.) Malformed or
    /// unroutable rows are still rejected up front, before *any*
    /// partition commits.
    pub fn write(&self, req: WriteRequest) -> StateResult<()> {
        if let Some(o) = self.obs() {
            o.writes.inc();
            o.rows_written.add(req.rows.len() as u64);
        }
        let mut by_dc: HashMap<DatacenterId, Vec<NetworkState>> = HashMap::new();
        for row in req.rows {
            if !row.is_well_formed() {
                return Err(StateError::invalid(format!("malformed row {row}")));
            }
            by_dc
                .entry(row.entity.datacenter.clone())
                .or_default()
                .push(row);
        }
        // Deterministic partition order, and routability validated up
        // front so a bad row cannot land part of the batch.
        let mut dcs: Vec<DatacenterId> = by_dc.keys().cloned().collect();
        dcs.sort();
        for dc in &dcs {
            if !self.parts.contains_key(dc) {
                return Err(StateError::UnroutableEntity {
                    entity: by_dc[dc][0].entity.clone(),
                });
            }
        }
        let pool = req.pool;
        if dcs.len() <= 1 {
            if let Some(dc) = dcs.first() {
                let rows = by_dc.remove(dc).expect("key exists");
                self.write_partition(dc, pool, rows)?;
            }
            return Ok(());
        }
        let results: Vec<StateResult<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = dcs
                .iter()
                .map(|dc| {
                    let rows = by_dc.remove(dc).expect("key exists");
                    let pool = pool.clone();
                    scope.spawn(move || self.write_partition(dc, pool, rows))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition write thread panicked"))
                .collect()
        });
        partition_results(&dcs, results)
    }

    /// One partition's share of a write: a single consensus commit under
    /// that partition's lock only.
    fn write_partition(
        &self,
        dc: &DatacenterId,
        pool: Pool,
        rows: Vec<NetworkState>,
    ) -> StateResult<()> {
        let part = self.parts.get(dc).expect("routability validated");
        let mut ring = self.lock_ring(dc, part);
        let before = leader_suppressed(&mut ring);
        self.submit_with_retry(part, &mut ring, dc, LogCommand::WriteBatch { pool, rows })?;
        let suppressed = leader_suppressed(&mut ring).saturating_sub(before);
        if suppressed > 0 {
            part.writes_suppressed
                .fetch_add(suppressed, Ordering::Relaxed);
            if let Some(o) = self.obs() {
                o.writes_suppressed.add(suppressed);
            }
        }
        Ok(())
    }

    /// Bulk-ingest write for bootstrap seeding: identical routing,
    /// validation, and failure semantics to [`StorageService::write`],
    /// but each partition's sub-batch commits as a single
    /// [`LogCommand::BulkBatch`] — batched slot minting, pre-sized
    /// column storage, one watermark bump — and the call reports a
    /// per-stage [`SeedStats`] breakdown. Partitions commit
    /// concurrently, one consensus commit each, regardless of size;
    /// callers accept the unbounded per-message payload that the
    /// chunked steady-state write path deliberately avoids.
    pub fn write_bulk(&self, req: WriteRequest) -> StateResult<SeedStats> {
        let started = Instant::now();
        if let Some(o) = self.obs() {
            o.writes.inc();
            o.rows_written.add(req.rows.len() as u64);
        }
        let mut by_dc: HashMap<DatacenterId, Vec<NetworkState>> = HashMap::new();
        for row in req.rows {
            if !row.is_well_formed() {
                return Err(StateError::invalid(format!("malformed row {row}")));
            }
            by_dc
                .entry(row.entity.datacenter.clone())
                .or_default()
                .push(row);
        }
        let mut dcs: Vec<DatacenterId> = by_dc.keys().cloned().collect();
        dcs.sort();
        for dc in &dcs {
            if !self.parts.contains_key(dc) {
                return Err(StateError::UnroutableEntity {
                    entity: by_dc[dc][0].entity.clone(),
                });
            }
        }
        let pool = req.pool;
        let per_part: Vec<StateResult<crate::machine::BulkStats>> = if dcs.len() <= 1 {
            match dcs.first() {
                Some(dc) => {
                    let rows = by_dc.remove(dc).expect("key exists");
                    vec![self.write_bulk_partition(dc, pool, rows)]
                }
                None => Vec::new(),
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = dcs
                    .iter()
                    .map(|dc| {
                        let rows = by_dc.remove(dc).expect("key exists");
                        let pool = pool.clone();
                        scope.spawn(move || self.write_bulk_partition(dc, pool, rows))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("partition bulk-write thread panicked"))
                    .collect()
            })
        };
        let unit_results: Vec<StateResult<()>> = per_part
            .iter()
            .map(|r| r.as_ref().map(|_| ()).map_err(|e| e.clone()))
            .collect();
        partition_results(&dcs, unit_results)?;
        let mut stats = SeedStats {
            partitions: dcs.len(),
            ..SeedStats::default()
        };
        for bulk in per_part.into_iter().flatten() {
            stats.rows += bulk.rows;
            stats.intern_ms += bulk.intern_nanos as f64 / 1e6;
            stats.fill_ms += bulk.fill_nanos as f64 / 1e6;
            stats.index_ms += bulk.index_nanos as f64 / 1e6;
        }
        stats.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        stats.commit_ms =
            (stats.wall_ms - stats.intern_ms - stats.fill_ms - stats.index_ms).max(0.0);
        Ok(stats)
    }

    /// One partition's share of a bulk write: a single `BulkBatch`
    /// consensus commit, returning the leader machine's stage-timing
    /// delta for this batch.
    fn write_bulk_partition(
        &self,
        dc: &DatacenterId,
        pool: Pool,
        rows: Vec<NetworkState>,
    ) -> StateResult<crate::machine::BulkStats> {
        let part = self.parts.get(dc).expect("routability validated");
        let mut ring = self.lock_ring(dc, part);
        let before_stats = ring
            .leader_machine()
            .map(|m| m.bulk_stats())
            .unwrap_or_default();
        let before_suppressed = leader_suppressed(&mut ring);
        self.submit_with_retry(
            part,
            &mut ring,
            dc,
            LogCommand::BulkBatch {
                pool,
                rows: std::sync::Arc::new(rows),
            },
        )?;
        let suppressed = leader_suppressed(&mut ring).saturating_sub(before_suppressed);
        if suppressed > 0 {
            part.writes_suppressed
                .fetch_add(suppressed, Ordering::Relaxed);
            if let Some(o) = self.obs() {
                o.writes_suppressed.add(suppressed);
            }
        }
        Ok(ring
            .leader_machine()
            .map(|m| m.bulk_stats())
            .unwrap_or_default()
            .since(&before_stats))
    }

    /// Delete keys from a pool (split by partition like writes, with the
    /// same concurrent multi-partition dispatch and the same
    /// independent-sub-batch failure semantics: healthy partitions
    /// commit even when others fail, and the error aggregates every
    /// failed partition — see [`StorageService::write`]).
    pub fn delete(&self, pool: Pool, keys: Vec<StateKey>) -> StateResult<()> {
        if let Some(o) = self.obs() {
            o.deletes.inc();
        }
        let mut by_dc: HashMap<DatacenterId, Vec<StateKey>> = HashMap::new();
        for k in keys {
            by_dc
                .entry(k.entity.datacenter.clone())
                .or_default()
                .push(k);
        }
        let mut dcs: Vec<DatacenterId> = by_dc.keys().cloned().collect();
        dcs.sort();
        for dc in &dcs {
            if !self.parts.contains_key(dc) {
                return Err(StateError::UnroutableEntity {
                    entity: by_dc[dc][0].entity.clone(),
                });
            }
        }
        if dcs.len() <= 1 {
            if let Some(dc) = dcs.first() {
                let keys = by_dc.remove(dc).expect("key exists");
                self.delete_partition(dc, pool, keys)?;
            }
            return Ok(());
        }
        let results: Vec<StateResult<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = dcs
                .iter()
                .map(|dc| {
                    let keys = by_dc.remove(dc).expect("key exists");
                    let pool = pool.clone();
                    scope.spawn(move || self.delete_partition(dc, pool, keys))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition delete thread panicked"))
                .collect()
        });
        partition_results(&dcs, results)
    }

    fn delete_partition(
        &self,
        dc: &DatacenterId,
        pool: Pool,
        keys: Vec<StateKey>,
    ) -> StateResult<()> {
        let part = self.parts.get(dc).expect("routability validated");
        let mut ring = self.lock_ring(dc, part);
        self.submit_with_retry(part, &mut ring, dc, LogCommand::DeleteBatch { pool, keys })
    }

    /// Read rows per the request's freshness mode.
    pub fn read(&self, req: ReadRequest) -> StateResult<Vec<NetworkState>> {
        if let Some(o) = self.obs() {
            o.reads.inc();
        }
        let now = self.clock.now();
        let matches = |r: &NetworkState| {
            req.entity.as_ref().map(|e| &r.entity == e).unwrap_or(true)
                && req.attribute.map(|a| r.attribute == a).unwrap_or(true)
        };
        let rows: Arc<Vec<NetworkState>> = match req.freshness {
            Freshness::UpToDate => {
                let part = self.part(&req.datacenter)?;
                part.check_online(&req.datacenter)?;
                part.leader_reads.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs() {
                    o.leader_reads.inc();
                }
                let mut ring = self.lock_ring(&req.datacenter, part);
                let machine = ring.leader_machine()?;
                if req.entity.is_some() || req.attribute.is_some() {
                    // Filter before cloning: a single-entity read copies
                    // its handful of rows, not the whole pool.
                    return Ok(machine.pool_rows_where(&req.pool, matches));
                }
                // Full-pool leader read: hand the copy straight back
                // rather than re-cloning every row through the no-op
                // filter below (full scans pay this per round).
                return Ok(machine.pool_rows(&req.pool));
            }
            Freshness::BoundedStale => {
                let key = (req.datacenter.clone(), req.pool.clone());
                // The config is immutable and outside every lock: the
                // staleness-bound peek costs nothing.
                let bound = self.config.staleness_bound;
                // Fast path: a shared read lock and an Arc clone — no
                // partition contention, no row copies.
                let hit = {
                    let cache = self.cache.read();
                    cache.get(&key).and_then(|c| {
                        (now.saturating_since(c.fetched_at) <= bound).then(|| Arc::clone(&c.rows))
                    })
                };
                match hit {
                    Some(rows) => {
                        self.cache_hits.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = self.obs() {
                            o.cache_hits.inc();
                        }
                        rows
                    }
                    None => {
                        // The expired snapshot (if any) seeds a delta
                        // refresh: apply the changefeed since its
                        // watermark instead of recopying the pool.
                        let prior = {
                            let cache = self.cache.read();
                            cache.get(&key).map(|c| (Arc::clone(&c.rows), c.watermark))
                        };
                        self.refresh_cache_entry(&req, now, key, prior)?
                    }
                }
            }
        };
        Ok(rows.iter().filter(|r| matches(r)).cloned().collect())
    }

    /// Refresh one bounded-stale cache entry from a (possibly behind)
    /// replica: extract the small delta under the partition lock, apply
    /// it to the held snapshot *outside* the lock, fall back to a full
    /// pool copy when the changefeed cannot serve the gap. (Refreshes
    /// check partition health: cache *hits* deliberately skip the online
    /// check so bounded-stale reads ride out outages within the bound.)
    fn refresh_cache_entry(
        &self,
        req: &ReadRequest,
        now: SimTime,
        key: (DatacenterId, Pool),
        prior: Option<(Arc<Vec<NetworkState>>, Version)>,
    ) -> StateResult<Arc<Vec<NetworkState>>> {
        enum Refresh {
            Delta(Arc<Vec<NetworkState>>, StateDelta),
            Full(Vec<NetworkState>, Version),
        }
        let refresh = {
            let part = self.part(&req.datacenter)?;
            part.check_online(&req.datacenter)?;
            let ring = self.lock_ring(&req.datacenter, part);
            // A follower replica: cheap, and possibly behind the leader —
            // both forms of staleness the 5-minute bound covers.
            let machine = ring.any_machine();
            let delta = prior.and_then(|(rows, since)| {
                machine
                    .changes_since(&req.pool, since)
                    .filter(|d| !d.snapshot)
                    .map(|d| (rows, d))
            });
            match delta {
                Some((rows, delta)) => Refresh::Delta(rows, delta),
                None => Refresh::Full(
                    machine.pool_rows(&req.pool),
                    machine.pool_watermark(&req.pool),
                ),
            }
        };
        let (rows, watermark) = match refresh {
            Refresh::Delta(old, delta) => {
                if let Some(o) = self.obs() {
                    o.cache_delta_refreshes.inc();
                }
                let watermark = delta.watermark;
                let mut map: HashMap<VarId, NetworkState> =
                    old.iter().map(|r| (r.var_id(), r.clone())).collect();
                for k in &delta.deletes {
                    map.remove(&k.var_id());
                }
                for r in delta.upserts {
                    map.insert(r.var_id(), r);
                }
                (Arc::new(map.into_values().collect()), watermark)
            }
            Refresh::Full(rows, watermark) => (Arc::new(rows), watermark),
        };
        self.cache.write().insert(
            key,
            CacheEntry {
                fetched_at: now,
                watermark,
                rows: Arc::clone(&rows),
            },
        );
        Ok(rows)
    }

    /// Read one row up-to-date (checker fast path). Touches only the
    /// owning partition's lock.
    pub fn read_row(&self, pool: &Pool, key: &StateKey) -> StateResult<Option<NetworkState>> {
        let part =
            self.parts
                .get(&key.entity.datacenter)
                .ok_or_else(|| StateError::UnroutableEntity {
                    entity: key.entity.clone(),
                })?;
        part.check_online(&key.entity.datacenter)?;
        part.leader_reads.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs() {
            o.leader_reads.inc();
        }
        let mut ring = self.lock_ring(&key.entity.datacenter, part);
        Ok(ring.leader_machine()?.get(pool, key).cloned())
    }

    /// Post checker receipts to the partition holding the affected
    /// entities (receipts are stored per application).
    pub fn post_receipts(&self, dc: &DatacenterId, receipts: Vec<WriteReceipt>) -> StateResult<()> {
        if receipts.is_empty() {
            return Ok(());
        }
        if let Some(o) = self.obs() {
            o.receipts_posted.add(receipts.len() as u64);
        }
        let part = self.part(dc)?;
        let mut ring = self.lock_ring(dc, part);
        self.submit_with_retry(part, &mut ring, dc, LogCommand::PostReceipts { receipts })
    }

    /// Drain the receipts queued for an application in one partition.
    pub fn take_receipts(&self, dc: &DatacenterId, app: &AppId) -> StateResult<Vec<WriteReceipt>> {
        let part = self.part(dc)?;
        part.check_online(dc)?;
        let mut ring = self.lock_ring(dc, part);
        let receipts = ring.leader_machine_mut()?.take_receipts(app);
        if let Some(o) = self.obs() {
            o.receipts_taken.add(receipts.len() as u64);
        }
        Ok(receipts)
    }

    /// Total rows across all partitions and pools (scale reporting).
    pub fn total_rows(&self) -> usize {
        let mut total = 0;
        for dc in self.names.iter() {
            let part = self.parts.get(dc).expect("name maps to partition");
            let mut ring = self.lock_ring(dc, part);
            if let Ok(m) = ring.leader_machine() {
                total += m.pool_len(&Pool::Observed) + m.pool_len(&Pool::Target);
            }
        }
        total
    }

    /// Applications with a non-empty proposed state in one partition.
    pub fn proposing_apps(&self, dc: &DatacenterId) -> Vec<AppId> {
        match self.parts.get(dc) {
            Some(part) => {
                let mut ring = self.lock_ring(dc, part);
                match ring.leader_machine() {
                    Ok(m) => m
                        .pools()
                        .into_iter()
                        .filter_map(|p| match p {
                            Pool::Proposed(app) => Some(app),
                            _ => None,
                        })
                        .collect(),
                    Err(_) => Vec::new(),
                }
            }
            None => Vec::new(),
        }
    }

    /// Rows in one pool of one partition.
    pub fn pool_len(&self, dc: &DatacenterId, pool: &Pool) -> usize {
        match self.parts.get(dc) {
            Some(part) => {
                let mut ring = self.lock_ring(dc, part);
                ring.leader_machine().map(|m| m.pool_len(pool)).unwrap_or(0)
            }
            None => 0,
        }
    }

    /// Per-pool row counts summed across every partition, sorted by pool
    /// wire name — the `/v1/status` state-plane breakdown. Unreadable
    /// partitions contribute nothing (degraded mode must not fail a
    /// status scrape).
    pub fn pool_row_stats(&self) -> Vec<(Pool, u64)> {
        let mut totals: std::collections::BTreeMap<String, (Pool, u64)> =
            std::collections::BTreeMap::new();
        for dc in self.names.iter() {
            let part = self.parts.get(dc).expect("name maps to partition");
            let mut ring = self.lock_ring(dc, part);
            if let Ok(m) = ring.leader_machine() {
                for (pool, n) in m.pool_stats() {
                    totals
                        .entry(pool.wire_name().into_owned())
                        .and_modify(|e| e.1 += n)
                        .or_insert((pool, n));
                }
            }
        }
        totals.into_values().collect()
    }

    /// (approximate resident bytes, live rows) of the columnar state
    /// plane, summed across partitions — the source of the
    /// `state_bytes_per_var` gauge.
    pub fn state_bytes(&self) -> (u64, u64) {
        let mut bytes = 0u64;
        let mut rows = 0u64;
        for dc in self.names.iter() {
            let part = self.parts.get(dc).expect("name maps to partition");
            let mut ring = self.lock_ring(dc, part);
            if let Ok(m) = ring.leader_machine() {
                let (b, r) = m.state_bytes();
                bytes += b;
                rows += r;
            }
        }
        (bytes, rows)
    }

    /// (cache_hits, leader_reads) counters for the freshness bench.
    /// Lock-free: both are atomics (leader reads aggregate per partition).
    pub fn read_stats(&self) -> (u64, u64) {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let leader_reads = self
            .parts
            .values()
            .map(|p| p.leader_reads.load(Ordering::Relaxed))
            .sum();
        (hits, leader_reads)
    }

    /// Mean consensus commit latency per partition, µs.
    pub fn commit_latency_by_partition(&self) -> Vec<(DatacenterId, f64)> {
        self.names
            .iter()
            .map(|dc| {
                let part = self.parts.get(dc).expect("name maps to partition");
                let ring = self.lock_ring(dc, part);
                (dc.clone(), ring.mean_commit_latency())
            })
            .collect()
    }

    /// Cumulative wall-clock µs operations spent waiting on partition
    /// ring locks, summed across partitions. Zero while callers stay on
    /// disjoint partitions — the number the sharded plane is supposed to
    /// keep near zero. The coordinator diffs it per round into
    /// `/v1/status`.
    pub fn lock_wait_stats(&self) -> u64 {
        self.parts
            .values()
            .map(|p| p.lock_wait_us.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-partition cumulative ring-lock wait (µs), sorted by partition
    /// name (contention observability for benches and debugging).
    pub fn lock_wait_by_partition(&self) -> Vec<(DatacenterId, u64)> {
        self.names
            .iter()
            .map(|dc| {
                let part = self.parts.get(dc).expect("name maps to partition");
                (dc.clone(), part.lock_wait_us.load(Ordering::Relaxed))
            })
            .collect()
    }

    /// Crash a replica in one partition (failure injection for tests).
    pub fn crash_replica(&self, dc: &DatacenterId, replica: u8) {
        if let Some(part) = self.parts.get(dc) {
            let mut ring = self.lock_ring(dc, part);
            ring.crash(crate::bus::ReplicaId(replica));
        }
    }

    /// Restart a crashed replica.
    pub fn restart_replica(&self, dc: &DatacenterId, replica: u8) {
        if let Some(part) = self.parts.get(dc) {
            let mut ring = self.lock_ring(dc, part);
            ring.restart(crate::bus::ReplicaId(replica));
        }
    }

    /// Kill -9 a replica: process state is dropped on the floor (no
    /// graceful teardown), durable files survive. The partition reports
    /// retryable unavailability until [`Self::complete_replica_recovery`]
    /// brings the replica back — callers must never read a stale
    /// pre-crash watermark through a partition that is mid-recovery.
    pub fn begin_replica_recovery(&self, dc: &DatacenterId, replica: u8) {
        if let Some(part) = self.parts.get(dc) {
            part.recovering.fetch_add(1, Ordering::Relaxed);
            let mut ring = self.lock_ring(dc, part);
            ring.kill9(ReplicaId(replica));
        }
    }

    /// Corrupt a killed replica's durable files (chaos injection): a torn
    /// tail the recovery path must repair, or a bit flip it must refuse.
    pub fn corrupt_replica_wal(&self, dc: &DatacenterId, replica: u8, corruption: &WalCorruption) {
        if let Some(part) = self.parts.get(dc) {
            let mut ring = self.lock_ring(dc, part);
            ring.corrupt_store(ReplicaId(replica), corruption);
        }
    }

    /// Restart a killed replica through the recovery path and lift the
    /// partition's mid-recovery unavailability. Returns the recovery
    /// summary (also stashed for `/v1/status`).
    pub fn complete_replica_recovery(
        &self,
        dc: &DatacenterId,
        replica: u8,
    ) -> Option<RecoverySummary> {
        let part = self.parts.get(dc)?;
        let report = {
            let mut ring = self.lock_ring(dc, part);
            ring.restart(ReplicaId(replica));
            ring.last_recovery().cloned()
        };
        part.recovering.fetch_sub(1, Ordering::Relaxed);
        let summary = report.map(|r| RecoverySummary {
            partition: dc.to_string(),
            replica: r.replica,
            refused: r.refused,
            truncated_records: r.truncated_records,
            replayed_events: r.replayed_events,
            snapshot_frontier: r.snapshot_frontier,
            recovered_frontier: r.recovered_frontier,
        });
        if summary.is_some() {
            *self.last_recovery.lock() = summary.clone();
        }
        summary
    }

    /// The most recent replica crash recovery across all partitions, if
    /// any (the coordinator copies it into the status board each tick).
    pub fn last_recovery(&self) -> Option<RecoverySummary> {
        self.last_recovery.lock().clone()
    }

    /// One replica's applied-through decree. Deliberately bypasses
    /// `check_online`: the chaos harness reads rejoin progress while the
    /// partition is still reporting mid-recovery unavailability.
    pub fn replica_applied_through(&self, dc: &DatacenterId, replica: u8) -> u64 {
        match self.parts.get(dc) {
            Some(part) => {
                let ring = self.lock_ring(dc, part);
                ring.applied_through(ReplicaId(replica))
            }
            None => 0,
        }
    }

    /// Verify every replica store's snapshot + hash chain in one
    /// partition; `Ok(records_verified)` or the first failure.
    pub fn verify_wal_chains(&self, dc: &DatacenterId) -> Result<u64, String> {
        match self.parts.get(dc) {
            Some(part) => {
                let ring = self.lock_ring(dc, part);
                ring.verify_chains()
            }
            None => Err(format!("unknown partition {dc}")),
        }
    }

    /// Cumulative WAL stats merged across every partition's replicas.
    pub fn wal_stats(&self) -> crate::wal::WalStats {
        let mut total = crate::wal::WalStats::default();
        for dc in self.names.iter() {
            let part = self.parts.get(dc).expect("name maps to partition");
            let ring = self.lock_ring(dc, part);
            total.merge(&ring.wal_stats());
        }
        total
    }

    /// Take a whole partition offline (or bring it back): failure
    /// injection for degraded-mode and chaos scenarios. While offline,
    /// commits and leader reads against the partition fail fast with a
    /// retryable [`StateError::StorageUnavailable`]; bounded-stale reads
    /// keep serving cached snapshots within the staleness bound.
    pub fn set_partition_available(&self, dc: &DatacenterId, available: bool) {
        if let Some(part) = self.parts.get(dc) {
            part.offline.store(!available, Ordering::Relaxed);
        }
        if let Some(o) = self.obs() {
            let offline = self
                .parts
                .values()
                .filter(|p| p.offline.load(Ordering::Relaxed))
                .count();
            o.partitions_offline.set(offline as i64);
        }
    }

    /// Whether a partition is currently available (not fault-injected
    /// offline and no replica mid-recovery). The coordinator polls this
    /// to decide which impact groups a degraded round can still process.
    /// Lock-free.
    pub fn partition_available(&self, dc: &DatacenterId) -> bool {
        self.parts
            .get(dc)
            .map(|p| {
                !p.offline.load(Ordering::Relaxed) && p.recovering.load(Ordering::Relaxed) == 0
            })
            .unwrap_or(false)
    }

    /// (retries performed, operations that exhausted their retry budget).
    /// Lock-free aggregation over the per-partition atomics.
    pub fn retry_stats(&self) -> (u64, u64) {
        let mut retries = 0;
        let mut exhausted = 0;
        for p in self.parts.values() {
            retries += p.retries.load(Ordering::Relaxed);
            exhausted += p.retries_exhausted.load(Ordering::Relaxed);
        }
        (retries, exhausted)
    }

    /// Everything that changed in one partition's pool after `since`
    /// (Table 3's GET with a version cursor). Served by the leader so the
    /// watermark in the reply is linearizable with respect to commits
    /// through this service. When the change index cannot serve the gap —
    /// `since` predates the compaction floor or outruns the watermark —
    /// the reply degrades to a full snapshot (`snapshot: true`): the
    /// paper's semantics are always recoverable, deltas are only an
    /// optimization.
    pub fn read_since(
        &self,
        dc: &DatacenterId,
        pool: &Pool,
        since: Version,
    ) -> StateResult<StateDelta> {
        if let Some(o) = self.obs() {
            o.reads.inc();
            o.leader_reads.inc();
        }
        let part = self.part(dc)?;
        part.check_online(dc)?;
        part.leader_reads.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.lock_ring(dc, part);
        let machine = ring.leader_machine()?;
        match machine.changes_since(pool, since) {
            Some(delta) => {
                part.delta_reads.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs() {
                    o.delta_reads.inc();
                }
                Ok(delta)
            }
            None => {
                let delta = StateDelta::full_snapshot(
                    machine.pool_rows(pool),
                    machine.pool_watermark(pool),
                );
                part.full_fallbacks.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs() {
                    o.full_fallbacks.inc();
                }
                Ok(delta)
            }
        }
    }

    /// The leader's current watermark for one partition's pool: the
    /// version of its newest effective change. `read_since` from this
    /// point returns an empty delta until something actually changes.
    pub fn pool_watermark(&self, dc: &DatacenterId, pool: &Pool) -> StateResult<Version> {
        let part = self.part(dc)?;
        part.check_online(dc)?;
        let mut ring = self.lock_ring(dc, part);
        Ok(ring.leader_machine()?.pool_watermark(pool))
    }

    /// The leader's current version counter for one partition, across
    /// *all* pools (versions are stamped machine-wide). Any effective
    /// write to any pool moves it, so an unchanged partition watermark
    /// proves the partition's entire state is unchanged — consumers use
    /// it as a cheap quiescence signal before paying for reads.
    pub fn partition_watermark(&self, dc: &DatacenterId) -> StateResult<Version> {
        let part = self.part(dc)?;
        part.check_online(dc)?;
        let mut ring = self.lock_ring(dc, part);
        Ok(ring.leader_machine()?.current_version())
    }

    /// (delta reads served, full-snapshot fallbacks, writes suppressed) —
    /// cumulative, for `RoundReport` and benches. Lock-free aggregation.
    pub fn delta_stats(&self) -> (u64, u64, u64) {
        let mut delta_reads = 0;
        let mut full_fallbacks = 0;
        let mut suppressed = 0;
        for p in self.parts.values() {
            delta_reads += p.delta_reads.load(Ordering::Relaxed);
            full_fallbacks += p.full_fallbacks.load(Ordering::Relaxed);
            suppressed += p.writes_suppressed.load(Ordering::Relaxed);
        }
        (delta_reads, full_fallbacks, suppressed)
    }

    /// Submit one consensus command with the configured bounded retry and
    /// jittered exponential backoff. Backoffs advance *simulated* time, so
    /// retry cost is visible in round latency without wall-clock stalls.
    /// Fatal (non-retryable) errors and exhausted budgets surface the
    /// typed error to the caller — nothing blocks indefinitely. The
    /// partition's ring lock is held across the whole retry loop, so each
    /// partition's commits stay atomic with respect to each other exactly
    /// as they were under the global lock; other partitions are
    /// unaffected, and concurrent backoffs compose (clock advances are
    /// commutative).
    fn submit_with_retry(
        &self,
        part: &Partition,
        ring: &mut PaxosCluster,
        dc: &DatacenterId,
        cmd: LogCommand,
    ) -> StateResult<()> {
        let policy = &self.config.retry;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let res = part
                .check_online(dc)
                .and_then(|()| ring.submit(cmd.clone()).map(|_| ()));
            match res {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() && policy.should_retry(attempt) => {
                    part.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = self.obs() {
                        o.retries.inc();
                    }
                    let roll: f64 = part.rng.lock().gen();
                    self.clock.advance(policy.backoff_after(attempt, roll));
                }
                Err(e) => {
                    if e.is_retryable() {
                        part.retries_exhausted.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = self.obs() {
                            o.retries_exhausted.inc();
                            o.unavailable.inc();
                        }
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// Collapse a multi-partition fan-out's per-partition results (in sorted
/// partition order). Sub-batches commit independently, so an error here
/// never means "nothing landed": `Ok` when every partition committed;
/// the partition's own typed error when exactly one failed; an aggregate
/// [`StateError::StorageUnavailable`] naming every failed partition when
/// several did, so callers see the full damage rather than only the
/// sorted-first casualty.
fn partition_results(dcs: &[DatacenterId], results: Vec<StateResult<()>>) -> StateResult<()> {
    let mut failures: Vec<(&DatacenterId, StateError)> = dcs
        .iter()
        .zip(results)
        .filter_map(|(dc, r)| r.err().map(|e| (dc, e)))
        .collect();
    match failures.len() {
        0 => Ok(()),
        1 => Err(failures.pop().expect("length checked").1),
        _ => Err(StateError::StorageUnavailable {
            partition: failures
                .iter()
                .map(|(dc, _)| dc.to_string())
                .collect::<Vec<_>>()
                .join(","),
            reason: failures
                .iter()
                .map(|(dc, e)| format!("{dc}: {e}"))
                .collect::<Vec<_>>()
                .join("; "),
        }),
    }
}

/// Cumulative value-identical writes suppressed by this ring's leader (0
/// when no leader is reachable — callers diff before/after the same
/// commit, so a mid-write leader change at worst undercounts).
fn leader_suppressed(ring: &mut PaxosCluster) -> u64 {
    ring.leader_machine()
        .ok()
        .map(|m| m.suppressed_count())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_net::SimClock;
    use statesman_types::Value;

    fn clock() -> SimClock {
        SimClock::new()
    }

    fn row(dc: &str, dev: &str, fw: &str, at: SimTime) -> NetworkState {
        NetworkState::new(
            EntityName::device(dc, dev),
            Attribute::DeviceFirmwareVersion,
            Value::text(fw),
            at,
            AppId::monitor(),
        )
    }

    fn svc(clock: &SimClock) -> StorageService {
        StorageService::new(
            [DatacenterId::new("dc1"), DatacenterId::new("dc2")],
            clock.clone(),
            StorageConfig::default(),
        )
    }

    #[test]
    fn write_then_uptodate_read() {
        let c = clock();
        let s = svc(&c);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "agg-1-1", "6.0", c.now())],
        })
        .unwrap();
        let rows = s
            .read(ReadRequest {
                datacenter: DatacenterId::new("dc1"),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: None,
                attribute: None,
            })
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, Value::text("6.0"));
    }

    #[test]
    fn proxy_splits_batches_across_partitions() {
        let c = clock();
        let s = svc(&c);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![
                row("dc1", "agg-1-1", "6.0", c.now()),
                row("dc2", "agg-1-1", "6.0", c.now()),
            ],
        })
        .unwrap();
        assert_eq!(s.pool_len(&DatacenterId::new("dc1"), &Pool::Observed), 1);
        assert_eq!(s.pool_len(&DatacenterId::new("dc2"), &Pool::Observed), 1);
    }

    #[test]
    fn unroutable_entities_error() {
        let c = clock();
        let s = svc(&c);
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("dc9", "agg-1-1", "6.0", c.now())],
            })
            .unwrap_err();
        assert!(matches!(err, StateError::UnroutableEntity { .. }));
        assert!(s.route(&EntityName::device("dc9", "x")).is_err());
        assert!(s.route(&EntityName::device("dc1", "x")).is_ok());
    }

    #[test]
    fn unroutable_rows_poison_the_whole_batch() {
        // Routability is validated before any partition commits: a batch
        // with one bad row lands nothing, even in routable partitions.
        let c = clock();
        let s = svc(&c);
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![
                    row("dc1", "agg-1-1", "6.0", c.now()),
                    row("dc9", "agg-1-1", "6.0", c.now()),
                ],
            })
            .unwrap_err();
        assert!(matches!(err, StateError::UnroutableEntity { .. }));
        assert_eq!(s.pool_len(&DatacenterId::new("dc1"), &Pool::Observed), 0);
    }

    #[test]
    fn wan_partition_always_exists() {
        let c = clock();
        let s = svc(&c);
        assert!(s.partitions().contains(&DatacenterId::wan()));
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("wan", "br-1", "9.0", c.now())],
        })
        .unwrap();
    }

    #[test]
    fn bounded_stale_reads_hit_cache_within_bound() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        let rd = |s: &StorageService| {
            s.read(ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: Freshness::BoundedStale,
                entity: None,
                attribute: None,
            })
            .unwrap()
        };
        let first = rd(&s);
        assert_eq!(first.len(), 1);
        // A write lands, but the cache (within the bound) still serves the
        // old snapshot.
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "b", "1", c.now())],
        })
        .unwrap();
        let second = rd(&s);
        assert_eq!(second.len(), 1, "stale view within bound");
        let (hits, _) = s.read_stats();
        assert_eq!(hits, 1);
        // After the bound passes, the cache refreshes.
        c.advance(SimDuration::from_mins(6));
        let third = rd(&s);
        assert_eq!(third.len(), 2);
    }

    #[test]
    fn uptodate_reads_never_use_cache() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        for _ in 0..3 {
            s.read(ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: None,
                attribute: None,
            })
            .unwrap();
        }
        let (hits, leader_reads) = s.read_stats();
        assert_eq!(hits, 0);
        assert_eq!(leader_reads, 3);
    }

    #[test]
    fn filters_by_entity_and_attribute() {
        let c = clock();
        let s = svc(&c);
        let mut lock_row = NetworkState::new(
            EntityName::device("dc1", "a"),
            Attribute::EntityLock,
            Value::None,
            c.now(),
            AppId::new("te"),
        );
        lock_row.value = Value::None;
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now()), lock_row],
        })
        .unwrap();
        let rows = s
            .read(ReadRequest {
                datacenter: DatacenterId::new("dc1"),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: Some(EntityName::device("dc1", "a")),
                attribute: Some(Attribute::DeviceFirmwareVersion),
            })
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].attribute, Attribute::DeviceFirmwareVersion);
    }

    #[test]
    fn receipts_round_trip() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        let app = AppId::new("upgrade");
        let receipt = WriteReceipt {
            app: app.clone(),
            key: StateKey::new(
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceFirmwareVersion,
            ),
            proposed: Value::text("7.0"),
            outcome: statesman_types::WriteOutcome::Accepted,
            decided_at: c.now(),
        };
        s.post_receipts(&dc, vec![receipt.clone()]).unwrap();
        assert_eq!(s.take_receipts(&dc, &app).unwrap(), vec![receipt]);
        assert!(s.take_receipts(&dc, &app).unwrap().is_empty());
    }

    #[test]
    fn malformed_rows_rejected() {
        let c = clock();
        let s = svc(&c);
        let bad = NetworkState::new(
            EntityName::link("dc1", "a", "b"),
            Attribute::DeviceFirmwareVersion, // device attr on a link
            Value::text("x"),
            c.now(),
            AppId::monitor(),
        );
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![bad],
            })
            .unwrap_err();
        assert!(matches!(err, StateError::InvalidRequest { .. }));
    }

    #[test]
    fn survives_replica_crash() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.crash_replica(&dc, 0);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        assert_eq!(s.pool_len(&dc, &Pool::Observed), 1);
        s.restart_replica(&dc, 0);
    }

    #[test]
    fn offline_partition_fails_fast_with_retryable_error() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.set_partition_available(&dc, false);
        assert!(!s.partition_available(&dc));
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("dc1", "a", "1", c.now())],
            })
            .unwrap_err();
        assert!(matches!(err, StateError::StorageUnavailable { .. }));
        assert!(err.is_retryable(), "partition outage must be retryable");
        // The other partition is unaffected.
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc2", "a", "1", c.now())],
        })
        .unwrap();

        // Back online: the same write now lands.
        s.set_partition_available(&dc, true);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        assert_eq!(s.pool_len(&dc, &Pool::Observed), 1);
    }

    #[test]
    fn multi_partition_failure_commits_healthy_partitions_and_names_all_failed() {
        // A batch spanning three partitions with two of them dark: the
        // healthy partition's sub-batch lands (sub-batches are
        // independent commits, not a transaction) and the error
        // aggregates *both* failed partitions, not just the sorted-first.
        let c = clock();
        let s = svc(&c); // dc1, dc2, wan
        s.set_partition_available(&DatacenterId::new("dc1"), false);
        s.set_partition_available(&DatacenterId::wan(), false);
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![
                    row("dc1", "a", "1", c.now()),
                    row("dc2", "a", "1", c.now()),
                    row("wan", "br-1", "1", c.now()),
                ],
            })
            .unwrap_err();
        assert_eq!(s.pool_len(&DatacenterId::new("dc2"), &Pool::Observed), 1);
        assert_eq!(s.pool_len(&DatacenterId::new("dc1"), &Pool::Observed), 0);
        match &err {
            StateError::StorageUnavailable { partition, reason } => {
                assert!(partition.contains("dc1"), "missing dc1 in {partition}");
                assert!(partition.contains("wan"), "missing wan in {partition}");
                assert!(reason.contains("dc1") && reason.contains("wan"));
            }
            other => panic!("expected aggregate StorageUnavailable, got {other:?}"),
        }
        assert!(err.is_retryable());

        // Exactly one failed partition surfaces its own typed error.
        s.set_partition_available(&DatacenterId::wan(), true);
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("dc1", "b", "1", c.now()), row("dc2", "b", "1", c.now())],
            })
            .unwrap_err();
        assert!(
            matches!(&err, StateError::StorageUnavailable { partition, .. } if partition == "dc1")
        );
        assert_eq!(s.pool_len(&DatacenterId::new("dc2"), &Pool::Observed), 2);
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        let c = clock();
        let cfg = StorageConfig {
            retry: statesman_types::RetryPolicy {
                max_attempts: 3,
                base_backoff: SimDuration::from_millis(100),
                max_backoff: SimDuration::from_secs(1),
                jitter_frac: 0.5,
            },
            ..Default::default()
        };
        let s = StorageService::new([DatacenterId::new("dc1")], c.clone(), cfg.clone());
        let dc = DatacenterId::new("dc1");
        s.set_partition_available(&dc, false);
        let before = c.now();
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("dc1", "a", "1", c.now())],
            })
            .unwrap_err();
        assert!(matches!(err, StateError::StorageUnavailable { .. }));
        let (retries, exhausted) = s.retry_stats();
        assert_eq!(retries, 2, "max_attempts 3 = 2 retries");
        assert_eq!(exhausted, 1);
        // Backoff consumed simulated time, but no more than the policy's
        // provable worst case.
        let spent = c.now().saturating_since(before);
        assert!(spent > SimDuration::ZERO, "backoff advances sim time");
        assert!(
            spent <= cfg.retry.worst_case_total_backoff(),
            "{spent} exceeds bound {}",
            cfg.retry.worst_case_total_backoff()
        );
    }

    #[test]
    fn bounded_stale_reads_survive_partition_outage_within_bound() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        let rd = |fresh: Freshness| {
            s.read(ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: fresh,
                entity: None,
                attribute: None,
            })
        };
        // Warm the cache, then take the partition down.
        assert_eq!(rd(Freshness::BoundedStale).unwrap().len(), 1);
        s.set_partition_available(&dc, false);
        // Leader reads fail fast; stale reads ride the cache.
        assert!(rd(Freshness::UpToDate).is_err());
        assert_eq!(rd(Freshness::BoundedStale).unwrap().len(), 1);
        // Past the staleness bound the cache expires and the outage shows.
        c.advance(SimDuration::from_mins(6));
        assert!(rd(Freshness::BoundedStale).is_err());
    }

    #[test]
    fn delete_clears_rows() {
        let c = clock();
        let s = svc(&c);
        let r = row("dc1", "a", "1", c.now());
        let key = r.key();
        s.write(WriteRequest {
            pool: Pool::Target,
            rows: vec![r],
        })
        .unwrap();
        s.delete(Pool::Target, vec![key.clone()]).unwrap();
        assert_eq!(s.read_row(&Pool::Target, &key).unwrap(), None);
    }

    #[test]
    fn attached_registry_tracks_operations() {
        let c = clock();
        let s = svc(&c);
        let registry = Registry::new();
        s.attach_obs(&registry);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now()), row("dc1", "b", "1", c.now())],
        })
        .unwrap();
        s.read(ReadRequest {
            datacenter: dc.clone(),
            pool: Pool::Observed,
            freshness: Freshness::BoundedStale,
            entity: None,
            attribute: None,
        })
        .unwrap();
        // Second bounded-stale read hits the cache.
        s.read(ReadRequest {
            datacenter: dc.clone(),
            pool: Pool::Observed,
            freshness: Freshness::BoundedStale,
            entity: None,
            attribute: None,
        })
        .unwrap();
        s.set_partition_available(&dc, false);
        // Write against the offline partition burns the retry budget.
        let _ = s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "c", "1", c.now())],
        });
        assert_eq!(registry.counter_value("storage_writes_total"), Some(2));
        assert_eq!(
            registry.counter_value("storage_rows_written_total"),
            Some(3)
        );
        assert_eq!(registry.counter_value("storage_reads_total"), Some(2));
        assert_eq!(registry.counter_value("storage_cache_hits_total"), Some(1));
        let (retries, exhausted) = s.retry_stats();
        assert_eq!(
            registry.counter_value("storage_retries_total"),
            Some(retries),
            "registry mirrors the internal retry counter"
        );
        assert_eq!(
            registry.counter_value("storage_retries_exhausted_total"),
            Some(exhausted)
        );
        assert_eq!(
            registry.gauge("storage_partitions_offline").get(),
            1,
            "offline gauge follows fault injection"
        );
        s.set_partition_available(&dc, true);
        assert_eq!(registry.gauge("storage_partitions_offline").get(), 0);
    }

    #[test]
    fn contention_metrics_cover_every_partition() {
        let c = clock();
        let s = svc(&c);
        let registry = Registry::new();
        s.attach_obs(&registry);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![
                row("dc1", "a", "1", c.now()),
                row("dc2", "a", "1", c.now()),
                row("wan", "br-1", "1", c.now()),
            ],
        })
        .unwrap();
        // Every partition got a commit, so every labeled lock-wait series
        // has at least one observation; the inflight gauges are back to 0.
        for dc in ["dc1", "dc2", "wan"] {
            let labels = [("partition", dc)];
            let h = registry.histogram_with("storage_lock_wait_us", &labels, LOCK_WAIT_BUCKETS_US);
            assert!(h.count() >= 1, "{dc} recorded no lock acquisitions");
            let g = registry.gauge_with("storage_partition_inflight", &labels);
            assert_eq!(g.get(), 0, "{dc} leaked an inflight op");
        }
        // The aggregate accessor matches the per-partition breakdown.
        let total: u64 = s.lock_wait_by_partition().iter().map(|(_, us)| us).sum();
        assert_eq!(s.lock_wait_stats(), total);
    }

    #[test]
    fn concurrent_partition_writers_do_not_interfere() {
        // Hammer disjoint partitions from many threads through one shared
        // service: every write lands exactly once, nothing deadlocks, and
        // the per-partition counts come out exact.
        let c = clock();
        let s = svc(&c);
        std::thread::scope(|scope| {
            for (t, dc) in ["dc1", "dc2", "wan"].iter().enumerate() {
                let s = s.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..20 {
                        s.write(WriteRequest {
                            pool: Pool::Observed,
                            rows: vec![row(dc, &format!("dev-{t}-{i}"), "1", c.now())],
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(s.pool_len(&DatacenterId::new("dc1"), &Pool::Observed), 20);
        assert_eq!(s.pool_len(&DatacenterId::new("dc2"), &Pool::Observed), 20);
        assert_eq!(s.pool_len(&DatacenterId::wan(), &Pool::Observed), 20);
    }

    #[test]
    fn write_bulk_seeds_partitions_and_reports_stages() {
        let c = clock();
        let s = svc(&c);
        let rows: Vec<NetworkState> = (0..200)
            .flat_map(|i| {
                [
                    row("dc1", &format!("bulk-d{i}"), "1", c.now()),
                    row("dc2", &format!("bulk-d{i}"), "1", c.now()),
                ]
            })
            .collect();
        let stats = s
            .write_bulk(WriteRequest {
                pool: Pool::Observed,
                rows: rows.clone(),
            })
            .unwrap();
        assert_eq!(stats.rows, 400);
        assert_eq!(stats.partitions, 2);
        assert!(stats.wall_ms > 0.0);
        // Reads see exactly the seeded rows.
        for dc in ["dc1", "dc2"] {
            let got = s
                .read(ReadRequest {
                    datacenter: DatacenterId::new(dc),
                    pool: Pool::Observed,
                    freshness: Freshness::UpToDate,
                    entity: None,
                    attribute: None,
                })
                .unwrap();
            assert_eq!(got.len(), 200, "{dc}");
        }
        // Incremental reads from before the seed fall back to a full
        // snapshot; writes after it are served as deltas.
        let dc1 = DatacenterId::new("dc1");
        let seeded = s.pool_watermark(&dc1, &Pool::Observed).unwrap();
        let d = s
            .read_since(&dc1, &Pool::Observed, Version::GENESIS)
            .unwrap();
        assert!(d.snapshot);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "bulk-d0", "2", c.now())],
        })
        .unwrap();
        let d = s.read_since(&dc1, &Pool::Observed, seeded).unwrap();
        assert!(!d.snapshot);
        assert_eq!(d.upserts.len(), 1);
    }

    #[test]
    fn read_since_returns_incremental_deltas() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        let wm0 = s.pool_watermark(&dc, &Pool::Observed).unwrap();
        assert!(wm0 > Version::GENESIS);
        // Nothing changed: empty delta at the same watermark.
        let quiet = s.read_since(&dc, &Pool::Observed, wm0).unwrap();
        assert!(quiet.is_empty() && !quiet.snapshot);
        assert_eq!(quiet.watermark, wm0);
        // One new row and one delete show up as exactly that.
        let r = row("dc1", "b", "2", c.now());
        let a_key = row("dc1", "a", "1", c.now()).key();
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![r.clone()],
        })
        .unwrap();
        s.delete(Pool::Observed, vec![a_key.clone()]).unwrap();
        let delta = s.read_since(&dc, &Pool::Observed, wm0).unwrap();
        assert!(!delta.snapshot);
        assert_eq!(delta.upserts.len(), 1);
        assert_eq!(delta.upserts[0].key(), r.key());
        assert_eq!(delta.deletes, vec![a_key]);
        assert!(delta.watermark > wm0);
        let (delta_reads, full_fallbacks, _) = s.delta_stats();
        assert_eq!((delta_reads, full_fallbacks), (2, 0));
    }

    #[test]
    fn read_since_from_genesis_of_fresh_pool_is_full_snapshotless_delta() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now()), row("dc1", "b", "1", c.now())],
        })
        .unwrap();
        // GENESIS is at the floor of an uncompacted index, so even a
        // cold start is served incrementally.
        let delta = s
            .read_since(&dc, &Pool::Observed, Version::GENESIS)
            .unwrap();
        assert!(!delta.snapshot);
        assert_eq!(delta.upserts.len(), 2);
    }

    #[test]
    fn suppressed_writes_move_no_watermark_and_are_counted() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        let registry = Registry::new();
        s.attach_obs(&registry);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        let wm = s.pool_watermark(&dc, &Pool::Observed).unwrap();
        // Same value, same writer, later timestamp: a complete no-op.
        c.advance(SimDuration::from_secs(30));
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        assert_eq!(s.pool_watermark(&dc, &Pool::Observed).unwrap(), wm);
        let (_, _, suppressed) = s.delta_stats();
        assert_eq!(suppressed, 1);
        assert_eq!(
            registry.counter_value("storage_writes_suppressed_total"),
            Some(1)
        );
        let quiet = s.read_since(&dc, &Pool::Observed, wm).unwrap();
        assert!(quiet.is_empty());
    }

    #[test]
    fn bounded_stale_cache_refreshes_via_delta() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        let registry = Registry::new();
        s.attach_obs(&registry);
        let rd = || {
            s.read(ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: Freshness::BoundedStale,
                entity: None,
                attribute: None,
            })
            .unwrap()
        };
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now()), row("dc1", "b", "1", c.now())],
        })
        .unwrap();
        assert_eq!(rd().len(), 2, "first read fills the cache in full");
        // Churn one row and delete another past the staleness bound.
        let b_key = row("dc1", "b", "1", c.now()).key();
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "2", c.now()), row("dc1", "c", "1", c.now())],
        })
        .unwrap();
        s.delete(Pool::Observed, vec![b_key]).unwrap();
        c.advance(SimDuration::from_mins(6));
        let rows = rd();
        assert_eq!(rows.len(), 2, "a (updated) and c; b deleted");
        let a = rows
            .iter()
            .find(|r| r.entity == EntityName::device("dc1", "a"))
            .unwrap();
        assert_eq!(a.value, Value::text("2"));
        assert_eq!(
            registry.counter_value("storage_cache_delta_refreshes_total"),
            Some(1),
            "second fill applied the changefeed to the held snapshot"
        );
    }

    #[test]
    fn filtered_uptodate_reads_do_not_copy_the_pool() {
        let c = clock();
        let s = svc(&c);
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push(row("dc1", &format!("dev-{i}"), "1", c.now()));
        }
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows,
        })
        .unwrap();
        let got = s
            .read(ReadRequest {
                datacenter: DatacenterId::new("dc1"),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: Some(EntityName::device("dc1", "dev-7")),
                attribute: None,
            })
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].entity, EntityName::device("dc1", "dev-7"));
    }

    #[test]
    fn read_since_fails_fast_when_partition_offline() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.set_partition_available(&dc, false);
        let err = s
            .read_since(&dc, &Pool::Observed, Version::GENESIS)
            .unwrap_err();
        assert!(matches!(err, StateError::StorageUnavailable { .. }));
    }

    fn framed_svc(clock: &SimClock) -> StorageService {
        let mut cfg = StorageConfig::default();
        cfg.ring.durability = DurabilityMode::FramedMemory;
        cfg.ring.snapshot_every = 4;
        StorageService::new([DatacenterId::new("dc1")], clock.clone(), cfg)
    }

    #[test]
    fn mid_recovery_partition_reports_retryable_unavailability() {
        let c = clock();
        let s = framed_svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        let pre = s.partition_watermark(&dc).unwrap();
        s.begin_replica_recovery(&dc, 2);
        // Every watermark/read/commit path reports the typed retryable
        // error — the partition never serves a stale pre-crash view.
        let err = s.partition_watermark(&dc).unwrap_err();
        assert!(matches!(err, StateError::StorageUnavailable { .. }));
        assert!(err.is_retryable());
        assert!(s
            .read(ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: None,
                attribute: None,
            })
            .is_err());
        assert!(s
            .read_since(&dc, &Pool::Observed, Version::GENESIS)
            .is_err());
        let summary = s.complete_replica_recovery(&dc, 2).expect("summary");
        assert_eq!(summary.partition, "dc1");
        assert_eq!(summary.replica, 2);
        assert!(s.partition_watermark(&dc).unwrap() >= pre);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "b", "1", c.now())],
        })
        .unwrap();
        assert_eq!(s.last_recovery().unwrap(), summary);
    }

    #[test]
    fn wal_counters_flow_through_attach_obs() {
        let c = clock();
        let s = framed_svc(&c);
        let dc = DatacenterId::new("dc1");
        let registry = Registry::new();
        s.attach_obs(&registry);
        for i in 0..8 {
            s.write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("dc1", &format!("dev-{i}"), "1", c.now())],
            })
            .unwrap();
        }
        assert!(registry.counter_value("wal_appends_total").unwrap_or(0) > 0);
        assert!(registry.counter_value("wal_bytes_written").unwrap_or(0) > 0);
        assert!(
            registry
                .counter_value("snapshot_compactions_total")
                .unwrap_or(0)
                > 0,
            "snapshot_every=4 compacts within 8 commits"
        );
        // A torn tail on a killed replica is repaired on restart and shows
        // up in the truncated-records counter.
        s.begin_replica_recovery(&dc, 1);
        s.corrupt_replica_wal(&dc, 1, &WalCorruption::TornTail { bytes: 5 });
        let summary = s.complete_replica_recovery(&dc, 1).expect("summary");
        assert_eq!(summary.truncated_records, 1);
        assert!(!summary.refused);
        // The diffing happens on ring-lock release; the counter reflects
        // the repair after the next lock cycle (already happened inside
        // complete_replica_recovery).
        assert_eq!(
            registry.counter_value("recovery_truncated_records_total"),
            Some(1)
        );
        assert!(s.verify_wal_chains(&dc).is_ok());
    }
}
