//! The storage service: per-DC rings, the global proxy, and freshness.
//!
//! Paper §6.1–§6.4. One [`PaxosCluster`] per datacenter stores the rows of
//! entities homed there; the service front end is the "globally available
//! proxy layer that provides uniform access to the network states" —
//! callers never name a ring, only entities. Reads take a [`Freshness`]:
//!
//! * `UpToDate` — served by the partition leader (linearizable with
//!   respect to commits through this service);
//! * `BoundedStale` — served from a per-partition cache refreshed from a
//!   follower replica no more often than the staleness bound (5 minutes in
//!   the paper), trading freshness for read throughput.

use crate::cluster::{ClusterConfig, PaxosCluster};
use crate::machine::LogCommand;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use statesman_obs::{Counter, Gauge, Registry};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, RetryPolicy,
    SimDuration, SimTime, StateDelta, StateError, StateKey, StateResult, VarId, Version,
    WriteReceipt,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Replicas per ring.
    pub replicas_per_ring: usize,
    /// Bounded-staleness window (paper: 5 minutes).
    pub staleness_bound: SimDuration,
    /// Seed for ring buses (each ring perturbs it by partition index).
    pub seed: u64,
    /// Base ring config (latency model etc.).
    pub ring: ClusterConfig,
    /// Bounded retry schedule for consensus commits: when a partition
    /// reports [`StateError::StorageUnavailable`], the proxy retries up
    /// to the policy's budget with jittered exponential backoff (in
    /// simulated time) before surfacing the typed error to the caller.
    pub retry: RetryPolicy,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            replicas_per_ring: 3,
            staleness_bound: SimDuration::from_mins(5),
            seed: 11,
            ring: ClusterConfig::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// A read request (the native form of Table 3's GET).
#[derive(Debug, Clone)]
pub struct ReadRequest {
    /// Which datacenter partition to read.
    pub datacenter: DatacenterId,
    /// Which pool.
    pub pool: Pool,
    /// Freshness mode.
    pub freshness: Freshness,
    /// Optional filter: only rows of this entity.
    pub entity: Option<EntityName>,
    /// Optional filter: only rows of this attribute.
    pub attribute: Option<Attribute>,
}

/// A write request (the native form of Table 3's POST).
#[derive(Debug, Clone)]
pub struct WriteRequest {
    /// Destination pool.
    pub pool: Pool,
    /// Rows to upsert (may span partitions; the proxy splits them).
    pub rows: Vec<NetworkState>,
}

/// Cached pool snapshot for bounded-stale reads. Rows are shared via
/// `Arc` so concurrent cache readers never copy under the lock. The
/// watermark records which pool version the snapshot reflects, so an
/// expired entry can be refreshed by applying a small delta to its own
/// rows instead of recopying the pool out of a replica.
struct CacheEntry {
    fetched_at: SimTime,
    watermark: Version,
    rows: Arc<Vec<NetworkState>>,
}

/// Cached metric handles for the storage service (created once at
/// [`StorageService::attach_obs`]; increments are lock-free).
#[derive(Clone)]
struct StorageObs {
    writes: Counter,
    rows_written: Counter,
    deletes: Counter,
    reads: Counter,
    leader_reads: Counter,
    cache_hits: Counter,
    retries: Counter,
    retries_exhausted: Counter,
    unavailable: Counter,
    receipts_posted: Counter,
    receipts_taken: Counter,
    partitions_offline: Gauge,
    delta_reads: Counter,
    full_fallbacks: Counter,
    writes_suppressed: Counter,
    cache_delta_refreshes: Counter,
}

impl StorageObs {
    fn new(registry: &Registry) -> Self {
        StorageObs {
            writes: registry.counter("storage_writes_total"),
            rows_written: registry.counter("storage_rows_written_total"),
            deletes: registry.counter("storage_deletes_total"),
            reads: registry.counter("storage_reads_total"),
            leader_reads: registry.counter("storage_leader_reads_total"),
            cache_hits: registry.counter("storage_cache_hits_total"),
            retries: registry.counter("storage_retries_total"),
            retries_exhausted: registry.counter("storage_retries_exhausted_total"),
            unavailable: registry.counter("storage_unavailable_errors_total"),
            receipts_posted: registry.counter("storage_receipts_posted_total"),
            receipts_taken: registry.counter("storage_receipts_taken_total"),
            partitions_offline: registry.gauge("storage_partitions_offline"),
            delta_reads: registry.counter("storage_delta_reads_total"),
            full_fallbacks: registry.counter("storage_full_fallbacks_total"),
            writes_suppressed: registry.counter("storage_writes_suppressed_total"),
            cache_delta_refreshes: registry.counter("storage_cache_delta_refreshes_total"),
        }
    }
}

struct Inner {
    partitions: HashMap<DatacenterId, PaxosCluster>,
    config: StorageConfig,
    /// Monotone counter of reads served by a leader.
    leader_reads: u64,
    /// Partitions taken wholesale offline by fault injection: operations
    /// against them fail fast with a retryable
    /// [`StateError::StorageUnavailable`] instead of grinding through
    /// consensus timeouts.
    offline: HashSet<DatacenterId>,
    /// Jitter source for retry backoff (seeded; deterministic per run).
    rng: StdRng,
    /// Retries performed across all operations (observability).
    retries: u64,
    /// Operations that exhausted their retry budget.
    retries_exhausted: u64,
    /// `read_since` requests served incrementally from the change index.
    delta_reads: u64,
    /// `read_since` requests that fell back to a full snapshot.
    full_fallbacks: u64,
    /// Value-identical rows suppressed at apply time (leader tally).
    writes_suppressed: u64,
}

impl Inner {
    /// Fail fast if `dc` is fault-injected offline.
    fn check_online(&self, dc: &DatacenterId) -> StateResult<()> {
        if self.offline.contains(dc) {
            Err(StateError::StorageUnavailable {
                partition: dc.to_string(),
                reason: "partition offline".into(),
            })
        } else {
            Ok(())
        }
    }
}

/// The partitioned, proxied storage service. Cheap to clone; all clones
/// share state.
#[derive(Clone)]
pub struct StorageService {
    inner: Arc<Mutex<Inner>>,
    /// Bounded-stale read cache, deliberately *outside* the partition
    /// lock: cache hits are concurrent reads that never contend with
    /// writes or leader reads — the architectural point of §6.4 (cache
    /// replicas scale out; leaders do not).
    cache: Arc<parking_lot::RwLock<HashMap<(DatacenterId, Pool), CacheEntry>>>,
    cache_hits: Arc<std::sync::atomic::AtomicU64>,
    clock: statesman_net::SimClock,
    /// Metric handles, attached at most once via
    /// [`StorageService::attach_obs`]. Outside the partition lock so the
    /// bounded-stale cache-hit path can record without contending.
    obs: Arc<std::sync::OnceLock<StorageObs>>,
}

impl StorageService {
    /// Build a service with rings for the given datacenters (plus the WAN
    /// pseudo-datacenter, which is always present).
    pub fn new(
        datacenters: impl IntoIterator<Item = DatacenterId>,
        clock: statesman_net::SimClock,
        config: StorageConfig,
    ) -> Self {
        let mut partitions = HashMap::new();
        let mut idx = 0u64;
        for dc in datacenters {
            let mut rc = config.ring.clone();
            rc.replicas = config.replicas_per_ring;
            rc.seed = config.seed.wrapping_add(idx);
            idx += 1;
            partitions.insert(dc, PaxosCluster::new(rc));
        }
        let wan = DatacenterId::wan();
        partitions.entry(wan).or_insert_with(|| {
            let mut rc = config.ring.clone();
            rc.replicas = config.replicas_per_ring;
            rc.seed = config.seed.wrapping_add(idx);
            PaxosCluster::new(rc)
        });
        let rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        StorageService {
            inner: Arc::new(Mutex::new(Inner {
                partitions,
                config,
                leader_reads: 0,
                offline: HashSet::new(),
                rng,
                retries: 0,
                retries_exhausted: 0,
                delta_reads: 0,
                full_fallbacks: 0,
                writes_suppressed: 0,
            })),
            cache: Arc::new(parking_lot::RwLock::new(HashMap::new())),
            cache_hits: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            clock,
            obs: Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// Attach a metrics registry. Handles are created once and shared by
    /// every clone of this service; a second attach is a no-op (the
    /// registry is process-wide plumbing, not per-call state).
    pub fn attach_obs(&self, registry: &Registry) {
        let _ = self.obs.set(StorageObs::new(registry));
    }

    fn obs(&self) -> Option<&StorageObs> {
        self.obs.get()
    }

    /// The simulated clock this service stamps against.
    pub fn clock(&self) -> &statesman_net::SimClock {
        &self.clock
    }

    /// Convenience: a single-DC service with default config.
    pub fn single_dc(dc: impl Into<DatacenterId>, clock: statesman_net::SimClock) -> Self {
        StorageService::new([dc.into()], clock, StorageConfig::default())
    }

    /// The partition (datacenter) names, sorted.
    pub fn partitions(&self) -> Vec<DatacenterId> {
        let inner = self.inner.lock();
        let mut v: Vec<DatacenterId> = inner.partitions.keys().cloned().collect();
        v.sort();
        v
    }

    /// Proxy routing: the partition owning an entity (its home DC).
    /// Errors if no ring exists for that DC.
    pub fn route(&self, entity: &EntityName) -> StateResult<DatacenterId> {
        let inner = self.inner.lock();
        if inner.partitions.contains_key(&entity.datacenter) {
            Ok(entity.datacenter.clone())
        } else {
            Err(StateError::UnroutableEntity {
                entity: entity.clone(),
            })
        }
    }

    /// Write rows (the proxy splits the batch by partition; each partition
    /// gets one consensus commit).
    pub fn write(&self, req: WriteRequest) -> StateResult<()> {
        if let Some(o) = self.obs() {
            o.writes.inc();
            o.rows_written.add(req.rows.len() as u64);
        }
        let mut by_dc: HashMap<DatacenterId, Vec<NetworkState>> = HashMap::new();
        for row in req.rows {
            if !row.is_well_formed() {
                return Err(StateError::invalid(format!("malformed row {row}")));
            }
            by_dc
                .entry(row.entity.datacenter.clone())
                .or_default()
                .push(row);
        }
        let mut inner = self.inner.lock();
        // Deterministic partition order.
        let mut dcs: Vec<DatacenterId> = by_dc.keys().cloned().collect();
        dcs.sort();
        for dc in dcs {
            let rows = by_dc.remove(&dc).expect("key exists");
            if !inner.partitions.contains_key(&dc) {
                return Err(StateError::UnroutableEntity {
                    entity: rows[0].entity.clone(),
                });
            }
            let before = leader_suppressed(&mut inner, &dc);
            submit_with_retry(
                &mut inner,
                &self.clock,
                &dc,
                LogCommand::WriteBatch {
                    pool: req.pool.clone(),
                    rows,
                },
                self.obs(),
            )?;
            let suppressed = leader_suppressed(&mut inner, &dc).saturating_sub(before);
            if suppressed > 0 {
                inner.writes_suppressed += suppressed;
                if let Some(o) = self.obs() {
                    o.writes_suppressed.add(suppressed);
                }
            }
        }
        Ok(())
    }

    /// Delete keys from a pool (split by partition like writes).
    pub fn delete(&self, pool: Pool, keys: Vec<StateKey>) -> StateResult<()> {
        if let Some(o) = self.obs() {
            o.deletes.inc();
        }
        let mut by_dc: HashMap<DatacenterId, Vec<StateKey>> = HashMap::new();
        for k in keys {
            by_dc
                .entry(k.entity.datacenter.clone())
                .or_default()
                .push(k);
        }
        let mut inner = self.inner.lock();
        let mut dcs: Vec<DatacenterId> = by_dc.keys().cloned().collect();
        dcs.sort();
        for dc in dcs {
            let keys = by_dc.remove(&dc).expect("key exists");
            if !inner.partitions.contains_key(&dc) {
                return Err(StateError::UnroutableEntity {
                    entity: keys[0].entity.clone(),
                });
            }
            submit_with_retry(
                &mut inner,
                &self.clock,
                &dc,
                LogCommand::DeleteBatch {
                    pool: pool.clone(),
                    keys,
                },
                self.obs(),
            )?;
        }
        Ok(())
    }

    /// Read rows per the request's freshness mode.
    pub fn read(&self, req: ReadRequest) -> StateResult<Vec<NetworkState>> {
        if let Some(o) = self.obs() {
            o.reads.inc();
        }
        let now = self.clock.now();
        let matches = |r: &NetworkState| {
            req.entity.as_ref().map(|e| &r.entity == e).unwrap_or(true)
                && req.attribute.map(|a| r.attribute == a).unwrap_or(true)
        };
        let rows: Arc<Vec<NetworkState>> = match req.freshness {
            Freshness::UpToDate => {
                let mut inner = self.inner.lock();
                inner.check_online(&req.datacenter)?;
                inner.leader_reads += 1;
                if let Some(o) = self.obs() {
                    o.leader_reads.inc();
                }
                let ring = inner.partitions.get_mut(&req.datacenter).ok_or_else(|| {
                    StateError::StorageUnavailable {
                        partition: req.datacenter.to_string(),
                        reason: "unknown partition".into(),
                    }
                })?;
                let machine = ring.leader_machine()?;
                if req.entity.is_some() || req.attribute.is_some() {
                    // Filter before cloning: a single-entity read copies
                    // its handful of rows, not the whole pool.
                    return Ok(machine.pool_rows_where(&req.pool, matches));
                }
                // Full-pool leader read: hand the copy straight back
                // rather than re-cloning every row through the no-op
                // filter below (full scans pay this per round).
                return Ok(machine.pool_rows(&req.pool));
            }
            Freshness::BoundedStale => {
                let key = (req.datacenter.clone(), req.pool.clone());
                let bound = { self.inner.lock().config.staleness_bound };
                // Fast path: a shared read lock and an Arc clone — no
                // partition contention, no row copies.
                let hit = {
                    let cache = self.cache.read();
                    cache.get(&key).and_then(|c| {
                        (now.saturating_since(c.fetched_at) <= bound).then(|| Arc::clone(&c.rows))
                    })
                };
                match hit {
                    Some(rows) => {
                        self.cache_hits
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if let Some(o) = self.obs() {
                            o.cache_hits.inc();
                        }
                        rows
                    }
                    None => {
                        // The expired snapshot (if any) seeds a delta
                        // refresh: apply the changefeed since its
                        // watermark instead of recopying the pool.
                        let prior = {
                            let cache = self.cache.read();
                            cache.get(&key).map(|c| (Arc::clone(&c.rows), c.watermark))
                        };
                        self.refresh_cache_entry(&req, now, key, prior)?
                    }
                }
            }
        };
        Ok(rows.iter().filter(|r| matches(r)).cloned().collect())
    }

    /// Refresh one bounded-stale cache entry from a (possibly behind)
    /// replica: extract the small delta under the partition lock, apply
    /// it to the held snapshot *outside* the lock, fall back to a full
    /// pool copy when the changefeed cannot serve the gap. (Refreshes
    /// check partition health: cache *hits* deliberately skip the online
    /// check so bounded-stale reads ride out outages within the bound.)
    fn refresh_cache_entry(
        &self,
        req: &ReadRequest,
        now: SimTime,
        key: (DatacenterId, Pool),
        prior: Option<(Arc<Vec<NetworkState>>, Version)>,
    ) -> StateResult<Arc<Vec<NetworkState>>> {
        enum Refresh {
            Delta(Arc<Vec<NetworkState>>, StateDelta),
            Full(Vec<NetworkState>, Version),
        }
        let refresh = {
            let mut inner = self.inner.lock();
            inner.check_online(&req.datacenter)?;
            let ring = inner.partitions.get_mut(&req.datacenter).ok_or_else(|| {
                StateError::StorageUnavailable {
                    partition: req.datacenter.to_string(),
                    reason: "unknown partition".into(),
                }
            })?;
            // A follower replica: cheap, and possibly behind the leader —
            // both forms of staleness the 5-minute bound covers.
            let machine = ring.any_machine();
            let delta = prior.and_then(|(rows, since)| {
                machine
                    .changes_since(&req.pool, since)
                    .filter(|d| !d.snapshot)
                    .map(|d| (rows, d))
            });
            match delta {
                Some((rows, delta)) => Refresh::Delta(rows, delta),
                None => Refresh::Full(
                    machine.pool_rows(&req.pool),
                    machine.pool_watermark(&req.pool),
                ),
            }
        };
        let (rows, watermark) = match refresh {
            Refresh::Delta(old, delta) => {
                if let Some(o) = self.obs() {
                    o.cache_delta_refreshes.inc();
                }
                let watermark = delta.watermark;
                let mut map: HashMap<VarId, NetworkState> =
                    old.iter().map(|r| (r.var_id(), r.clone())).collect();
                for k in &delta.deletes {
                    map.remove(&k.var_id());
                }
                for r in delta.upserts {
                    map.insert(r.var_id(), r);
                }
                (Arc::new(map.into_values().collect()), watermark)
            }
            Refresh::Full(rows, watermark) => (Arc::new(rows), watermark),
        };
        self.cache.write().insert(
            key,
            CacheEntry {
                fetched_at: now,
                watermark,
                rows: Arc::clone(&rows),
            },
        );
        Ok(rows)
    }

    /// Read one row up-to-date (checker fast path).
    pub fn read_row(&self, pool: &Pool, key: &StateKey) -> StateResult<Option<NetworkState>> {
        let mut inner = self.inner.lock();
        inner.check_online(&key.entity.datacenter)?;
        inner.leader_reads += 1;
        if let Some(o) = self.obs() {
            o.leader_reads.inc();
        }
        let ring = inner
            .partitions
            .get_mut(&key.entity.datacenter)
            .ok_or_else(|| StateError::UnroutableEntity {
                entity: key.entity.clone(),
            })?;
        Ok(ring.leader_machine()?.get(pool, key).cloned())
    }

    /// Post checker receipts to the partition holding the affected
    /// entities (receipts are stored per application).
    pub fn post_receipts(&self, dc: &DatacenterId, receipts: Vec<WriteReceipt>) -> StateResult<()> {
        if receipts.is_empty() {
            return Ok(());
        }
        if let Some(o) = self.obs() {
            o.receipts_posted.add(receipts.len() as u64);
        }
        let mut inner = self.inner.lock();
        if !inner.partitions.contains_key(dc) {
            return Err(StateError::StorageUnavailable {
                partition: dc.to_string(),
                reason: "unknown partition".into(),
            });
        }
        submit_with_retry(
            &mut inner,
            &self.clock,
            dc,
            LogCommand::PostReceipts { receipts },
            self.obs(),
        )
    }

    /// Drain the receipts queued for an application in one partition.
    pub fn take_receipts(&self, dc: &DatacenterId, app: &AppId) -> StateResult<Vec<WriteReceipt>> {
        let mut inner = self.inner.lock();
        inner.check_online(dc)?;
        let ring = inner
            .partitions
            .get_mut(dc)
            .ok_or_else(|| StateError::StorageUnavailable {
                partition: dc.to_string(),
                reason: "unknown partition".into(),
            })?;
        let receipts = ring.leader_machine_mut()?.take_receipts(app);
        if let Some(o) = self.obs() {
            o.receipts_taken.add(receipts.len() as u64);
        }
        Ok(receipts)
    }

    /// Total rows across all partitions and pools (scale reporting).
    pub fn total_rows(&self) -> usize {
        let mut inner = self.inner.lock();
        let dcs: Vec<DatacenterId> = inner.partitions.keys().cloned().collect();
        let mut total = 0;
        for dc in dcs {
            let ring = inner.partitions.get_mut(&dc).expect("key exists");
            if let Ok(m) = ring.leader_machine() {
                total += m.pool_len(&Pool::Observed) + m.pool_len(&Pool::Target);
            }
        }
        total
    }

    /// Applications with a non-empty proposed state in one partition.
    pub fn proposing_apps(&self, dc: &DatacenterId) -> Vec<AppId> {
        let mut inner = self.inner.lock();
        match inner.partitions.get_mut(dc) {
            Some(ring) => match ring.leader_machine() {
                Ok(m) => m
                    .pools()
                    .into_iter()
                    .filter_map(|p| match p {
                        Pool::Proposed(app) => Some(app),
                        _ => None,
                    })
                    .collect(),
                Err(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Rows in one pool of one partition.
    pub fn pool_len(&self, dc: &DatacenterId, pool: &Pool) -> usize {
        let mut inner = self.inner.lock();
        match inner.partitions.get_mut(dc) {
            Some(ring) => ring.leader_machine().map(|m| m.pool_len(pool)).unwrap_or(0),
            None => 0,
        }
    }

    /// (cache_hits, leader_reads) counters for the freshness bench.
    pub fn read_stats(&self) -> (u64, u64) {
        let hits = self.cache_hits.load(std::sync::atomic::Ordering::Relaxed);
        let inner = self.inner.lock();
        (hits, inner.leader_reads)
    }

    /// Mean consensus commit latency per partition, µs.
    pub fn commit_latency_by_partition(&self) -> Vec<(DatacenterId, f64)> {
        let inner = self.inner.lock();
        let mut v: Vec<(DatacenterId, f64)> = inner
            .partitions
            .iter()
            .map(|(dc, ring)| (dc.clone(), ring.mean_commit_latency()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Crash a replica in one partition (failure injection for tests).
    pub fn crash_replica(&self, dc: &DatacenterId, replica: u8) {
        let mut inner = self.inner.lock();
        if let Some(ring) = inner.partitions.get_mut(dc) {
            ring.crash(crate::bus::ReplicaId(replica));
        }
    }

    /// Restart a crashed replica.
    pub fn restart_replica(&self, dc: &DatacenterId, replica: u8) {
        let mut inner = self.inner.lock();
        if let Some(ring) = inner.partitions.get_mut(dc) {
            ring.restart(crate::bus::ReplicaId(replica));
        }
    }

    /// Take a whole partition offline (or bring it back): failure
    /// injection for degraded-mode and chaos scenarios. While offline,
    /// commits and leader reads against the partition fail fast with a
    /// retryable [`StateError::StorageUnavailable`]; bounded-stale reads
    /// keep serving cached snapshots within the staleness bound.
    pub fn set_partition_available(&self, dc: &DatacenterId, available: bool) {
        let mut inner = self.inner.lock();
        if available {
            inner.offline.remove(dc);
        } else {
            inner.offline.insert(dc.clone());
        }
        if let Some(o) = self.obs() {
            o.partitions_offline.set(inner.offline.len() as i64);
        }
    }

    /// Whether a partition is currently available (not fault-injected
    /// offline). The coordinator polls this to decide which impact
    /// groups a degraded round can still process.
    pub fn partition_available(&self, dc: &DatacenterId) -> bool {
        let inner = self.inner.lock();
        !inner.offline.contains(dc) && inner.partitions.contains_key(dc)
    }

    /// (retries performed, operations that exhausted their retry budget).
    pub fn retry_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.retries, inner.retries_exhausted)
    }

    /// Everything that changed in one partition's pool after `since`
    /// (Table 3's GET with a version cursor). Served by the leader so the
    /// watermark in the reply is linearizable with respect to commits
    /// through this service. When the change index cannot serve the gap —
    /// `since` predates the compaction floor or outruns the watermark —
    /// the reply degrades to a full snapshot (`snapshot: true`): the
    /// paper's semantics are always recoverable, deltas are only an
    /// optimization.
    pub fn read_since(
        &self,
        dc: &DatacenterId,
        pool: &Pool,
        since: Version,
    ) -> StateResult<StateDelta> {
        if let Some(o) = self.obs() {
            o.reads.inc();
            o.leader_reads.inc();
        }
        let mut inner = self.inner.lock();
        inner.check_online(dc)?;
        inner.leader_reads += 1;
        let ring = inner
            .partitions
            .get_mut(dc)
            .ok_or_else(|| StateError::StorageUnavailable {
                partition: dc.to_string(),
                reason: "unknown partition".into(),
            })?;
        let machine = ring.leader_machine()?;
        match machine.changes_since(pool, since) {
            Some(delta) => {
                inner.delta_reads += 1;
                if let Some(o) = self.obs() {
                    o.delta_reads.inc();
                }
                Ok(delta)
            }
            None => {
                let delta = StateDelta::full_snapshot(
                    machine.pool_rows(pool),
                    machine.pool_watermark(pool),
                );
                inner.full_fallbacks += 1;
                if let Some(o) = self.obs() {
                    o.full_fallbacks.inc();
                }
                Ok(delta)
            }
        }
    }

    /// The leader's current watermark for one partition's pool: the
    /// version of its newest effective change. `read_since` from this
    /// point returns an empty delta until something actually changes.
    pub fn pool_watermark(&self, dc: &DatacenterId, pool: &Pool) -> StateResult<Version> {
        let mut inner = self.inner.lock();
        inner.check_online(dc)?;
        let ring = inner
            .partitions
            .get_mut(dc)
            .ok_or_else(|| StateError::StorageUnavailable {
                partition: dc.to_string(),
                reason: "unknown partition".into(),
            })?;
        Ok(ring.leader_machine()?.pool_watermark(pool))
    }

    /// The leader's current version counter for one partition, across
    /// *all* pools (versions are stamped machine-wide). Any effective
    /// write to any pool moves it, so an unchanged partition watermark
    /// proves the partition's entire state is unchanged — consumers use
    /// it as a cheap quiescence signal before paying for reads.
    pub fn partition_watermark(&self, dc: &DatacenterId) -> StateResult<Version> {
        let mut inner = self.inner.lock();
        inner.check_online(dc)?;
        let ring = inner
            .partitions
            .get_mut(dc)
            .ok_or_else(|| StateError::StorageUnavailable {
                partition: dc.to_string(),
                reason: "unknown partition".into(),
            })?;
        Ok(ring.leader_machine()?.current_version())
    }

    /// (delta reads served, full-snapshot fallbacks, writes suppressed) —
    /// cumulative, for `RoundReport` and benches.
    pub fn delta_stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (
            inner.delta_reads,
            inner.full_fallbacks,
            inner.writes_suppressed,
        )
    }
}

/// Cumulative value-identical writes suppressed by `dc`'s leader (0 when
/// no leader is reachable — callers diff before/after the same commit, so
/// a mid-write leader change at worst undercounts).
fn leader_suppressed(inner: &mut Inner, dc: &DatacenterId) -> u64 {
    inner
        .partitions
        .get_mut(dc)
        .and_then(|ring| ring.leader_machine().ok())
        .map(|m| m.suppressed_count())
        .unwrap_or(0)
}

/// Submit one consensus command with the configured bounded retry and
/// jittered exponential backoff. Backoffs advance *simulated* time, so
/// retry cost is visible in round latency without wall-clock stalls.
/// Fatal (non-retryable) errors and exhausted budgets surface the typed
/// error to the caller — nothing blocks indefinitely.
fn submit_with_retry(
    inner: &mut Inner,
    clock: &statesman_net::SimClock,
    dc: &DatacenterId,
    cmd: LogCommand,
    obs: Option<&StorageObs>,
) -> StateResult<()> {
    let policy = inner.config.retry.clone();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let res = inner.check_online(dc).and_then(|()| {
            let ring =
                inner
                    .partitions
                    .get_mut(dc)
                    .ok_or_else(|| StateError::StorageUnavailable {
                        partition: dc.to_string(),
                        reason: "unknown partition".into(),
                    })?;
            ring.submit(cmd.clone()).map(|_| ())
        });
        match res {
            Ok(()) => return Ok(()),
            Err(e) if e.is_retryable() && policy.should_retry(attempt) => {
                inner.retries += 1;
                if let Some(o) = obs {
                    o.retries.inc();
                }
                let roll: f64 = inner.rng.gen();
                clock.advance(policy.backoff_after(attempt, roll));
            }
            Err(e) => {
                if e.is_retryable() {
                    inner.retries_exhausted += 1;
                    if let Some(o) = obs {
                        o.retries_exhausted.inc();
                        o.unavailable.inc();
                    }
                }
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_net::SimClock;
    use statesman_types::Value;

    fn clock() -> SimClock {
        SimClock::new()
    }

    fn row(dc: &str, dev: &str, fw: &str, at: SimTime) -> NetworkState {
        NetworkState::new(
            EntityName::device(dc, dev),
            Attribute::DeviceFirmwareVersion,
            Value::text(fw),
            at,
            AppId::monitor(),
        )
    }

    fn svc(clock: &SimClock) -> StorageService {
        StorageService::new(
            [DatacenterId::new("dc1"), DatacenterId::new("dc2")],
            clock.clone(),
            StorageConfig::default(),
        )
    }

    #[test]
    fn write_then_uptodate_read() {
        let c = clock();
        let s = svc(&c);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "agg-1-1", "6.0", c.now())],
        })
        .unwrap();
        let rows = s
            .read(ReadRequest {
                datacenter: DatacenterId::new("dc1"),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: None,
                attribute: None,
            })
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, Value::text("6.0"));
    }

    #[test]
    fn proxy_splits_batches_across_partitions() {
        let c = clock();
        let s = svc(&c);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![
                row("dc1", "agg-1-1", "6.0", c.now()),
                row("dc2", "agg-1-1", "6.0", c.now()),
            ],
        })
        .unwrap();
        assert_eq!(s.pool_len(&DatacenterId::new("dc1"), &Pool::Observed), 1);
        assert_eq!(s.pool_len(&DatacenterId::new("dc2"), &Pool::Observed), 1);
    }

    #[test]
    fn unroutable_entities_error() {
        let c = clock();
        let s = svc(&c);
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("dc9", "agg-1-1", "6.0", c.now())],
            })
            .unwrap_err();
        assert!(matches!(err, StateError::UnroutableEntity { .. }));
        assert!(s.route(&EntityName::device("dc9", "x")).is_err());
        assert!(s.route(&EntityName::device("dc1", "x")).is_ok());
    }

    #[test]
    fn wan_partition_always_exists() {
        let c = clock();
        let s = svc(&c);
        assert!(s.partitions().contains(&DatacenterId::wan()));
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("wan", "br-1", "9.0", c.now())],
        })
        .unwrap();
    }

    #[test]
    fn bounded_stale_reads_hit_cache_within_bound() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        let rd = |s: &StorageService| {
            s.read(ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: Freshness::BoundedStale,
                entity: None,
                attribute: None,
            })
            .unwrap()
        };
        let first = rd(&s);
        assert_eq!(first.len(), 1);
        // A write lands, but the cache (within the bound) still serves the
        // old snapshot.
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "b", "1", c.now())],
        })
        .unwrap();
        let second = rd(&s);
        assert_eq!(second.len(), 1, "stale view within bound");
        let (hits, _) = s.read_stats();
        assert_eq!(hits, 1);
        // After the bound passes, the cache refreshes.
        c.advance(SimDuration::from_mins(6));
        let third = rd(&s);
        assert_eq!(third.len(), 2);
    }

    #[test]
    fn uptodate_reads_never_use_cache() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        for _ in 0..3 {
            s.read(ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: None,
                attribute: None,
            })
            .unwrap();
        }
        let (hits, leader_reads) = s.read_stats();
        assert_eq!(hits, 0);
        assert_eq!(leader_reads, 3);
    }

    #[test]
    fn filters_by_entity_and_attribute() {
        let c = clock();
        let s = svc(&c);
        let mut lock_row = NetworkState::new(
            EntityName::device("dc1", "a"),
            Attribute::EntityLock,
            Value::None,
            c.now(),
            AppId::new("te"),
        );
        lock_row.value = Value::None;
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now()), lock_row],
        })
        .unwrap();
        let rows = s
            .read(ReadRequest {
                datacenter: DatacenterId::new("dc1"),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: Some(EntityName::device("dc1", "a")),
                attribute: Some(Attribute::DeviceFirmwareVersion),
            })
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].attribute, Attribute::DeviceFirmwareVersion);
    }

    #[test]
    fn receipts_round_trip() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        let app = AppId::new("upgrade");
        let receipt = WriteReceipt {
            app: app.clone(),
            key: StateKey::new(
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceFirmwareVersion,
            ),
            proposed: Value::text("7.0"),
            outcome: statesman_types::WriteOutcome::Accepted,
            decided_at: c.now(),
        };
        s.post_receipts(&dc, vec![receipt.clone()]).unwrap();
        assert_eq!(s.take_receipts(&dc, &app).unwrap(), vec![receipt]);
        assert!(s.take_receipts(&dc, &app).unwrap().is_empty());
    }

    #[test]
    fn malformed_rows_rejected() {
        let c = clock();
        let s = svc(&c);
        let bad = NetworkState::new(
            EntityName::link("dc1", "a", "b"),
            Attribute::DeviceFirmwareVersion, // device attr on a link
            Value::text("x"),
            c.now(),
            AppId::monitor(),
        );
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![bad],
            })
            .unwrap_err();
        assert!(matches!(err, StateError::InvalidRequest { .. }));
    }

    #[test]
    fn survives_replica_crash() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.crash_replica(&dc, 0);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        assert_eq!(s.pool_len(&dc, &Pool::Observed), 1);
        s.restart_replica(&dc, 0);
    }

    #[test]
    fn offline_partition_fails_fast_with_retryable_error() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.set_partition_available(&dc, false);
        assert!(!s.partition_available(&dc));
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("dc1", "a", "1", c.now())],
            })
            .unwrap_err();
        assert!(matches!(err, StateError::StorageUnavailable { .. }));
        assert!(err.is_retryable(), "partition outage must be retryable");
        // The other partition is unaffected.
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc2", "a", "1", c.now())],
        })
        .unwrap();

        // Back online: the same write now lands.
        s.set_partition_available(&dc, true);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        assert_eq!(s.pool_len(&dc, &Pool::Observed), 1);
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        let c = clock();
        let cfg = StorageConfig {
            retry: statesman_types::RetryPolicy {
                max_attempts: 3,
                base_backoff: SimDuration::from_millis(100),
                max_backoff: SimDuration::from_secs(1),
                jitter_frac: 0.5,
            },
            ..Default::default()
        };
        let s = StorageService::new([DatacenterId::new("dc1")], c.clone(), cfg.clone());
        let dc = DatacenterId::new("dc1");
        s.set_partition_available(&dc, false);
        let before = c.now();
        let err = s
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("dc1", "a", "1", c.now())],
            })
            .unwrap_err();
        assert!(matches!(err, StateError::StorageUnavailable { .. }));
        let (retries, exhausted) = s.retry_stats();
        assert_eq!(retries, 2, "max_attempts 3 = 2 retries");
        assert_eq!(exhausted, 1);
        // Backoff consumed simulated time, but no more than the policy's
        // provable worst case.
        let spent = c.now().saturating_since(before);
        assert!(spent > SimDuration::ZERO, "backoff advances sim time");
        assert!(
            spent <= cfg.retry.worst_case_total_backoff(),
            "{spent} exceeds bound {}",
            cfg.retry.worst_case_total_backoff()
        );
    }

    #[test]
    fn bounded_stale_reads_survive_partition_outage_within_bound() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        let rd = |fresh: Freshness| {
            s.read(ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: fresh,
                entity: None,
                attribute: None,
            })
        };
        // Warm the cache, then take the partition down.
        assert_eq!(rd(Freshness::BoundedStale).unwrap().len(), 1);
        s.set_partition_available(&dc, false);
        // Leader reads fail fast; stale reads ride the cache.
        assert!(rd(Freshness::UpToDate).is_err());
        assert_eq!(rd(Freshness::BoundedStale).unwrap().len(), 1);
        // Past the staleness bound the cache expires and the outage shows.
        c.advance(SimDuration::from_mins(6));
        assert!(rd(Freshness::BoundedStale).is_err());
    }

    #[test]
    fn delete_clears_rows() {
        let c = clock();
        let s = svc(&c);
        let r = row("dc1", "a", "1", c.now());
        let key = r.key();
        s.write(WriteRequest {
            pool: Pool::Target,
            rows: vec![r],
        })
        .unwrap();
        s.delete(Pool::Target, vec![key.clone()]).unwrap();
        assert_eq!(s.read_row(&Pool::Target, &key).unwrap(), None);
    }

    #[test]
    fn attached_registry_tracks_operations() {
        let c = clock();
        let s = svc(&c);
        let registry = Registry::new();
        s.attach_obs(&registry);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now()), row("dc1", "b", "1", c.now())],
        })
        .unwrap();
        s.read(ReadRequest {
            datacenter: dc.clone(),
            pool: Pool::Observed,
            freshness: Freshness::BoundedStale,
            entity: None,
            attribute: None,
        })
        .unwrap();
        // Second bounded-stale read hits the cache.
        s.read(ReadRequest {
            datacenter: dc.clone(),
            pool: Pool::Observed,
            freshness: Freshness::BoundedStale,
            entity: None,
            attribute: None,
        })
        .unwrap();
        s.set_partition_available(&dc, false);
        // Write against the offline partition burns the retry budget.
        let _ = s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "c", "1", c.now())],
        });
        assert_eq!(registry.counter_value("storage_writes_total"), Some(2));
        assert_eq!(
            registry.counter_value("storage_rows_written_total"),
            Some(3)
        );
        assert_eq!(registry.counter_value("storage_reads_total"), Some(2));
        assert_eq!(registry.counter_value("storage_cache_hits_total"), Some(1));
        let (retries, exhausted) = s.retry_stats();
        assert_eq!(
            registry.counter_value("storage_retries_total"),
            Some(retries),
            "registry mirrors the internal retry counter"
        );
        assert_eq!(
            registry.counter_value("storage_retries_exhausted_total"),
            Some(exhausted)
        );
        assert_eq!(
            registry.gauge("storage_partitions_offline").get(),
            1,
            "offline gauge follows fault injection"
        );
        s.set_partition_available(&dc, true);
        assert_eq!(registry.gauge("storage_partitions_offline").get(), 0);
    }

    #[test]
    fn read_since_returns_incremental_deltas() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        let wm0 = s.pool_watermark(&dc, &Pool::Observed).unwrap();
        assert!(wm0 > Version::GENESIS);
        // Nothing changed: empty delta at the same watermark.
        let quiet = s.read_since(&dc, &Pool::Observed, wm0).unwrap();
        assert!(quiet.is_empty() && !quiet.snapshot);
        assert_eq!(quiet.watermark, wm0);
        // One new row and one delete show up as exactly that.
        let r = row("dc1", "b", "2", c.now());
        let a_key = row("dc1", "a", "1", c.now()).key();
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![r.clone()],
        })
        .unwrap();
        s.delete(Pool::Observed, vec![a_key.clone()]).unwrap();
        let delta = s.read_since(&dc, &Pool::Observed, wm0).unwrap();
        assert!(!delta.snapshot);
        assert_eq!(delta.upserts.len(), 1);
        assert_eq!(delta.upserts[0].key(), r.key());
        assert_eq!(delta.deletes, vec![a_key]);
        assert!(delta.watermark > wm0);
        let (delta_reads, full_fallbacks, _) = s.delta_stats();
        assert_eq!((delta_reads, full_fallbacks), (2, 0));
    }

    #[test]
    fn read_since_from_genesis_of_fresh_pool_is_full_snapshotless_delta() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now()), row("dc1", "b", "1", c.now())],
        })
        .unwrap();
        // GENESIS is at the floor of an uncompacted index, so even a
        // cold start is served incrementally.
        let delta = s
            .read_since(&dc, &Pool::Observed, Version::GENESIS)
            .unwrap();
        assert!(!delta.snapshot);
        assert_eq!(delta.upserts.len(), 2);
    }

    #[test]
    fn suppressed_writes_move_no_watermark_and_are_counted() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        let registry = Registry::new();
        s.attach_obs(&registry);
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        let wm = s.pool_watermark(&dc, &Pool::Observed).unwrap();
        // Same value, same writer, later timestamp: a complete no-op.
        c.advance(SimDuration::from_secs(30));
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now())],
        })
        .unwrap();
        assert_eq!(s.pool_watermark(&dc, &Pool::Observed).unwrap(), wm);
        let (_, _, suppressed) = s.delta_stats();
        assert_eq!(suppressed, 1);
        assert_eq!(
            registry.counter_value("storage_writes_suppressed_total"),
            Some(1)
        );
        let quiet = s.read_since(&dc, &Pool::Observed, wm).unwrap();
        assert!(quiet.is_empty());
    }

    #[test]
    fn bounded_stale_cache_refreshes_via_delta() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        let registry = Registry::new();
        s.attach_obs(&registry);
        let rd = || {
            s.read(ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: Freshness::BoundedStale,
                entity: None,
                attribute: None,
            })
            .unwrap()
        };
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "1", c.now()), row("dc1", "b", "1", c.now())],
        })
        .unwrap();
        assert_eq!(rd().len(), 2, "first read fills the cache in full");
        // Churn one row and delete another past the staleness bound.
        let b_key = row("dc1", "b", "1", c.now()).key();
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows: vec![row("dc1", "a", "2", c.now()), row("dc1", "c", "1", c.now())],
        })
        .unwrap();
        s.delete(Pool::Observed, vec![b_key]).unwrap();
        c.advance(SimDuration::from_mins(6));
        let rows = rd();
        assert_eq!(rows.len(), 2, "a (updated) and c; b deleted");
        let a = rows
            .iter()
            .find(|r| r.entity == EntityName::device("dc1", "a"))
            .unwrap();
        assert_eq!(a.value, Value::text("2"));
        assert_eq!(
            registry.counter_value("storage_cache_delta_refreshes_total"),
            Some(1),
            "second fill applied the changefeed to the held snapshot"
        );
    }

    #[test]
    fn filtered_uptodate_reads_do_not_copy_the_pool() {
        let c = clock();
        let s = svc(&c);
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push(row("dc1", &format!("dev-{i}"), "1", c.now()));
        }
        s.write(WriteRequest {
            pool: Pool::Observed,
            rows,
        })
        .unwrap();
        let got = s
            .read(ReadRequest {
                datacenter: DatacenterId::new("dc1"),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: Some(EntityName::device("dc1", "dev-7")),
                attribute: None,
            })
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].entity, EntityName::device("dc1", "dev-7"));
    }

    #[test]
    fn read_since_fails_fast_when_partition_offline() {
        let c = clock();
        let s = svc(&c);
        let dc = DatacenterId::new("dc1");
        s.set_partition_available(&dc, false);
        let err = s
            .read_since(&dc, &Pool::Observed, Version::GENESIS)
            .unwrap_err();
        assert!(matches!(err, StateError::StorageUnavailable { .. }));
    }
}
