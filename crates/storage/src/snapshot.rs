//! Durable pool-state snapshots for WAL compaction.
//!
//! A [`Snapshot`] captures everything a replica needs below a committed
//! decree boundary: the materialized [`StateMachine`] image, the apply
//! frontier, and the acceptor's promised ballot *at compaction time* (a
//! promise made after the previous snapshot would otherwise be lost when
//! the log prefix holding its `Promise` record is truncated).
//!
//! Snapshots come in two shapes, matched to the WAL backend
//! ([`crate::wal::DurabilityMode`]):
//!
//! * **live** — a structural clone of the machine, used by the in-memory
//!   logical backend so the default (bench-comparable) path never pays
//!   for serialization;
//! * **encoded** — a canonical [`MachineSnapshot`] serialized to bytes,
//!   used by the framed backends, where the snapshot payload also anchors
//!   the WAL's hash chain ([`crate::wal::chain_hash`] of the payload from
//!   zero).

use crate::machine::{MachineSnapshot, StateMachine};
use crate::paxos::{Ballot, Slot};
use serde::{Deserialize, Serialize};

/// The machine image inside a snapshot: live clone or canonical encoding.
#[derive(Debug, Clone)]
pub enum MachineImage {
    /// A structural clone (logical/in-memory backend only).
    Live(StateMachine),
    /// A canonical serializable image (framed backends).
    Encoded(MachineSnapshot),
}

/// A durable snapshot at a committed decree boundary.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The apply frontier at snapshot time: every slot below it is folded
    /// into [`Snapshot::image`]; the WAL tail holds slots at or above it.
    pub frontier: Slot,
    /// The acceptor's promised ballot at *compaction* time (not frontier
    /// time) — promises must survive log truncation.
    pub promised: Ballot,
    /// The materialized state below the frontier.
    pub image: MachineImage,
}

impl Snapshot {
    /// Materialize the machine held by this snapshot.
    pub fn machine(&self) -> StateMachine {
        match &self.image {
            MachineImage::Live(m) => m.clone(),
            MachineImage::Encoded(s) => StateMachine::from_snapshot(s),
        }
    }
}

/// The serialized (wire/disk) form of a snapshot, used by framed WAL
/// backends. Field order and the canonical [`MachineSnapshot`] ordering
/// make the encoding deterministic, so the hash-chain anchor derived from
/// the payload is stable across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotWire {
    /// See [`Snapshot::frontier`].
    pub frontier: Slot,
    /// See [`Snapshot::promised`].
    pub promised: Ballot,
    /// Canonical machine image.
    pub machine: MachineSnapshot,
}

impl SnapshotWire {
    /// Build the wire form from a snapshot (encoding a live image if
    /// needed).
    pub fn from_snapshot(snap: &Snapshot) -> SnapshotWire {
        SnapshotWire {
            frontier: snap.frontier,
            promised: snap.promised,
            machine: match &snap.image {
                MachineImage::Live(m) => m.to_snapshot(),
                MachineImage::Encoded(s) => s.clone(),
            },
        }
    }

    /// Convert back into an in-memory [`Snapshot`].
    pub fn into_snapshot(self) -> Snapshot {
        Snapshot {
            frontier: self.frontier,
            promised: self.promised,
            image: MachineImage::Encoded(self.machine),
        }
    }
}
