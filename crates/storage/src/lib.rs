#![warn(missing_docs)]

//! # statesman-storage
//!
//! The Statesman storage service: a globally available, partitioned,
//! replicated store of `NetworkState` rows.
//!
//! Paper §6.1: manipulating all variables in a single Paxos ring "would
//! impose a heavy message-exchange load ... WAN latencies will hurt the
//! scalability and performance of Statesman. Therefore, we break a big
//! Paxos ring into independent smaller rings for each datacenter," fronted
//! by "a globally available proxy layer that provides uniform access".
//!
//! This crate builds that design from scratch:
//!
//! * [`paxos`] — single-leader multi-decree Paxos: ballots, prepare/promise,
//!   accept/accepted, commit broadcast, recovery of previously accepted
//!   values after leader change;
//! * [`bus`] — a virtual-time message bus with per-link latency, loss and
//!   partition injection, so consensus latency is *simulated*, not assumed;
//! * [`cluster`] — a pump-driven Paxos ring of N replicas exposing
//!   `submit → committed` with measured (virtual) commit latencies;
//! * [`machine`] — the replicated state machine: OS/PS/TS pools of
//!   versioned rows plus checker receipts;
//! * [`service`] — the per-DC partitioning, the proxy that routes entities
//!   to rings, and the §6.4 freshness modes (up-to-date reads served from
//!   the ring; bounded-stale reads served from a cache);
//! * [`wal`] — the per-replica durable write-ahead log: CRC32 + length
//!   framing, a `prev_hash` chain, and snapshot compaction;
//! * [`snapshot`] — durable pool-state snapshots at committed decree
//!   boundaries;
//! * [`recovery`] — crash-restart reconstruction (repair a torn tail,
//!   refuse corruption) plus the recovery-safety and hash-chain checkers
//!   the chaos harness asserts.

pub mod bus;
pub mod cluster;
pub mod machine;
pub mod paxos;
pub mod recovery;
pub mod service;
pub mod snapshot;
pub mod wal;

pub use cluster::{ClusterConfig, PaxosCluster};
pub use machine::{BulkStats, LogCommand, StateMachine};
pub use recovery::{HashChainChecker, RecoveryReport, RecoverySafetyChecker};
pub use service::{ReadRequest, SeedStats, StorageConfig, StorageService, WriteRequest};
pub use wal::{DurabilityMode, ReplicaStore, WalCorruption, WalStats};
