//! Multi-decree Paxos replica logic.
//!
//! Each storage partition is a ring of [`Replica`]s running single-leader
//! multi-Paxos over [`LogCommand`]s:
//!
//! * **Phase 1 (leadership)** — a candidate picks a ballot above anything
//!   it has seen and broadcasts `Prepare`; acceptors promise and report
//!   every value they have ever accepted; on a majority the candidate
//!   becomes leader and *re-proposes the highest-ballot accepted value per
//!   slot* (the Paxos safety core — a value possibly chosen under an old
//!   leader survives the change);
//! * **Phase 2 (replication)** — the leader assigns commands to slots and
//!   broadcasts `Accept`; a slot is *chosen* on a majority of `Accepted`,
//!   after which the leader broadcasts `Commit` so learners apply it;
//! * application is strictly in slot order and gaps block (new leaders
//!   fill unknown slots with `Noop` barriers).
//!
//! A replica is a pure message-driven state machine: [`Replica::handle`]
//! consumes one message and emits outbound messages; the surrounding
//! [`crate::cluster::PaxosCluster`] owns the bus and pumps deliveries.
//! Durable state (promises, accepts, commits) is appended to the
//! replica's write-ahead log ([`crate::wal`]) *before* the corresponding
//! message is acknowledged; a crash drops everything in RAM, and restart
//! reconstructs the replica from the log alone ([`crate::recovery`]).

use crate::bus::ReplicaId;
use crate::machine::{LogCommand, StateMachine};
use crate::wal::{ReplicaStore, WalEvent};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// A Paxos ballot: totally ordered, unique per (round, replica).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ballot {
    /// Round number.
    pub n: u64,
    /// Tie-breaking proposer id.
    pub id: ReplicaId,
}

impl Ballot {
    /// The pre-history ballot no acceptor has promised.
    pub const ZERO: Ballot = Ballot {
        n: 0,
        id: ReplicaId(0),
    };
}

impl std::fmt::Display for Ballot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}.{}", self.n, self.id.0)
    }
}

/// Log slot index (1-based; slot 0 unused).
pub type Slot = u64;

/// Messages between replicas.
#[derive(Debug, Clone)]
pub enum PaxosMsg {
    /// Phase-1a: candidate solicits promises.
    Prepare {
        /// Candidate's ballot.
        ballot: Ballot,
    },
    /// Phase-1b: acceptor promises and reports accepted history.
    Promise {
        /// The promised ballot (echo).
        ballot: Ballot,
        /// Everything this acceptor has accepted: (slot, ballot, value).
        accepted: Vec<(Slot, Ballot, LogCommand)>,
    },
    /// Phase-1b rejection: acceptor already promised higher.
    PrepareNack {
        /// The higher promise the acceptor holds.
        promised: Ballot,
    },
    /// Phase-2a: leader proposes a value for a slot.
    Accept {
        /// Leader's ballot.
        ballot: Ballot,
        /// Target slot.
        slot: Slot,
        /// Proposed value.
        cmd: LogCommand,
    },
    /// Phase-2b: acceptor accepted.
    Accepted {
        /// Echoed ballot.
        ballot: Ballot,
        /// Echoed slot.
        slot: Slot,
    },
    /// Phase-2b rejection.
    AcceptNack {
        /// The higher promise the acceptor holds.
        promised: Ballot,
        /// The rejected slot.
        slot: Slot,
    },
    /// Learner broadcast: the slot is chosen.
    Commit {
        /// The chosen slot.
        slot: Slot,
        /// The chosen value.
        cmd: LogCommand,
    },
}

/// Volatile proposer role.
#[derive(Debug, Clone, PartialEq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

/// In-flight phase-2 bookkeeping for one slot.
#[derive(Debug, Clone)]
struct Inflight {
    cmd: LogCommand,
    acks: HashSet<ReplicaId>,
    committed: bool,
}

/// One Paxos replica (acceptor + learner + potential proposer).
pub struct Replica {
    /// This replica's id.
    pub id: ReplicaId,
    /// Ring size.
    pub n_replicas: usize,

    // ---- durable acceptor state ----
    promised: Ballot,
    accepted: BTreeMap<Slot, (Ballot, LogCommand)>,

    // ---- durable learner state ----
    chosen: BTreeMap<Slot, LogCommand>,
    /// Next slot to apply (all slots below are applied).
    apply_frontier: Slot,
    /// The materialized state machine.
    pub machine: StateMachine,

    // ---- volatile proposer state ----
    role: Role,
    ballot: Ballot,
    promises: HashMap<ReplicaId, Vec<(Slot, Ballot, LogCommand)>>,
    inflight: BTreeMap<Slot, Inflight>,
    next_slot: Slot,
    pending: VecDeque<LogCommand>,
    /// Highest ballot round observed anywhere (for picking fresh ballots).
    max_round_seen: u64,

    // ---- durability plumbing ----
    /// Write-ahead log; `None` only for store-less unit-test replicas.
    store: Option<ReplicaStore>,
    /// Apply frontier at the last durable snapshot (compaction cadence).
    last_snap_frontier: Slot,
    /// Row-weight appended since the last snapshot (compaction cadence).
    wal_weight_since_snap: usize,
}

/// Durable state reconstructed by [`crate::recovery::recover`], handed to
/// [`Replica::from_recovery`].
pub(crate) struct RecoveredState {
    /// Highest promised ballot (snapshot ∨ replayed promise/accept events).
    pub promised: Ballot,
    /// Accepted values above the snapshot frontier.
    pub accepted: BTreeMap<Slot, (Ballot, LogCommand)>,
    /// Chosen values above the snapshot frontier.
    pub chosen: BTreeMap<Slot, LogCommand>,
    /// The machine restored from the snapshot image.
    pub machine: StateMachine,
    /// The snapshot's apply frontier (1 when no snapshot).
    pub frontier: Slot,
    /// Total weight of replayed events (re-seeds the compaction cadence).
    pub replayed_weight: usize,
}

/// Outbound messages produced by one handle step.
pub type Outbox = Vec<(ReplicaId, PaxosMsg)>;

impl Replica {
    /// A fresh replica in a ring of `n_replicas`, with no durable store
    /// (unit tests, and the husk left behind by a kill -9).
    pub fn new(id: ReplicaId, n_replicas: usize) -> Self {
        Replica {
            id,
            n_replicas,
            promised: Ballot::ZERO,
            accepted: BTreeMap::new(),
            chosen: BTreeMap::new(),
            apply_frontier: 1,
            machine: StateMachine::new(),
            role: Role::Follower,
            ballot: Ballot::ZERO,
            promises: HashMap::new(),
            inflight: BTreeMap::new(),
            next_slot: 1,
            pending: VecDeque::new(),
            max_round_seen: 0,
            store: None,
            last_snap_frontier: 1,
            wal_weight_since_snap: 0,
        }
    }

    /// A fresh replica writing to the given durable store.
    pub fn with_store(id: ReplicaId, n_replicas: usize, store: ReplicaStore) -> Self {
        let mut r = Replica::new(id, n_replicas);
        r.store = Some(store);
        r
    }

    /// Rebuild a replica from recovered durable state. Volatile
    /// leadership is gone by construction; `max_round_seen` is seeded from
    /// the promised ballot so any future election outranks the past.
    pub(crate) fn from_recovery(
        id: ReplicaId,
        n_replicas: usize,
        store: Option<ReplicaStore>,
        state: RecoveredState,
    ) -> Self {
        let mut r = Replica::new(id, n_replicas);
        r.store = store;
        r.promised = state.promised;
        r.max_round_seen = state.promised.n;
        r.accepted = state.accepted;
        r.chosen = state.chosen;
        r.machine = state.machine;
        r.apply_frontier = state.frontier;
        r.last_snap_frontier = state.frontier;
        r.wal_weight_since_snap = state.replayed_weight;
        // Re-apply committed decrees above the snapshot. These commits are
        // already durable, so no WAL re-append happens here.
        while let Some(cmd) = r.chosen.get(&r.apply_frontier) {
            let cmd = cmd.clone();
            r.machine.apply(&cmd);
            r.apply_frontier += 1;
        }
        r
    }

    /// Majority size for this ring.
    fn quorum(&self) -> usize {
        self.n_replicas / 2 + 1
    }

    /// Whether this replica currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Slots committed and applied so far.
    pub fn applied_through(&self) -> Slot {
        self.apply_frontier - 1
    }

    /// Whether a specific proposal (by slot) has committed.
    pub fn slot_committed(&self, slot: Slot) -> bool {
        self.chosen.contains_key(&slot)
    }

    /// Discard log entries more than `keep_last` slots below the apply
    /// frontier. Chosen-and-applied entries are only needed to serve
    /// catch-up; below the horizon, catch-up happens by snapshot
    /// ([`Replica::install_snapshot`]) instead — the standard compaction
    /// tradeoff.
    pub fn compact(&mut self, keep_last: u64) {
        let horizon = self.apply_frontier.saturating_sub(keep_last + 1);
        if horizon == 0 {
            return;
        }
        self.chosen = self.chosen.split_off(&horizon);
        self.accepted = self.accepted.split_off(&horizon);
    }

    /// Install a state snapshot (leader catch-up for a replica that fell
    /// below the compaction horizon). The received state is persisted as a
    /// durable snapshot too, so a subsequent crash recovers from here
    /// instead of repeating the catch-up.
    pub fn install_snapshot(&mut self, machine: StateMachine, frontier: Slot) {
        self.machine = machine;
        self.apply_frontier = frontier;
        self.chosen = self.chosen.split_off(&frontier);
        self.accepted = self.accepted.split_off(&frontier);
        if let Some(store) = self.store.clone() {
            let tail = self.wal_tail(frontier);
            store.write_snapshot(frontier, self.promised, &self.machine, &tail);
            self.last_snap_frontier = frontier;
            self.wal_weight_since_snap = tail.iter().map(|e| e.weight()).sum();
        }
    }

    /// Write a durable snapshot at the current apply frontier when the
    /// compaction cadence is due: `every` decrees since the last snapshot,
    /// or enough appended row-weight that the log tail is worth folding
    /// regardless (large seeding batches).
    pub fn maybe_snapshot(&mut self, every: u64) {
        /// Row-weight appended since the last snapshot that forces
        /// compaction regardless of decree count.
        const SNAPSHOT_WEIGHT_BUDGET: usize = 131_072;
        let Some(store) = self.store.clone() else {
            return;
        };
        // A snapshot costs O(machine rows) — cloning (logical stores) or
        // serializing (framed stores) the full image. Against a fixed
        // absolute budget, steady telemetry churn over an N-row machine
        // pays that O(N) image every round: quadratic compaction work
        // over time (at 4M variables, a multi-second machine clone per
        // round). Scaling the budget with the machine amortizes
        // compaction to O(1) per appended row and still bounds the
        // replayable tail to ~1/8 of a full image.
        let weight_budget = SNAPSHOT_WEIGHT_BUDGET.max(self.machine.total_rows() / 8);
        let frontier = self.apply_frontier;
        let due = frontier > self.last_snap_frontier
            && (frontier - self.last_snap_frontier >= every
                || self.wal_weight_since_snap >= weight_budget);
        if !due {
            return;
        }
        let tail = self.wal_tail(frontier);
        store.write_snapshot(frontier, self.promised, &self.machine, &tail);
        self.last_snap_frontier = frontier;
        self.wal_weight_since_snap = tail.iter().map(|e| e.weight()).sum();
    }

    /// The WAL events that must survive a compaction at `frontier`:
    /// accepted and chosen values at slots the snapshot does not cover.
    fn wal_tail(&self, frontier: Slot) -> Vec<WalEvent> {
        let mut tail = Vec::new();
        for (slot, (ballot, cmd)) in self.accepted.range(frontier..) {
            tail.push(WalEvent::Accept {
                slot: *slot,
                ballot: *ballot,
                cmd: cmd.clone(),
            });
        }
        for (slot, cmd) in self.chosen.range(frontier..) {
            tail.push(WalEvent::Commit {
                slot: *slot,
                cmd: cmd.clone(),
            });
        }
        tail
    }

    /// Append one event to the durable log (before acknowledgment).
    fn wal_append(&mut self, ev: WalEvent) {
        if let Some(store) = &self.store {
            self.wal_weight_since_snap += ev.weight();
            store.append(&ev);
        }
    }

    /// Begin an election: bump the ballot above everything seen and
    /// broadcast `Prepare` (self-promise happens inline).
    pub fn start_election(&mut self) -> Outbox {
        self.max_round_seen += 1;
        self.ballot = Ballot {
            n: self.max_round_seen,
            id: self.id,
        };
        self.role = Role::Candidate;
        self.promises.clear();
        self.inflight.clear();
        // Self-promise (durable before any Prepare leaves this replica).
        self.promised = self.ballot;
        self.wal_append(WalEvent::Promise {
            ballot: self.ballot,
        });
        let own: Vec<(Slot, Ballot, LogCommand)> = self
            .accepted
            .iter()
            .map(|(s, (b, c))| (*s, *b, c.clone()))
            .collect();
        self.promises.insert(self.id, own);
        let mut out = Outbox::new();
        for peer in self.peers() {
            out.push((
                peer,
                PaxosMsg::Prepare {
                    ballot: self.ballot,
                },
            ));
        }
        // Single-replica ring: instant leadership.
        self.try_assume_leadership(&mut out);
        out
    }

    /// Client entry: enqueue a command; if leading, assign a slot and
    /// broadcast `Accept`. Returns the assigned slot when leading.
    pub fn propose(&mut self, cmd: LogCommand, out: &mut Outbox) -> Option<Slot> {
        if self.role != Role::Leader {
            self.pending.push_back(cmd);
            return None;
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.accept_self(slot, cmd.clone());
        self.inflight.insert(
            slot,
            Inflight {
                cmd: cmd.clone(),
                acks: HashSet::from([self.id]),
                committed: false,
            },
        );
        for peer in self.peers() {
            out.push((
                peer,
                PaxosMsg::Accept {
                    ballot: self.ballot,
                    slot,
                    cmd: cmd.clone(),
                },
            ));
        }
        // Single-replica ring commits instantly.
        self.maybe_commit(slot, out);
        Some(slot)
    }

    /// Re-broadcast `Accept` for every uncommitted in-flight slot
    /// (client-driven retry after message loss).
    pub fn retransmit(&mut self, out: &mut Outbox) {
        if self.role != Role::Leader {
            return;
        }
        let resend: Vec<(Slot, LogCommand)> = self
            .inflight
            .iter()
            .filter(|(_, f)| !f.committed)
            .map(|(s, f)| (*s, f.cmd.clone()))
            .collect();
        for (slot, cmd) in resend {
            for peer in self.peers() {
                out.push((
                    peer,
                    PaxosMsg::Accept {
                        ballot: self.ballot,
                        slot,
                        cmd: cmd.clone(),
                    },
                ));
            }
        }
    }

    /// Handle one delivered message.
    pub fn handle(&mut self, from: ReplicaId, msg: PaxosMsg) -> Outbox {
        let mut out = Outbox::new();
        match msg {
            PaxosMsg::Prepare { ballot } => {
                self.observe_round(ballot.n);
                if ballot > self.promised {
                    self.promised = ballot;
                    // Durable before the Promise is acknowledged.
                    self.wal_append(WalEvent::Promise { ballot });
                    if self.role != Role::Follower && ballot.id != self.id {
                        // Someone outranks us; step down.
                        self.step_down();
                    }
                    let accepted: Vec<(Slot, Ballot, LogCommand)> = self
                        .accepted
                        .iter()
                        .map(|(s, (b, c))| (*s, *b, c.clone()))
                        .collect();
                    out.push((from, PaxosMsg::Promise { ballot, accepted }));
                } else {
                    out.push((
                        from,
                        PaxosMsg::PrepareNack {
                            promised: self.promised,
                        },
                    ));
                }
            }
            PaxosMsg::Promise { ballot, accepted } => {
                if self.role == Role::Candidate && ballot == self.ballot {
                    self.promises.insert(from, accepted);
                    self.try_assume_leadership(&mut out);
                }
            }
            PaxosMsg::PrepareNack { promised } => {
                self.observe_round(promised.n);
                if self.role == Role::Candidate && promised > self.ballot {
                    self.step_down();
                }
            }
            PaxosMsg::Accept { ballot, slot, cmd } => {
                self.observe_round(ballot.n);
                if ballot >= self.promised {
                    self.promised = ballot;
                    if self.role != Role::Follower && ballot.id != self.id {
                        self.step_down();
                    }
                    // Durable before the Accepted ack is sent.
                    self.wal_append(WalEvent::Accept {
                        slot,
                        ballot,
                        cmd: cmd.clone(),
                    });
                    self.accepted.insert(slot, (ballot, cmd));
                    out.push((from, PaxosMsg::Accepted { ballot, slot }));
                } else {
                    out.push((
                        from,
                        PaxosMsg::AcceptNack {
                            promised: self.promised,
                            slot,
                        },
                    ));
                }
            }
            PaxosMsg::Accepted { ballot, slot } => {
                if self.role == Role::Leader && ballot == self.ballot {
                    if let Some(f) = self.inflight.get_mut(&slot) {
                        f.acks.insert(from);
                    }
                    self.maybe_commit(slot, &mut out);
                }
            }
            PaxosMsg::AcceptNack { promised, .. } => {
                self.observe_round(promised.n);
                if self.role == Role::Leader && promised > self.ballot {
                    self.step_down();
                }
            }
            PaxosMsg::Commit { slot, cmd } => {
                self.learn(slot, cmd);
            }
        }
        out
    }

    /// Commands queued while not leading (the cluster re-injects them
    /// after an election).
    pub fn drain_pending(&mut self) -> Vec<LogCommand> {
        self.pending.drain(..).collect()
    }

    // ---- internals ----

    fn peers(&self) -> Vec<ReplicaId> {
        (0..self.n_replicas as u8)
            .map(ReplicaId)
            .filter(|r| *r != self.id)
            .collect()
    }

    fn observe_round(&mut self, n: u64) {
        self.max_round_seen = self.max_round_seen.max(n);
    }

    fn step_down(&mut self) {
        self.role = Role::Follower;
        self.promises.clear();
        self.inflight.clear();
    }

    fn accept_self(&mut self, slot: Slot, cmd: LogCommand) {
        // The leader's own accept is durable before it counts toward the
        // quorum it is about to tally.
        self.wal_append(WalEvent::Accept {
            slot,
            ballot: self.ballot,
            cmd: cmd.clone(),
        });
        self.accepted.insert(slot, (self.ballot, cmd));
    }

    fn try_assume_leadership(&mut self, out: &mut Outbox) {
        if self.role != Role::Candidate || self.promises.len() < self.quorum() {
            return;
        }
        self.role = Role::Leader;
        // Recover: per slot, re-propose the highest-ballot accepted value.
        let mut recover: BTreeMap<Slot, (Ballot, LogCommand)> = BTreeMap::new();
        for report in self.promises.values() {
            for (slot, ballot, cmd) in report {
                match recover.get(slot) {
                    Some((b, _)) if b >= ballot => {}
                    _ => {
                        recover.insert(*slot, (*ballot, cmd.clone()));
                    }
                }
            }
        }
        let max_slot = recover.keys().max().copied().unwrap_or(0);
        // Fill holes below the max with Noop barriers so the log has no
        // permanent gaps.
        for slot in 1..=max_slot {
            recover
                .entry(slot)
                .or_insert((Ballot::ZERO, LogCommand::Noop));
        }
        self.next_slot = max_slot + 1;
        for (slot, (_, cmd)) in recover {
            if self.chosen.contains_key(&slot) {
                continue;
            }
            self.accept_self(slot, cmd.clone());
            self.inflight.insert(
                slot,
                Inflight {
                    cmd: cmd.clone(),
                    acks: HashSet::from([self.id]),
                    committed: false,
                },
            );
            for peer in self.peers() {
                out.push((
                    peer,
                    PaxosMsg::Accept {
                        ballot: self.ballot,
                        slot,
                        cmd: cmd.clone(),
                    },
                ));
            }
            self.maybe_commit(slot, out);
        }
    }

    fn maybe_commit(&mut self, slot: Slot, out: &mut Outbox) {
        let quorum = self.quorum();
        let ready = self
            .inflight
            .get(&slot)
            .map(|f| !f.committed && f.acks.len() >= quorum)
            .unwrap_or(false);
        if !ready {
            return;
        }
        let cmd = {
            let f = self.inflight.get_mut(&slot).expect("inflight exists");
            f.committed = true;
            f.cmd.clone()
        };
        for peer in self.peers() {
            out.push((
                peer,
                PaxosMsg::Commit {
                    slot,
                    cmd: cmd.clone(),
                },
            ));
        }
        self.learn(slot, cmd);
    }

    fn learn(&mut self, slot: Slot, cmd: LogCommand) {
        if !self.chosen.contains_key(&slot) {
            // Durable before the commit is applied (and thus observable).
            self.wal_append(WalEvent::Commit {
                slot,
                cmd: cmd.clone(),
            });
            self.chosen.insert(slot, cmd);
        }
        while let Some(cmd) = self.chosen.get(&self.apply_frontier) {
            let cmd = cmd.clone();
            self.machine.apply(&cmd);
            self.apply_frontier += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_types::Pool;

    /// Deliver every outbound message synchronously until quiescent —
    /// a zero-latency perfect network for unit-testing replica logic.
    fn pump(replicas: &mut [Replica], mut outbox: Vec<(ReplicaId, ReplicaId, PaxosMsg)>) {
        while let Some((from, to, msg)) = outbox.pop() {
            let more = replicas[to.0 as usize].handle(from, msg);
            for (dest, m) in more {
                outbox.push((to, dest, m));
            }
        }
    }

    fn ring(n: usize) -> Vec<Replica> {
        (0..n as u8)
            .map(|i| Replica::new(ReplicaId(i), n))
            .collect()
    }

    fn elect(replicas: &mut [Replica], id: usize) {
        let out = replicas[id].start_election();
        let from = ReplicaId(id as u8);
        pump(
            replicas,
            out.into_iter().map(|(to, m)| (from, to, m)).collect(),
        );
        assert!(replicas[id].is_leader());
    }

    fn write(n: u64) -> LogCommand {
        LogCommand::WriteBatch {
            pool: Pool::Observed,
            rows: vec![],
        }
        .tagged(n)
    }

    impl LogCommand {
        /// Distinguish otherwise-identical test commands.
        fn tagged(self, _n: u64) -> LogCommand {
            self
        }
    }

    #[test]
    fn election_reaches_quorum() {
        let mut rs = ring(3);
        elect(&mut rs, 0);
        assert!(!rs[1].is_leader());
        assert!(!rs[2].is_leader());
    }

    #[test]
    fn proposals_commit_and_replicate() {
        let mut rs = ring(3);
        elect(&mut rs, 0);
        let mut out = Outbox::new();
        let slot = rs[0].propose(LogCommand::Noop, &mut out).unwrap();
        pump(
            &mut rs,
            out.into_iter()
                .map(|(to, m)| (ReplicaId(0), to, m))
                .collect(),
        );
        for r in &rs {
            assert!(r.slot_committed(slot), "replica {} missing slot", r.id);
            assert_eq!(r.applied_through(), slot);
            assert_eq!(r.machine.applied_count(), 1);
        }
    }

    #[test]
    fn follower_queues_proposals() {
        let mut rs = ring(3);
        let mut out = Outbox::new();
        assert!(rs[1].propose(LogCommand::Noop, &mut out).is_none());
        assert!(out.is_empty());
        assert_eq!(rs[1].drain_pending().len(), 1);
    }

    #[test]
    fn new_leader_recovers_accepted_values() {
        let mut rs = ring(3);
        elect(&mut rs, 0);
        // Leader 0 proposes, but the Accept only reaches replica 1 (we
        // deliver manually, dropping everything else).
        let mut out = Outbox::new();
        let slot = rs[0].propose(write(1), &mut out).unwrap();
        let accept_to_1: Vec<_> = out
            .iter()
            .filter(|(to, m)| *to == ReplicaId(1) && matches!(m, PaxosMsg::Accept { .. }))
            .cloned()
            .collect();
        for (to, m) in accept_to_1 {
            // acceptor replies are dropped: no pump
            let _ = rs[to.0 as usize].handle(ReplicaId(0), m);
        }
        assert!(!rs[1].slot_committed(slot));

        // Leader 0 "dies"; replica 2 runs an election with {1,2} quorum.
        // Replica 1 reports the accepted value, so the new leader must
        // re-propose it.
        let out = rs[2].start_election();
        let msgs: Vec<_> = out
            .into_iter()
            .filter(|(to, _)| *to != ReplicaId(0)) // 0 is dead
            .map(|(to, m)| (ReplicaId(2), to, m))
            .collect();
        // Manual pump that never delivers to replica 0.
        let mut queue = msgs;
        while let Some((from, to, msg)) = queue.pop() {
            let more = rs[to.0 as usize].handle(from, msg);
            for (dest, m) in more {
                if dest != ReplicaId(0) {
                    queue.push((to, dest, m));
                }
            }
        }
        assert!(rs[2].is_leader());
        assert!(rs[2].slot_committed(slot), "recovered value must commit");
        assert!(rs[1].slot_committed(slot));
    }

    #[test]
    fn higher_ballot_preempts_leader() {
        let mut rs = ring(3);
        elect(&mut rs, 0);
        elect(&mut rs, 1); // 1 outranks 0
        assert!(rs[1].is_leader());
        assert!(!rs[0].is_leader(), "old leader stepped down");
    }

    #[test]
    fn stale_leader_accepts_are_rejected() {
        let mut rs = ring(3);
        elect(&mut rs, 0);
        let stale_ballot = rs[0].ballot;
        elect(&mut rs, 1);
        // Replica 2 promised to 1's higher ballot; a stale Accept bounces.
        let out = rs[2].handle(
            ReplicaId(0),
            PaxosMsg::Accept {
                ballot: stale_ballot,
                slot: 99,
                cmd: LogCommand::Noop,
            },
        );
        assert!(matches!(out[0].1, PaxosMsg::AcceptNack { .. }));
    }

    #[test]
    fn restart_recovers_log_from_wal_not_ram() {
        use crate::recovery;
        use crate::wal::{DurabilityMode, ReplicaStore};
        let stores: Vec<ReplicaStore> = (0..3u8)
            .map(|i| ReplicaStore::new(&DurabilityMode::FramedMemory, ReplicaId(i)))
            .collect();
        let mut rs: Vec<Replica> = (0..3u8)
            .map(|i| Replica::with_store(ReplicaId(i), 3, stores[i as usize].clone()))
            .collect();
        elect(&mut rs, 0);
        let mut out = Outbox::new();
        let slot = rs[0].propose(LogCommand::Noop, &mut out).unwrap();
        pump(
            &mut rs,
            out.into_iter()
                .map(|(to, m)| (ReplicaId(0), to, m))
                .collect(),
        );
        // kill -9: the in-RAM replica is gone; recovery rebuilds it from
        // the durable store alone.
        let (recovered, report) = recovery::recover(ReplicaId(0), 3, &stores[0]);
        rs[0] = recovered;
        assert!(!rs[0].is_leader(), "leadership is volatile");
        assert!(rs[0].slot_committed(slot), "durable log survives restart");
        assert_eq!(rs[0].applied_through(), slot);
        assert!(!report.refused);
    }

    #[test]
    fn single_replica_ring_commits_instantly() {
        let mut rs = ring(1);
        let out = rs[0].start_election();
        assert!(out.is_empty());
        assert!(rs[0].is_leader());
        let mut out = Outbox::new();
        let slot = rs[0].propose(LogCommand::Noop, &mut out).unwrap();
        assert!(rs[0].slot_committed(slot));
    }

    #[test]
    fn apply_order_is_contiguous() {
        let mut rs = ring(3);
        // Learner receives slot 2 before slot 1: nothing applies until the
        // gap closes.
        let _ = rs[2].handle(
            ReplicaId(0),
            PaxosMsg::Commit {
                slot: 2,
                cmd: LogCommand::Noop,
            },
        );
        assert_eq!(rs[2].applied_through(), 0);
        let _ = rs[2].handle(
            ReplicaId(0),
            PaxosMsg::Commit {
                slot: 1,
                cmd: LogCommand::Noop,
            },
        );
        assert_eq!(rs[2].applied_through(), 2);
    }
}
