#![warn(missing_docs)]

//! # statesman-obs
//!
//! The observability subsystem: a lock-cheap [`Registry`] of counters,
//! gauges, and fixed-bucket histograms, plus a [`TraceRing`] of
//! structured [`RoundTrace`]s — one per coordinator tick.
//!
//! The paper's operators run Statesman by watching latency breakdowns,
//! pool sizes, and per-app proposal outcomes (§8, Figs 8–10). This crate
//! is the single place those signals are collected: the monitor, checker,
//! updater, coordinator, storage service, network simulator, and HTTP API
//! all record into one shared [`Obs`] handle, and the redesigned v1 API
//! exports it (`GET /v1/metrics`, `GET /v1/status`).
//!
//! There is deliberately **no global mutable singleton**: an [`Obs`] is an
//! explicit, cheaply clonable value threaded into each component. Tests
//! and scenarios run isolated instances side by side, and a component
//! without an `Obs` simply records nothing.

pub mod registry;
pub mod trace;

pub use registry::{
    Counter, Gauge, Histogram, MetricSample, Registry, LATENCY_BUCKETS_MS, LATENCY_BUCKETS_US,
};
pub use trace::{RoundTrace, TraceRing, DEFAULT_TRACE_CAPACITY};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Summary of the most recent storage-replica crash recovery, surfaced
/// in `GET /v1/status` so operators can see what the last restart did
/// (repaired a torn tail, refused a corrupt log, replayed N events)
/// without scraping replica logs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoverySummary {
    /// The storage partition (datacenter) the replica belongs to.
    pub partition: String,
    /// The recovered replica's id within its ring.
    pub replica: u8,
    /// Whether acknowledged durable state was refused as corrupt (the
    /// replica restarted from its snapshot alone and relied on leader
    /// catch-up).
    pub refused: bool,
    /// Torn tail records truncated and repaired during load.
    pub truncated_records: u64,
    /// WAL events replayed above the snapshot.
    pub replayed_events: u64,
    /// Apply frontier restored from the snapshot (1 when none existed).
    pub snapshot_frontier: u64,
    /// Decrees applied through after local replay, before leader catch-up.
    pub recovered_frontier: u64,
}

/// Live control-loop status beyond the metrics: the current quarantine
/// set, open circuit breakers, and degraded partitions. Updated by the
/// coordinator each tick; served by `GET /v1/status`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusBoard {
    /// Devices currently quarantined by the monitor.
    pub quarantined: Vec<String>,
    /// Devices whose updater circuit breaker is currently open.
    pub breakers_open: Vec<String>,
    /// Storage partitions whose impact groups were skipped last round.
    pub degraded_partitions: Vec<String>,
    /// The last completed round index, if any round has run.
    pub last_round: Option<u64>,
    /// Distinct entity names in the process-wide interner (the compact
    /// state-plane symbol table).
    #[serde(default)]
    pub interned_entities: u64,
    /// Id → name resolutions performed during the last round (edge
    /// resolutions only: delta tombstones, receipts). A large value flags
    /// resolution creeping into a hot loop.
    #[serde(default)]
    pub key_resolutions_last_round: u64,
    /// Microseconds spent waiting for storage partition locks during the
    /// last round, summed across partitions. Near-zero when the sharded
    /// lock plan holds (each thread owns its partition); growth flags
    /// cross-partition contention sneaking back in.
    #[serde(default)]
    pub storage_lock_wait_us_last_round: u64,
    /// The most recent storage-replica crash recovery, if any replica has
    /// restarted since boot.
    #[serde(default)]
    pub last_recovery: Option<RecoverySummary>,
    /// Live row counts per pool (wire name → rows), summed across storage
    /// partitions. OS tracks the variable count; `PS:*` pools drain to
    /// zero as the checker consumes proposals.
    #[serde(default)]
    pub pool_rows: Vec<(String, u64)>,
    /// Approximate resident bytes per state variable in the columnar
    /// storage plane (slot vectors + occupancy bitmaps + row arenas,
    /// including string payloads). Zero when the plane is empty.
    #[serde(default)]
    pub state_bytes_per_var: f64,
    /// Update-plan steps synthesized last round (0 with planning off).
    #[serde(default)]
    pub plan_steps_last_round: usize,
    /// Dependency waves in last round's update plan.
    #[serde(default)]
    pub plan_waves_last_round: usize,
    /// Widest wave of last round's plan — its available parallelism.
    #[serde(default)]
    pub plan_max_width_last_round: usize,
    /// Steps withheld by an in-flight invariant check last round.
    #[serde(default)]
    pub plan_inflight_rejections_last_round: usize,
    /// Steps rolled back last round after every rendered command failed.
    #[serde(default)]
    pub plan_rollbacks_last_round: usize,
    /// Cumulative checker change-track full degrades (silent fallbacks
    /// to a full reseed) across every impact group since construction.
    #[serde(default)]
    pub checker_full_degrades: u64,
}

/// The shared observability handle: one registry, one trace ring, one
/// status board. Cheap to clone; all clones share state.
#[derive(Clone, Default)]
pub struct Obs {
    /// The metrics registry.
    pub registry: Registry,
    /// The round-trace ring buffer.
    pub traces: TraceRing,
    status: Arc<Mutex<StatusBoard>>,
}

impl Obs {
    /// A fresh observability handle with default trace capacity.
    pub fn new() -> Self {
        Obs::default()
    }

    /// A fresh handle with an explicit trace-ring capacity.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Obs {
            registry: Registry::new(),
            traces: TraceRing::new(capacity),
            status: Arc::new(Mutex::new(StatusBoard::default())),
        }
    }

    /// Replace the status board (coordinator, once per tick).
    pub fn set_status(&self, board: StatusBoard) {
        *self.status.lock() = board;
    }

    /// The current status board.
    pub fn status(&self) -> StatusBoard {
        self.status.lock().clone()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("registry", &self.registry)
            .field("traces", &self.traces.len())
            .field("status", &self.status.lock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_clones_share_everything() {
        let a = Obs::new();
        let b = a.clone();
        a.registry.counter("x_total").inc();
        a.traces.push(RoundTrace::default());
        a.set_status(StatusBoard {
            quarantined: vec!["agg-1-1".into()],
            ..StatusBoard::default()
        });
        assert_eq!(b.registry.counter_value("x_total"), Some(1));
        assert_eq!(b.traces.len(), 1);
        assert_eq!(b.status().quarantined, vec!["agg-1-1".to_string()]);
    }
}
