//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Design goals, in order:
//!
//! 1. **Lock-cheap on the hot path.** Recording a sample is one or two
//!    atomic operations on an `Arc`'d cell; the registry mutex is taken
//!    only to create or look up a metric handle. Components that record
//!    per-request or per-round cache their handles once.
//! 2. **No external deps.** Counters are `AtomicU64`, gauges `AtomicI64`,
//!    histogram sums CAS-updated `f64` bits — everything in `std`.
//! 3. **No global mutable singleton.** A [`Registry`] is an explicit,
//!    cheaply clonable handle; every instrumented component is given one.
//!    Tests and scenarios can therefore run many isolated registries in
//!    one process, and nothing is observable by accident.
//!
//! Metrics are identified by a flat name plus optional `{k="v"}` labels
//! (rendered Prometheus-style). Two lookups with the same name and labels
//! return handles to the same underlying cells.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets; an implicit +Inf bucket
    /// follows. Fixed at creation.
    bounds: Vec<f64>,
    /// One count per bound, plus the +Inf bucket (len = bounds.len()+1).
    /// Cumulative at snapshot time, per-bucket here.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits (CAS loop).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram (latencies, sizes).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

/// Default latency buckets, in milliseconds: 1ms .. ~4min, exponential.
pub const LATENCY_BUCKETS_MS: &[f64] = &[
    1.0, 5.0, 25.0, 100.0, 500.0, 2_500.0, 10_000.0, 60_000.0, 240_000.0,
];

/// Microsecond latency buckets for wire-level request timing: 50µs .. 1s,
/// roughly 2–4× steps. The HTTP front end's per-worker request histograms
/// use these (a served read is tens of microseconds; millisecond buckets
/// would collapse the whole distribution into the first bucket).
pub const LATENCY_BUCKETS_US: &[f64] = &[
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    100_000.0,
    1_000_000.0,
];

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.to_vec();
        b.sort_by(|x, y| x.partial_cmp(y).expect("histogram bounds must not be NaN"));
        b.dedup();
        let counts = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: b,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let i = self
            .0
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.counts[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` pairs, ending with `(+Inf, total)`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.0.bounds.len() + 1);
        for (i, c) in self.0.counts.iter().enumerate() {
            acc += c.load(Ordering::Relaxed);
            let bound = self.0.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One metric's exported state (for JSON rendering and test assertions).
/// Serialized externally tagged: `{"Counter": {"name": ..., "value": ...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricSample {
    /// A counter sample.
    Counter {
        /// Full name including rendered labels.
        name: String,
        /// Current value.
        value: u64,
    },
    /// A gauge sample.
    Gauge {
        /// Full name including rendered labels.
        name: String,
        /// Current value.
        value: i64,
    },
    /// A histogram sample.
    Histogram {
        /// Full name including rendered labels.
        name: String,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// `(upper_bound, cumulative_count)`; the final bound is +Inf,
        /// serialized as `null`.
        buckets: Vec<(Option<f64>, u64)>,
    },
}

impl MetricSample {
    /// The metric's full name.
    pub fn name(&self) -> &str {
        match self {
            MetricSample::Counter { name, .. }
            | MetricSample::Gauge { name, .. }
            | MetricSample::Histogram { name, .. } => name,
        }
    }
}

/// The shared metrics registry. Cheap to clone; all clones share state.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

/// Render `name{k="v",...}` (no braces when `labels` is empty). Label
/// order follows the caller; callers are expected to pass a fixed order.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut s = String::with_capacity(name.len() + 16 * labels.len());
    s.push_str(name);
    s.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(k);
        s.push_str("=\"");
        // Quotes and backslashes in values would corrupt the text format.
        for ch in v.chars() {
            match ch {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                '\n' => s.push_str("\\n"),
                c => s.push(c),
            }
        }
        s.push('"');
    }
    s.push('}');
    s
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get or create a counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = labeled(name, labels);
        let mut m = self.metrics.lock();
        match m
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {} already registered as {other:?}", name),
        }
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get or create a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = labeled(name, labels);
        let mut m = self.metrics.lock();
        match m
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {} already registered as {other:?}", name),
        }
    }

    /// Get or create a histogram. `bounds` applies only on first creation;
    /// later lookups reuse the existing buckets.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, &[], bounds)
    }

    /// Get or create a histogram with labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let key = labeled(name, labels);
        let mut m = self.metrics.lock();
        match m
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {} already registered as {other:?}", name),
        }
    }

    /// A counter's current value, if it exists (test/assertion helper;
    /// `name` is the full labeled name).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.lock().get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Sum of all counters whose full name starts with `prefix`
    /// (aggregates across label sets).
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.metrics
            .lock()
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, m)| match m {
                Metric::Counter(c) => Some(c.get()),
                _ => None,
            })
            .sum()
    }

    /// Snapshot every metric, sorted by full name.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let m = self.metrics.lock();
        m.iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => MetricSample::Counter {
                    name: name.clone(),
                    value: c.get(),
                },
                Metric::Gauge(g) => MetricSample::Gauge {
                    name: name.clone(),
                    value: g.get(),
                },
                Metric::Histogram(h) => MetricSample::Histogram {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h
                        .cumulative_buckets()
                        .into_iter()
                        .map(|(b, c)| (b.is_finite().then_some(b), c))
                        .collect(),
                },
            })
            .collect()
    }

    /// Render the registry in the Prometheus text exposition style.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            match s {
                MetricSample::Counter { name, value } => {
                    out.push_str(&format!("{name} {value}\n"));
                }
                MetricSample::Gauge { name, value } => {
                    out.push_str(&format!("{name} {value}\n"));
                }
                MetricSample::Histogram {
                    name,
                    count,
                    sum,
                    buckets,
                } => {
                    let (base, labels) = match name.split_once('{') {
                        Some((b, rest)) => (b, format!(",{rest}")),
                        None => (name.as_str(), "}".to_string()),
                    };
                    for (bound, c) in buckets {
                        let le = bound
                            .map(|b| format!("{b}"))
                            .unwrap_or_else(|| "+Inf".to_string());
                        out.push_str(&format!("{base}_bucket{{le=\"{le}\"{labels} {c}\n"));
                    }
                    out.push_str(&format!("{base}_sum{} {sum}\n", labels_suffix(&labels)));
                    out.push_str(&format!("{base}_count{} {count}\n", labels_suffix(&labels)));
                }
            }
        }
        out
    }

    /// Render the registry as a JSON array of [`MetricSample`]s.
    pub fn render_json(&self) -> String {
        serde_json::to_string(&self.snapshot()).expect("metric snapshot serializes")
    }
}

/// For `_sum`/`_count` lines: re-attach the original labels (if any).
/// `labels` here is either `"}"` (no labels) or `",k=\"v\"...}"`.
fn labels_suffix(labels: &str) -> String {
    if labels == "}" {
        String::new()
    } else {
        // ",k=\"v\"}" -> "{k=\"v\"}"
        format!("{{{}", &labels[1..])
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} metrics)", self.metrics.lock().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::new();
        r.counter("x_total").inc();
        r.counter("x_total").add(2);
        assert_eq!(r.counter("x_total").get(), 3);
        assert_eq!(r.counter_value("x_total"), Some(3));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn labels_distinguish_series_and_sum_aggregates() {
        let r = Registry::new();
        r.counter_with("req_total", &[("route", "read"), ("status", "200")])
            .add(5);
        r.counter_with("req_total", &[("route", "write"), ("status", "200")])
            .add(7);
        assert_eq!(
            r.counter_value("req_total{route=\"read\",status=\"200\"}"),
            Some(5)
        );
        assert_eq!(r.counter_sum("req_total"), 12);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(r.gauge("depth").get(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat_ms", &[10.0, 100.0]);
        for v in [1.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 556.0);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(10.0, 2), (100.0, 3), (f64::INFINITY, 4)]
        );
    }

    #[test]
    fn text_render_is_line_per_series() {
        let r = Registry::new();
        r.counter_with("a_total", &[("k", "v")]).inc();
        r.gauge("b").set(-1);
        r.histogram("c_ms", &[1.0]).observe(0.5);
        let text = r.render_text();
        assert!(text.contains("a_total{k=\"v\"} 1\n"), "{text}");
        assert!(text.contains("b -1\n"), "{text}");
        assert!(text.contains("c_ms_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("c_ms_bucket{le=\"+Inf\"} 1\n"), "{text}");
        assert!(text.contains("c_ms_sum 0.5\n"), "{text}");
        assert!(text.contains("c_ms_count 1\n"), "{text}");
    }

    #[test]
    fn json_render_round_trips() {
        let r = Registry::new();
        r.counter("x_total").add(9);
        let json = r.render_json();
        let parsed: Vec<MetricSample> = serde_json::from_str(&json).unwrap();
        assert_eq!(
            parsed,
            vec![MetricSample::Counter {
                name: "x_total".into(),
                value: 9
            }]
        );
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            labeled("m", &[("k", "a\"b\\c")]),
            "m{k=\"a\\\"b\\\\c\"}".to_string()
        );
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let r = Registry::new();
        let h = r.histogram("h", &[50.0]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = r.counter("c_total");
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1_000 {
                        c.inc();
                        h.observe(i as f64 % 100.0);
                    }
                });
            }
        });
        assert_eq!(r.counter("c_total").get(), 8_000);
        assert_eq!(h.count(), 8_000);
    }
}
