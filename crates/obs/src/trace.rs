//! Structured round tracing: one [`RoundTrace`] per coordinator tick,
//! kept in a bounded ring buffer.
//!
//! The paper's operators debug Statesman with latency breakdowns and
//! per-app proposal outcomes (§8, Figs 8–10). A `RoundTrace` is the
//! machine-readable record of one control round — stage latencies,
//! retries, quarantines, degraded partitions, and checker accept/reject
//! counts with reasons — and the [`TraceRing`] holds the last N of them
//! so `/v1/status` can answer "what has the loop been doing lately?"
//! without a log scrape.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Default ring capacity (rounds are minutes; 64 traces ≈ an hour).
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

/// One coordinator tick, structured.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Monotone round index (per coordinator).
    pub round: u64,
    /// Simulated time at tick start, milliseconds.
    pub at_ms: u64,
    /// Monitor stage latency, ms (modeled device I/O).
    pub monitor_ms: f64,
    /// Checker stage latency, ms (measured compute, summed over groups).
    pub checker_ms: f64,
    /// Updater stage latency, ms (modeled device I/O).
    pub updater_ms: f64,
    /// Devices successfully polled.
    pub devices_polled: usize,
    /// Devices that timed out this round.
    pub devices_unreachable: usize,
    /// Devices skipped under quarantine.
    pub devices_quarantined: usize,
    /// The quarantine set at tick time (device names).
    pub quarantined: Vec<String>,
    /// Impact groups skipped because their storage partition was down.
    pub skipped_groups: Vec<String>,
    /// True if any group was skipped (degraded round).
    pub degraded: bool,
    /// Proposal rows the checkers processed.
    pub proposals_seen: usize,
    /// Rows merged into the TS.
    pub accepted: usize,
    /// Rows rejected (all reasons).
    pub rejected: usize,
    /// Rows that were no-ops against the OS.
    pub already_satisfied: usize,
    /// Rows rejected for touching a quarantined device.
    pub quarantine_rejected: usize,
    /// Rejections by reason kind (`invalid`, `conflict`, `invariant`,
    /// `uncontrollable`).
    pub reject_reasons: BTreeMap<String, usize>,
    /// OS/TS differences the updater saw.
    pub updater_diffs: usize,
    /// Commands accepted by devices.
    pub commands_applied: usize,
    /// Commands that failed (after in-round retries).
    pub commands_failed: usize,
    /// In-round updater retries.
    pub updater_retries: usize,
    /// Commands skipped on an open circuit breaker.
    pub breaker_skips: usize,
    /// Circuit breakers tripped open this round.
    pub breakers_opened: usize,
    /// Devices whose breaker is open at round end.
    pub breakers_open: Vec<String>,
    /// Cumulative storage submit retries at round end.
    pub storage_retries: u64,
    /// Cumulative storage submits that exhausted their budget.
    pub storage_retries_exhausted: u64,
    /// OS rows the monitor actually wrote this round (delta path).
    #[serde(default)]
    pub rows_written: usize,
    /// OS rows the monitor suppressed as value-identical this round.
    #[serde(default)]
    pub writes_suppressed: usize,
    /// Cumulative storage reads served from the change index.
    #[serde(default)]
    pub delta_reads: u64,
    /// Cumulative delta reads that fell back to a full snapshot.
    #[serde(default)]
    pub full_fallbacks: u64,
    /// Worst-case versions between a leader OS watermark and the
    /// updater's cached view of it at round end.
    #[serde(default)]
    pub watermark_lag: u64,
    /// Update-plan steps synthesized this round (0 with planning off).
    #[serde(default)]
    pub plan_steps: usize,
    /// Dependency waves in this round's update plan.
    #[serde(default)]
    pub plan_waves: usize,
    /// Widest wave — the plan's available parallelism.
    #[serde(default)]
    pub plan_max_width: usize,
    /// Steps withheld by an in-flight invariant check this round.
    #[serde(default)]
    pub plan_inflight_rejections: usize,
    /// Steps rolled back after every rendered command failed.
    #[serde(default)]
    pub plan_rollbacks: usize,
    /// Updater wall time in the read stage (mirror advance or full pool
    /// reads), ms.
    #[serde(default)]
    pub updater_stage_read_ms: f64,
    /// Updater wall time in the diff stage (path expansion, TS sort,
    /// per-partition comparisons), ms.
    #[serde(default)]
    pub updater_stage_diff_ms: f64,
    /// Updater wall time in the execute stage (plan synthesis, in-flight
    /// checks, rendering, command issue), ms.
    #[serde(default)]
    pub updater_stage_exec_ms: f64,
    /// Monitor wall time polling devices and links, ms.
    #[serde(default)]
    pub monitor_stage_poll_ms: f64,
    /// Monitor wall time deduplicating and diffing against its base, ms.
    #[serde(default)]
    pub monitor_stage_diff_ms: f64,
    /// Monitor wall time writing storage and maintaining the base, ms.
    #[serde(default)]
    pub monitor_stage_write_ms: f64,
}

impl RoundTrace {
    /// Per-stage latency `(monitor, checker, updater)` in ms — the same
    /// tuple as `RoundReport::latency_breakdown_ms`.
    pub fn latency_breakdown_ms(&self) -> (f64, f64, f64) {
        (self.monitor_ms, self.checker_ms, self.updater_ms)
    }
}

/// A bounded ring of the most recent [`RoundTrace`]s. Cheap to clone; all
/// clones share the buffer.
#[derive(Clone, Debug)]
pub struct TraceRing {
    inner: Arc<Mutex<VecDeque<RoundTrace>>>,
    capacity: usize,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` traces (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
        }
    }

    /// Append a trace, evicting the oldest when full.
    pub fn push(&self, trace: RoundTrace) {
        let mut q = self.inner.lock();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(trace);
    }

    /// The most recent trace.
    pub fn last(&self) -> Option<RoundTrace> {
        self.inner.lock().back().cloned()
    }

    /// The most recent `n` traces, oldest first.
    pub fn recent(&self, n: usize) -> Vec<RoundTrace> {
        let q = self.inner.lock();
        q.iter().rev().take(n).rev().cloned().collect()
    }

    /// Traces currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no trace has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(round: u64) -> RoundTrace {
        RoundTrace {
            round,
            monitor_ms: 10.0 * round as f64,
            ..RoundTrace::default()
        }
    }

    #[test]
    fn ring_keeps_the_newest_n() {
        let ring = TraceRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(trace(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.last().unwrap().round, 4);
        let recent: Vec<u64> = ring.recent(2).iter().map(|t| t.round).collect();
        assert_eq!(recent, vec![3, 4]);
        let all: Vec<u64> = ring.recent(100).iter().map(|t| t.round).collect();
        assert_eq!(all, vec![2, 3, 4]);
    }

    #[test]
    fn trace_serializes_and_round_trips() {
        let mut t = trace(7);
        t.reject_reasons.insert("invariant".into(), 2);
        t.quarantined.push("agg-1-1".into());
        let json = serde_json::to_string(&t).unwrap();
        let back: RoundTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.latency_breakdown_ms(), (70.0, 0.0, 0.0));
    }

    #[test]
    fn clones_share_the_buffer() {
        let a = TraceRing::new(4);
        let b = a.clone();
        a.push(trace(1));
        assert_eq!(b.len(), 1);
    }
}
