//! Property-based tests for the shared vocabulary: wire-format round
//! trips, canonicalization, and time arithmetic hold for arbitrary inputs.

use proptest::prelude::*;
use statesman_types::intern::Interner;
use statesman_types::{
    AppId, Attribute, EntityName, LinkName, LockPriority, LockRecord, NetworkState, Pool,
    SimDuration, SimTime, StateKey, Value, VarId,
};

/// Names that survive the wire format: non-empty, no separator bytes.
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9.-]{0,30}"
}

proptest! {
    #[test]
    fn link_names_canonicalize_symmetrically(a in name_strategy(), b in name_strategy()) {
        let l1 = LinkName::between(a.clone(), b.clone());
        let l2 = LinkName::between(b, a);
        prop_assert_eq!(&l1, &l2);
        prop_assert!(l1.a <= l1.b);
        // Parse round trip.
        prop_assert_eq!(LinkName::parse(&l1.to_string()), Some(l1));
    }

    #[test]
    fn entity_wire_names_round_trip(
        dc in name_strategy(),
        dev in name_strategy(),
        peer in name_strategy(),
        path in "[a-z][a-z0-9:>.-]{0,40}"
    ) {
        for e in [
            EntityName::device(dc.clone(), dev.clone()),
            EntityName::link(dc.clone(), dev.clone(), peer),
            EntityName::path(dc, path),
        ] {
            let wire = e.wire_name();
            prop_assert_eq!(EntityName::parse_wire_name(&wire), Some(e), "{}", wire);
        }
    }

    #[test]
    fn pool_wire_names_round_trip(app in name_strategy()) {
        for p in [Pool::Observed, Pool::Target, Pool::Proposed(AppId::new(app))] {
            prop_assert_eq!(Pool::parse_wire_name(&p.wire_name()), Some(p.clone()));
        }
    }

    #[test]
    fn rows_round_trip_through_json(
        dc in name_strategy(),
        dev in name_strategy(),
        attr_idx in 0..Attribute::catalogue().len(),
        int_val in any::<i64>(),
        float_val in -1e12f64..1e12,
        text in "[ -~]{0,60}",
        pick in 0..4u8,
        at in 0..u64::MAX / 2
    ) {
        let attr = Attribute::catalogue()[attr_idx];
        // Pick a value shape; lock attributes must carry lock values to
        // be well-formed, but JSON round-trips regardless.
        let value = match pick {
            0 => Value::Int(int_val),
            1 => Value::Float(float_val),
            2 => Value::text(text),
            _ => Value::Lock(LockRecord::new(
                AppId::new("app"),
                LockPriority::High,
                SimTime::from_millis(at),
                Some(SimTime::from_millis(at) + SimDuration::from_mins(5)),
            )),
        };
        let row = NetworkState::new(
            EntityName::device(dc, dev),
            attr,
            value,
            SimTime::from_millis(at),
            AppId::new("prop"),
        );
        let json = serde_json::to_string(&row).unwrap();
        let back: NetworkState = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(row, back);
    }

    #[test]
    fn time_arithmetic_is_consistent(a in 0..u64::MAX/4, d in 0..u64::MAX/4) {
        let t = SimTime::from_millis(a);
        let span = SimDuration::from_millis(d);
        let t2 = t + span;
        prop_assert_eq!(t2 - t, span);
        prop_assert_eq!(t2.saturating_since(t), span);
        prop_assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
        prop_assert!(t2 >= t);
    }

    #[test]
    fn interner_round_trip_is_identity(
        dc in name_strategy(),
        dev in name_strategy(),
        attr_idx in 0..Attribute::catalogue().len(),
    ) {
        let attr = Attribute::catalogue()[attr_idx];
        let entity = EntityName::device(dc, dev);
        let vid = VarId::of(&entity, attr);
        // resolve ∘ intern is the identity on names…
        let name = vid.resolve_entity();
        prop_assert_eq!(&*name, &entity);
        // …and intern ∘ resolve is the identity on ids.
        prop_assert_eq!(VarId::of(&name, attr), vid);
        prop_assert_eq!(vid.attribute(), attr);
        prop_assert_eq!(vid.resolve_key(), StateKey::new(entity, attr));
    }

    #[test]
    fn var_id_order_matches_state_key_order_after_canonical_interning(
        names in proptest::collection::vec(name_strategy(), 1..16),
        attrs in proptest::collection::vec(0..Attribute::catalogue().len(), 1..8),
    ) {
        // Ids follow interning order, so VarId order is only meaningful
        // after a canonicalizing pass: intern entities in sorted order
        // into a fresh table, and id order must then agree with the
        // string StateKey order everywhere.
        let mut names = names;
        names.sort();
        names.dedup();
        let mut attrs = attrs;
        attrs.sort();
        attrs.dedup();
        let table = Interner::new();
        let entities: Vec<EntityName> = names
            .iter()
            .map(|n| EntityName::device("dc1", n.as_str()))
            .collect();
        let ids: Vec<_> = entities.iter().map(|e| table.intern(e)).collect();
        let mut pairs: Vec<(StateKey, VarId)> = Vec::new();
        for (e, id) in entities.iter().zip(&ids) {
            for &ai in &attrs {
                let attr = Attribute::catalogue()[ai];
                pairs.push((StateKey::new(e.clone(), attr), VarId::new(*id, attr)));
            }
        }
        let mut by_key = pairs.clone();
        by_key.sort_by(|a, b| a.0.cmp(&b.0));
        let mut by_vid = pairs;
        by_vid.sort_by_key(|a| a.1);
        prop_assert_eq!(by_key, by_vid);
    }

    #[test]
    fn lock_arbitration_is_total(
        holder_pri in prop_oneof![Just(LockPriority::Low), Just(LockPriority::High)],
        req_pri in prop_oneof![Just(LockPriority::Low), Just(LockPriority::High)],
        same_app in any::<bool>(),
        now_ms in 0..10_000_000u64,
        expires in proptest::option::of(0..10_000_000u64),
    ) {
        let holder = AppId::new("holder");
        let requestor = if same_app { holder.clone() } else { AppId::new("other") };
        let rec = LockRecord::new(
            holder.clone(),
            holder_pri,
            SimTime::ZERO,
            expires.map(SimTime::from_millis),
        );
        let now = SimTime::from_millis(now_ms);
        let granted = rec.grants_acquisition(&requestor, req_pri, now);
        // Invariants of the arbitration rules:
        if same_app {
            prop_assert!(granted, "holders always refresh");
        }
        if rec.is_expired(now) {
            prop_assert!(granted, "expired locks are free");
        }
        if !same_app && !rec.is_expired(now) && req_pri <= holder_pri {
            prop_assert!(!granted, "equal/lower priority never preempts");
        }
        if !same_app && !rec.is_expired(now) && req_pri > holder_pri {
            prop_assert!(granted, "strictly higher priority preempts");
        }
    }
}
