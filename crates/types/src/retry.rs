//! Bounded retry with jittered exponential backoff.
//!
//! The paper's §6.2 observation — "because of scale and dynamism, network
//! failures during updates are inevitable" — means every component that
//! talks to something failable (the updater to devices, the monitor to
//! devices, everyone to storage partitions) needs the same retry shape:
//! a *bounded* number of attempts, exponentially spaced, with jitter so
//! synchronized retries don't stampede. [`RetryPolicy`] captures that
//! shape once.
//!
//! The policy is deliberately RNG-free: callers pass a uniform roll in
//! `[0, 1)` drawn from their own seeded generator, so backoff schedules
//! stay deterministic per simulation seed and this crate stays
//! dependency-free.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A bounded retry schedule: up to `max_attempts` tries, exponentially
/// backed off between them, with multiplicative jitter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: SimDuration,
    /// Cap on any single backoff.
    pub max_backoff: SimDuration,
    /// Multiplicative jitter amplitude in `[0, 1]`: the computed backoff
    /// is scaled by a factor uniform in `[1 - j, 1 + j]`.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(200),
            max_backoff: SimDuration::from_secs(5),
            jitter_frac: 0.5,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: fail on the first error.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            jitter_frac: 0.0,
        }
    }

    /// Whether a failed `attempt` (1-based) leaves budget for another try.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// The backoff to wait after failed `attempt` (1-based), given a
    /// uniform jitter roll in `[0, 1)`. Exponential: `base * 2^(attempt-1)`,
    /// capped at `max_backoff`, then jittered by `± jitter_frac`.
    pub fn backoff_after(&self, attempt: u32, jitter_roll: f64) -> SimDuration {
        let doublings = attempt.saturating_sub(1).min(32);
        let raw = self.base_backoff.saturating_mul(1u64 << doublings);
        let capped = raw.min(self.max_backoff);
        let factor = 1.0 + self.jitter_frac * (2.0 * jitter_roll - 1.0);
        SimDuration::from_millis((capped.as_millis() as f64 * factor.max(0.0)).round() as u64)
    }

    /// An upper bound on the total simulated time one operation can spend
    /// backing off under this policy — the "provably bounded" number the
    /// fault-tolerance tests assert against.
    pub fn worst_case_total_backoff(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for attempt in 1..self.max_attempts.max(1) {
            let doublings = attempt.saturating_sub(1).min(32);
            let raw = self.base_backoff.saturating_mul(1u64 << doublings);
            let capped = raw.min(self.max_backoff);
            let worst = SimDuration::from_millis(
                (capped.as_millis() as f64 * (1.0 + self.jitter_frac)).round() as u64,
            );
            total = total + worst;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_millis(450),
            jitter_frac: 0.0,
        };
        assert_eq!(p.backoff_after(1, 0.5), SimDuration::from_millis(100));
        assert_eq!(p.backoff_after(2, 0.5), SimDuration::from_millis(200));
        assert_eq!(p.backoff_after(3, 0.5), SimDuration::from_millis(400));
        assert_eq!(p.backoff_after(4, 0.5), SimDuration::from_millis(450));
        assert_eq!(p.backoff_after(9, 0.5), SimDuration::from_millis(450));
    }

    #[test]
    fn jitter_scales_symmetrically() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(1000),
            max_backoff: SimDuration::from_secs(60),
            jitter_frac: 0.5,
        };
        assert_eq!(p.backoff_after(1, 0.0), SimDuration::from_millis(500));
        assert_eq!(p.backoff_after(1, 0.5), SimDuration::from_millis(1000));
        // roll → 1.0 approaches 1.5x
        assert_eq!(p.backoff_after(1, 0.999), SimDuration::from_millis(1499));
    }

    #[test]
    fn attempts_are_bounded() {
        let p = RetryPolicy::default();
        assert!(p.should_retry(1));
        assert!(p.should_retry(3));
        assert!(!p.should_retry(4));
        assert!(!RetryPolicy::none().should_retry(1));
    }

    #[test]
    fn worst_case_bound_dominates_any_schedule() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_millis(800),
            jitter_frac: 0.3,
        };
        let bound = p.worst_case_total_backoff();
        for roll10 in 0..10 {
            let roll = roll10 as f64 / 10.0;
            let mut total = SimDuration::ZERO;
            for attempt in 1..p.max_attempts {
                total = total + p.backoff_after(attempt, roll);
            }
            assert!(total <= bound, "roll {roll}: {total} > {bound}");
        }
    }
}
