//! The state-variable catalogue (paper Table 2) and the dependency levels of
//! the state dependency model (paper Fig 4).
//!
//! Each [`Attribute`] names one kind of state variable. An attribute knows:
//!
//! * which [`EntityKind`] it applies to,
//! * its [`Permission`] — counters are `ReadOnly` (only the monitor writes
//!   them into the OS), control variables are `ReadWrite` (applications may
//!   propose new values),
//! * its [`DependencyLevel`] — the node of Fig 4 it belongs to. The
//!   dependency *edges* between levels live in `statesman-core::deps`
//!   because they are the heart of the paper's contribution; the catalogue
//!   here only records the level membership.

use crate::entity::EntityKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Who may write a variable (paper Table 2 "Permission" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Permission {
    /// Measured by the monitor only; applications may read but never
    /// propose values (e.g. traffic counters, oper status).
    ReadOnly,
    /// Applications may propose new values through a PS.
    ReadWrite,
}

/// A node in the Fig-4 state dependency model. Levels are per-entity
/// chains; cross-entity edges (e.g. link power depends on the *device*
/// configuration of both endpoints, path setup depends on the routing
/// control of every on-path switch) are expressed in the dependency model
/// itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DependencyLevel {
    /// Device: electrical power (bottom of Fig 4).
    DevicePower,
    /// Device: firmware / boot image ("Operating System Setup").
    OperatingSystemSetup,
    /// Device: management interface, OpenFlow agent, vendor config.
    DeviceConfiguration,
    /// Device: flow–link routing rules, link weights ("Routing Control").
    RoutingControl,
    /// Link: admin/oper interface power ("Link Power").
    LinkPower,
    /// Link: IP assignment, control-plane setup ("Link Interface Config").
    LinkInterfaceConfig,
    /// Path: tunnels and traffic assignment ("Path/Traffic Setup", top).
    PathTrafficSetup,
    /// Measured counters — outside the dependency model ("N/A" rows of
    /// Table 2). Counters are never prerequisites for writes.
    Counter,
    /// Statesman-internal coordination metadata (entity locks, §7.3).
    /// Like counters, outside the Fig-4 chains; locks gate *who* may write,
    /// not *whether* a variable is controllable.
    Meta,
}

impl fmt::Display for DependencyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DependencyLevel::DevicePower => "device-power",
            DependencyLevel::OperatingSystemSetup => "operating-system-setup",
            DependencyLevel::DeviceConfiguration => "device-configuration",
            DependencyLevel::RoutingControl => "routing-control",
            DependencyLevel::LinkPower => "link-power",
            DependencyLevel::LinkInterfaceConfig => "link-interface-config",
            DependencyLevel::PathTrafficSetup => "path-traffic-setup",
            DependencyLevel::Counter => "counter",
            DependencyLevel::Meta => "meta",
        };
        f.write_str(s)
    }
}

macro_rules! attribute_catalogue {
    (
        $(
            $(#[$doc:meta])*
            $variant:ident {
                wire: $wire:literal,
                entity: $entity:ident,
                level: $level:ident,
                perm: $perm:ident
            }
        ),+ $(,)?
    ) => {
        /// One kind of state variable — the full Table-2 catalogue plus the
        /// lock meta-attribute. See module docs.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        pub enum Attribute {
            $( $(#[$doc])* $variant, )+
        }

        impl Attribute {
            /// Every attribute, in catalogue order.
            pub const fn catalogue() -> &'static [Attribute] {
                &[ $(Attribute::$variant,)+ ]
            }

            /// The stable wire name used by the HTTP API and storage keys.
            pub const fn wire_name(self) -> &'static str {
                match self {
                    $(Attribute::$variant => $wire,)+
                }
            }

            /// Parse a wire name back to an attribute.
            pub fn parse_wire_name(s: &str) -> Option<Attribute> {
                match s {
                    $($wire => Some(Attribute::$variant),)+
                    _ => None,
                }
            }

            /// Which entity kind this attribute applies to.
            pub const fn entity_kind(self) -> EntityKind {
                match self {
                    $(Attribute::$variant => EntityKind::$entity,)+
                }
            }

            /// The Fig-4 level this attribute belongs to.
            pub const fn dependency_level(self) -> DependencyLevel {
                match self {
                    $(Attribute::$variant => DependencyLevel::$level,)+
                }
            }

            /// Read-only counter vs application-writable control variable.
            pub const fn permission(self) -> Permission {
                match self {
                    $(Attribute::$variant => Permission::$perm,)+
                }
            }
        }
    };
}

attribute_catalogue! {
    // ---- Path entity (level: Path/Traffic Setup) -------------------------
    /// The ordered list of switches a tunnel traverses (Table 2 "Switches
    /// on path").
    PathSwitches { wire: "PathSwitches", entity: Path, level: PathTrafficSetup, perm: ReadWrite },
    /// MPLS/VLAN encapsulation configuration for the tunnel.
    PathEncapConfig { wire: "PathEncapConfig", entity: Path, level: PathTrafficSetup, perm: ReadWrite },
    /// Traffic volume assigned onto the path by TE (Mbps). Writable: TE
    /// proposes allocations; the updater translates them to routing states.
    PathTrafficAllocation { wire: "PathTrafficAllocation", entity: Path, level: PathTrafficSetup, perm: ReadWrite },

    // ---- Link entity ------------------------------------------------------
    /// IP address assignment on the link interface.
    LinkIpAssignment { wire: "LinkIpAssignment", entity: Link, level: LinkInterfaceConfig, perm: ReadWrite },
    /// Which control plane owns the link: OpenFlow agent or BGP session
    /// (Table 2 "Control plane setup").
    LinkControlPlane { wire: "LinkControlPlane", entity: Link, level: LinkInterfaceConfig, perm: ReadWrite },
    /// Administrative up/down of the interface — the variable the
    /// failure-mitigation application writes to shut a flaky link (§7.1).
    LinkAdminPower { wire: "LinkAdminPower", entity: Link, level: LinkPower, perm: ReadWrite },
    /// Operational up/down as observed (read-only; reflects both admin
    /// state and physical health).
    LinkOperStatus { wire: "LinkOperStatus", entity: Link, level: LinkPower, perm: ReadOnly },
    /// Directed traffic load A→B, Mbps (counter).
    LinkTrafficLoadAB { wire: "LinkTrafficLoadAB", entity: Link, level: Counter, perm: ReadOnly },
    /// Directed traffic load B→A, Mbps (counter).
    LinkTrafficLoadBA { wire: "LinkTrafficLoadBA", entity: Link, level: Counter, perm: ReadOnly },
    /// Packet drop rate (fraction; counter).
    LinkPacketDropRate { wire: "LinkPacketDropRate", entity: Link, level: Counter, perm: ReadOnly },
    /// Frame-Check-Sequence error rate (fraction; counter) — what the
    /// failure-mitigation application watches (§7.1).
    LinkFcsErrorRate { wire: "LinkFcsErrorRate", entity: Link, level: Counter, perm: ReadOnly },

    // ---- Device entity ----------------------------------------------------
    /// Flow→link routing rules, protocol-agnostic (Table 2 "Flow-link
    /// routing rules"; maps to OpenFlow rules or BGP announcements).
    DeviceRoutingRules { wire: "DeviceRoutingRules", entity: Device, level: RoutingControl, perm: ReadWrite },
    /// ECMP/IGP link weight allocation.
    DeviceLinkWeights { wire: "DeviceLinkWeights", entity: Device, level: RoutingControl, perm: ReadWrite },
    /// Management interface setup (vendor API reachability).
    DeviceMgmtInterface { wire: "DeviceMgmtInterface", entity: Device, level: DeviceConfiguration, perm: ReadWrite },
    /// Whether the device's OpenFlow agent is configured/running.
    DeviceOpenFlowAgent { wire: "DeviceOpenFlowAgent", entity: Device, level: DeviceConfiguration, perm: ReadWrite },
    /// Running firmware version — the variable the switch-upgrade
    /// application proposes new values of (§7.1).
    DeviceFirmwareVersion { wire: "DeviceFirmwareVersion", entity: Device, level: OperatingSystemSetup, perm: ReadWrite },
    /// Boot image selection.
    DeviceBootImage { wire: "DeviceBootImage", entity: Device, level: OperatingSystemSetup, perm: ReadWrite },
    /// Administrative power on/off.
    DeviceAdminPower { wire: "DeviceAdminPower", entity: Device, level: DevicePower, perm: ReadWrite },
    /// Whether the power distribution unit is reachable (read-only).
    DevicePowerUnitReachable { wire: "DevicePowerUnitReachable", entity: Device, level: DevicePower, perm: ReadOnly },
    /// CPU utilization (fraction; counter).
    DeviceCpuUtilization { wire: "DeviceCpuUtilization", entity: Device, level: Counter, perm: ReadOnly },
    /// Memory utilization (fraction; counter).
    DeviceMemoryUtilization { wire: "DeviceMemoryUtilization", entity: Device, level: Counter, perm: ReadOnly },

    // ---- Statesman coordination metadata -----------------------------------
    /// Per-entity priority lock (§7.3). Stored as ordinary replicated state
    /// so locks survive checker restarts and are visible to all apps.
    EntityLock { wire: "EntityLock", entity: Device, level: Meta, perm: ReadWrite },
}

impl Attribute {
    /// True for measured counters (the "N/A (counters)" rows of Table 2).
    pub const fn is_counter(self) -> bool {
        matches!(self.dependency_level(), DependencyLevel::Counter)
    }

    /// True for the lock meta-attribute.
    pub const fn is_lock(self) -> bool {
        matches!(self, Attribute::EntityLock)
    }

    /// True if applications may legally include this attribute in a
    /// proposed state: it must be ReadWrite. (Locks are writable — lock
    /// acquisition is itself a proposal the checker arbitrates.)
    pub const fn is_proposable(self) -> bool {
        matches!(self.permission(), Permission::ReadWrite)
    }

    /// All attributes applying to a given entity kind.
    ///
    /// Note [`Attribute::EntityLock`] is declared against `Device` in the
    /// catalogue but is accepted on links too (locking happens "at the
    /// level of individual switches and links", §4.2); see
    /// [`Attribute::applies_to`].
    pub fn for_entity(kind: EntityKind) -> impl Iterator<Item = Attribute> {
        Self::catalogue()
            .iter()
            .copied()
            .filter(move |a| a.entity_kind() == kind)
    }

    /// Whether writing this attribute against an entity of `kind` is
    /// well-formed.
    pub fn applies_to(self, kind: EntityKind) -> bool {
        if self.is_lock() {
            // Locks apply to devices and links (§4.2), not paths.
            return matches!(kind, EntityKind::Device | EntityKind::Link);
        }
        self.entity_kind() == kind
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_are_unique() {
        let mut names: Vec<_> = Attribute::catalogue()
            .iter()
            .map(|a| a.wire_name())
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn counters_are_read_only() {
        for a in Attribute::catalogue() {
            if a.is_counter() {
                assert_eq!(a.permission(), Permission::ReadOnly, "{a}");
            }
        }
    }

    #[test]
    fn oper_status_and_power_reachability_are_read_only() {
        assert_eq!(Attribute::LinkOperStatus.permission(), Permission::ReadOnly);
        assert_eq!(
            Attribute::DevicePowerUnitReachable.permission(),
            Permission::ReadOnly
        );
    }

    #[test]
    fn firmware_is_proposable_device_variable() {
        let a = Attribute::DeviceFirmwareVersion;
        assert!(a.is_proposable());
        assert_eq!(a.entity_kind(), EntityKind::Device);
        assert_eq!(a.dependency_level(), DependencyLevel::OperatingSystemSetup);
    }

    #[test]
    fn lock_applies_to_devices_and_links_only() {
        assert!(Attribute::EntityLock.applies_to(EntityKind::Device));
        assert!(Attribute::EntityLock.applies_to(EntityKind::Link));
        assert!(!Attribute::EntityLock.applies_to(EntityKind::Path));
    }

    #[test]
    fn per_entity_filters_partition_the_catalogue() {
        let d = Attribute::for_entity(EntityKind::Device).count();
        let l = Attribute::for_entity(EntityKind::Link).count();
        let p = Attribute::for_entity(EntityKind::Path).count();
        assert_eq!(d + l + p, Attribute::catalogue().len());
        assert!(p >= 3);
        assert!(l >= 8);
        assert!(d >= 10);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert_eq!(Attribute::parse_wire_name("NotAVariable"), None);
    }
}
