//! Error taxonomy shared across the workspace.
//!
//! The paper motivates Statesman partly by how messy direct network
//! interaction is: "When a command to a switch takes a long time, the
//! application has to decide when to retry ... When a command fails, the
//! application has to parse the error code and decide how to react" (§2.1).
//! This module gives those failure classes precise types so the monitor and
//! updater can react mechanically and applications never see them at all.

use crate::entity::EntityName;
use crate::state::{Pool, StateKey};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result alias used across the workspace.
pub type StateResult<T> = Result<T, StateError>;

/// Every failure mode a Statesman component can surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StateError {
    /// The storage service has no row for this key in the requested pool.
    NotFound {
        /// The missing key.
        key: StateKey,
        /// The pool that was searched.
        pool: Pool,
    },
    /// A storage partition could not commit (no quorum / leader lost).
    StorageUnavailable {
        /// The partition (datacenter) that failed.
        partition: String,
        /// Detail.
        reason: String,
    },
    /// The proxy could not route an entity to a partition.
    UnroutableEntity {
        /// The entity that could not be routed.
        entity: EntityName,
    },
    /// A device did not answer a protocol request in time (§6.2: "the
    /// device's response can be slow and dominate the application's
    /// control loop").
    DeviceTimeout {
        /// The unresponsive device.
        device: String,
        /// The protocol operation that timed out.
        operation: String,
    },
    /// A device rejected or failed a command (§6.2: failures during update
    /// are inevitable).
    CommandFailed {
        /// The device the command was sent to.
        device: String,
        /// The command rendering.
        command: String,
        /// Device-reported error code/detail.
        code: String,
    },
    /// The updater has no command template for this (device model,
    /// protocol, action) combination.
    NoCommandTemplate {
        /// The device model.
        model: String,
        /// The attribute whose change had no template.
        attribute: String,
    },
    /// A malformed request (bad wire names, wrong entity kind, read-only
    /// writes, missing parameters).
    InvalidRequest {
        /// Detail.
        reason: String,
    },
    /// An HTTP-level protocol error (used by `statesman-httpapi`).
    Protocol {
        /// Detail.
        reason: String,
    },
    /// An I/O error, stringified (sockets, etc.). Stored as text so the
    /// error type stays `Clone + Serialize`.
    Io {
        /// Stringified `std::io::Error`.
        reason: String,
    },
    /// The service shed the request under admission control (queue full /
    /// connection limit). Retryable by definition: the request was never
    /// looked at, so reissuing it after the advised backoff is safe.
    Overloaded {
        /// How long the caller should wait before retrying.
        retry_after_ms: u64,
    },
}

impl StateError {
    /// Convenience constructor for invalid requests.
    pub fn invalid(reason: impl Into<String>) -> Self {
        StateError::InvalidRequest {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for protocol errors.
    pub fn protocol(reason: impl Into<String>) -> Self {
        StateError::Protocol {
            reason: reason.into(),
        }
    }

    /// True if the operation is worth retrying as-is (transient failure):
    /// storage unavailability, device timeouts, command failures, and I/O
    /// errors are transient; the rest are permanent until the request or
    /// the network state changes.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StateError::StorageUnavailable { .. }
                | StateError::DeviceTimeout { .. }
                | StateError::CommandFailed { .. }
                | StateError::Io { .. }
                | StateError::Overloaded { .. }
        )
    }

    /// The retryable/fatal split every retry path (monitor, updater,
    /// storage) keys on. Retryable = the same request may succeed if
    /// reissued after a backoff, because the cause is elsewhere in the
    /// system and transient. Everything else is fatal-as-issued: retrying
    /// without changing the request (or the world) cannot succeed, so
    /// retry loops must give up immediately rather than burn their
    /// attempt budget.
    ///
    /// Today this coincides with [`StateError::is_transient`]; it is a
    /// separate method because the contract differs — `is_transient`
    /// describes the failure, `is_retryable` prescribes the reaction.
    pub fn is_retryable(&self) -> bool {
        self.is_transient()
    }

    /// Complement of [`StateError::is_retryable`], for call sites that
    /// read better in the negative.
    pub fn is_fatal(&self) -> bool {
        !self.is_retryable()
    }
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::NotFound { key, pool } => write!(f, "{key} not found in {pool}"),
            StateError::StorageUnavailable { partition, reason } => {
                write!(f, "storage partition {partition} unavailable: {reason}")
            }
            StateError::UnroutableEntity { entity } => {
                write!(f, "no storage partition owns {entity}")
            }
            StateError::DeviceTimeout { device, operation } => {
                write!(f, "device {device} timed out on {operation}")
            }
            StateError::CommandFailed {
                device,
                command,
                code,
            } => write!(f, "device {device} failed `{command}`: {code}"),
            StateError::NoCommandTemplate { model, attribute } => {
                write!(f, "no command template for {attribute} on model {model}")
            }
            StateError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            StateError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            StateError::Io { reason } => write!(f, "io error: {reason}"),
            StateError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms}ms")
            }
        }
    }
}

impl std::error::Error for StateError {}

impl From<std::io::Error> for StateError {
    fn from(e: std::io::Error) -> Self {
        StateError::Io {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityName;
    use crate::vars::Attribute;

    #[test]
    fn transience_classification() {
        assert!(StateError::DeviceTimeout {
            device: "agg-1-1".into(),
            operation: "snmp-get".into()
        }
        .is_transient());
        assert!(StateError::StorageUnavailable {
            partition: "dc1".into(),
            reason: "no quorum".into()
        }
        .is_transient());
        assert!(!StateError::invalid("bad pool").is_transient());
        assert!(!StateError::NoCommandTemplate {
            model: "vendorX-9k".into(),
            attribute: "DeviceFirmwareVersion".into()
        }
        .is_transient());
    }

    #[test]
    fn retryable_tracks_transient_and_fatal_is_its_complement() {
        let retryable = StateError::StorageUnavailable {
            partition: "dc1".into(),
            reason: "no quorum".into(),
        };
        assert!(retryable.is_retryable());
        assert!(!retryable.is_fatal());
        let fatal = StateError::NoCommandTemplate {
            model: "vendorX-9k".into(),
            attribute: "DeviceFirmwareVersion".into(),
        };
        assert!(!fatal.is_retryable());
        assert!(fatal.is_fatal());
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer gone");
        let e: StateError = io.into();
        assert!(e.is_transient());
        assert!(e.to_string().contains("peer gone"));
    }

    #[test]
    fn display_includes_key_and_pool() {
        let e = StateError::NotFound {
            key: StateKey::new(
                EntityName::device("dc1", "tor-1-1"),
                Attribute::DeviceAdminPower,
            ),
            pool: Pool::Observed,
        };
        let s = e.to_string();
        assert!(s.contains("tor-1-1"), "{s}");
        assert!(s.contains("OS"), "{s}");
    }
}
