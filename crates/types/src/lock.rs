//! Priority-based entity locks (paper §4.2, §7.3).
//!
//! The checker resolves PS–TS conflicts "with one of two configurable
//! mechanisms: last-writer-wins or priority-based locking" at the level of
//! individual switches and links. §7.3 shows the mechanism in action: the
//! inter-DC TE application holds a *low-priority* lock over each border
//! router during normal operation; when the switch-upgrade application
//! wants to upgrade a router it acquires the *high-priority* lock, TE then
//! fails to re-acquire its low-priority lock and drains traffic away, the
//! upgrade proceeds at zero load, and on release TE re-acquires and moves
//! traffic back.
//!
//! A lock is stored as an ordinary replicated state row
//! ([`Attribute::EntityLock`](crate::Attribute::EntityLock)) so that it
//! survives checker restarts and is visible to every application through
//! the same read API as the rest of the network state. Locks carry a lease
//! expiry so a crashed application cannot wedge an entity forever.

use crate::state::AppId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Lock priority. Higher priority preempts lower on acquisition attempts;
/// an entity holding a high-priority lock refuses low-priority acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LockPriority {
    /// Normal-operation lock (e.g. TE holding routers it steers traffic
    /// through).
    Low,
    /// Maintenance lock (e.g. switch-upgrade taking a router down).
    High,
}

impl fmt::Display for LockPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LockPriority::Low => "low",
            LockPriority::High => "high",
        })
    }
}

/// A granted lock over one entity.
///
/// ```
/// use statesman_types::{AppId, LockPriority, LockRecord, SimTime};
///
/// let te_lock = LockRecord::new(
///     AppId::new("inter-dc-te"), LockPriority::Low, SimTime::ZERO, None);
/// // High priority preempts (the Fig-10 dance)...
/// assert!(te_lock.grants_acquisition(
///     &AppId::new("switch-upgrade"), LockPriority::High, SimTime::ZERO));
/// // ...but equal priority from another app does not.
/// assert!(!te_lock.grants_acquisition(
///     &AppId::new("other"), LockPriority::Low, SimTime::ZERO));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LockRecord {
    /// The application holding the lock.
    pub holder: AppId,
    /// The lock's priority class.
    pub priority: LockPriority,
    /// When the lock was granted (simulated time).
    pub granted_at: SimTime,
    /// Optional lease expiry; `None` means the lock is held until released.
    pub expires_at: Option<SimTime>,
}

impl LockRecord {
    /// Build a lock record.
    pub fn new(
        holder: AppId,
        priority: LockPriority,
        granted_at: SimTime,
        expires_at: Option<SimTime>,
    ) -> Self {
        LockRecord {
            holder,
            priority,
            granted_at,
            expires_at,
        }
    }

    /// True if the lease has lapsed at `now` (expired locks are treated as
    /// released by the checker).
    pub fn is_expired(&self, now: SimTime) -> bool {
        match self.expires_at {
            Some(t) => now >= t,
            None => false,
        }
    }

    /// Whether `requestor` may take/refresh the lock at `requested`
    /// priority while this record is in force at time `now`.
    ///
    /// Rules (from §7.3's behaviour):
    /// * the current holder may always refresh or escalate its own lock;
    /// * anyone may take an expired lock;
    /// * a strictly higher-priority request preempts a live lock;
    /// * an equal- or lower-priority request from another app is refused.
    pub fn grants_acquisition(
        &self,
        requestor: &AppId,
        requested: LockPriority,
        now: SimTime,
    ) -> bool {
        if self.is_expired(now) || &self.holder == requestor {
            return true;
        }
        requested > self.priority
    }
}

impl fmt::Display for LockRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} since {}",
            self.holder, self.priority, self.granted_at
        )?;
        if let Some(t) = self.expires_at {
            write!(f, " until {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn app(s: &str) -> AppId {
        AppId::new(s)
    }

    #[test]
    fn holder_can_always_refresh() {
        let l = LockRecord::new(app("te"), LockPriority::Low, SimTime::ZERO, None);
        assert!(l.grants_acquisition(&app("te"), LockPriority::Low, SimTime::from_mins(5)));
        assert!(l.grants_acquisition(&app("te"), LockPriority::High, SimTime::from_mins(5)));
    }

    #[test]
    fn high_preempts_low_but_not_vice_versa() {
        let low = LockRecord::new(app("te"), LockPriority::Low, SimTime::ZERO, None);
        assert!(low.grants_acquisition(&app("upgrade"), LockPriority::High, SimTime::ZERO));
        assert!(!low.grants_acquisition(&app("upgrade"), LockPriority::Low, SimTime::ZERO));

        let high = LockRecord::new(app("upgrade"), LockPriority::High, SimTime::ZERO, None);
        assert!(!high.grants_acquisition(&app("te"), LockPriority::Low, SimTime::ZERO));
        assert!(!high.grants_acquisition(&app("te"), LockPriority::High, SimTime::ZERO));
    }

    #[test]
    fn expiry_releases_the_lock() {
        let expiry = SimTime::ZERO + SimDuration::from_mins(10);
        let l = LockRecord::new(app("te"), LockPriority::High, SimTime::ZERO, Some(expiry));
        assert!(!l.is_expired(SimTime::from_mins(9)));
        assert!(l.is_expired(expiry));
        assert!(l.grants_acquisition(&app("other"), LockPriority::Low, SimTime::from_mins(10)));
        assert!(!l.grants_acquisition(&app("other"), LockPriority::Low, SimTime::from_mins(9)));
    }

    #[test]
    fn lock_displays_holder_and_lease() {
        let l = LockRecord::new(
            app("upgrade"),
            LockPriority::High,
            SimTime::from_mins(1),
            Some(SimTime::from_mins(2)),
        );
        let s = l.to_string();
        assert!(s.contains("upgrade@high"), "{s}");
        assert!(s.contains("until"), "{s}");
    }
}
