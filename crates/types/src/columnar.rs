//! The columnar row store: dense slot-indexed columns over an arena.
//!
//! Since PR 3/PR 4 the state plane's access pattern is "dense
//! [`VarId`]-keyed rows, mutated via small deltas" — FlexState's case for
//! matching state layout to access pattern applies directly. This module
//! is the layout: one [`Column`] per pool, a dense `Vec` of slots indexed
//! by the process-wide [`SlotId`](crate::intern::SlotId) space
//! (append-only, never reused), row payloads packed contiguously in a
//! chunked [`RowArena`], tombstone deletes that clear an occupancy bit
//! without reclaiming the slot, and a bitmap-driven iterator so full scans
//! touch only live rows.
//!
//! Nothing here is wire-visible: columns serialize through the same
//! string-keyed, key-sorted snapshots as the hash maps they replace, and
//! the equivalence suites assert bit-equal reads against a hashmap
//! reference across interleaved upserts, deletes, and compaction
//! crossings.

use crate::intern::{slot_registry, SlotId, VarId};
use crate::state::{NetworkState, Pool};
use crate::value::Value;

/// Rows per arena chunk. Chunks are allocated whole and never moved, so
/// row references stay valid across pushes while values still sit
/// contiguously in blocks of this many rows.
const ARENA_CHUNK: usize = 4096;

/// Sentinel for "this slot has never been allocated an arena row".
const NO_ROW: u32 = u32::MAX;

/// A chunked, append-only arena of row payloads. Indices are stable for
/// the arena's lifetime; rows within a chunk are contiguous in memory.
#[derive(Debug, Clone, Default)]
pub struct RowArena {
    chunks: Vec<Vec<NetworkState>>,
    len: usize,
}

impl RowArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocate chunk storage for `additional` more rows, so a bulk
    /// fill never reallocates the chunk table mid-append.
    fn reserve(&mut self, additional: usize) {
        let free = self
            .chunks
            .last()
            .map(|c| ARENA_CHUNK - c.len())
            .unwrap_or(0);
        let needed = additional.saturating_sub(free).div_ceil(ARENA_CHUNK);
        self.chunks.reserve(needed);
    }

    /// Append a row, returning its stable index.
    fn push(&mut self, row: NetworkState) -> u32 {
        if self
            .chunks
            .last()
            .map(|c| c.len() == ARENA_CHUNK)
            .unwrap_or(true)
        {
            self.chunks.push(Vec::with_capacity(ARENA_CHUNK));
        }
        let idx = self.len;
        self.chunks.last_mut().expect("chunk just pushed").push(row);
        self.len += 1;
        u32::try_from(idx).expect("row arena overflow")
    }

    fn get(&self, idx: u32) -> &NetworkState {
        &self.chunks[idx as usize / ARENA_CHUNK][idx as usize % ARENA_CHUNK]
    }

    fn get_mut(&mut self, idx: u32) -> &mut NetworkState {
        &mut self.chunks[idx as usize / ARENA_CHUNK][idx as usize % ARENA_CHUNK]
    }

    /// Rows ever allocated (tombstoned rows keep their storage).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes reserved for row storage (chunk capacity, not counting
    /// per-row heap payloads — see [`Column::approx_bytes`] for the
    /// payload-inclusive figure).
    pub fn reserved_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<NetworkState>())
            .sum()
    }
}

/// Estimate of one row's heap payload beyond `size_of::<NetworkState>()`:
/// the entity/writer strings and the value's owned storage. Kept cheap and
/// deliberately approximate — it feeds a memory *gauge*, not an allocator.
fn row_heap_bytes(row: &NetworkState) -> usize {
    let value = match &row.value {
        Value::Text(s) => s.len(),
        Value::Routes(r) => r.len() * std::mem::size_of::<crate::value::FlowLinkRule>(),
        Value::DeviceList(d) => d.iter().map(|n| n.as_str().len() + 24).sum(),
        Value::Lock(_) => 64,
        _ => 0,
    };
    row.entity.to_string().len() + row.writer.as_str().len() + value
}

/// One pool's columnar store: a dense slot → row mapping over a
/// [`RowArena`], with an occupancy bitmap for fast live-row iteration.
///
/// Slot ids come from the process-wide
/// [`slot_registry`](crate::intern::slot_registry), so every column (and
/// every columnar mirror in the control loop) agrees on row addressing.
/// Deletes are tombstones: the occupancy bit clears, the slot and its
/// arena row are never reclaimed, and a re-inserted variable lands back
/// in its original slot.
#[derive(Debug, Clone)]
pub struct Column {
    pool: Pool,
    /// Slot → arena row ([`NO_ROW`] until the slot first holds a value).
    slots: Vec<u32>,
    /// Occupancy bitmap, one bit per slot.
    occupied: Vec<u64>,
    arena: RowArena,
    /// Live (occupied) rows.
    len: usize,
    /// Running estimate of live rows' heap payload bytes.
    heap_bytes: usize,
}

impl Column {
    /// An empty column for one pool.
    pub fn new(pool: Pool) -> Self {
        Column {
            pool,
            slots: Vec::new(),
            occupied: Vec::new(),
            arena: RowArena::new(),
            len: 0,
            heap_bytes: 0,
        }
    }

    /// The pool this column stores.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    fn ensure_slot(&mut self, slot: SlotId) {
        let idx = slot.index();
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, NO_ROW);
        }
        let word = idx / 64;
        if word >= self.occupied.len() {
            self.occupied.resize(word + 1, 0);
        }
    }

    fn is_occupied(&self, slot: SlotId) -> bool {
        let idx = slot.index();
        self.occupied
            .get(idx / 64)
            .map(|w| w & (1 << (idx % 64)) != 0)
            .unwrap_or(false)
    }

    fn set_occupied(&mut self, slot: SlotId, on: bool) {
        let idx = slot.index();
        let bit = 1u64 << (idx % 64);
        if on {
            self.occupied[idx / 64] |= bit;
        } else {
            self.occupied[idx / 64] &= !bit;
        }
    }

    /// The row at `slot`, if live.
    pub fn get_slot(&self, slot: SlotId) -> Option<&NetworkState> {
        if !self.is_occupied(slot) {
            return None;
        }
        Some(self.arena.get(self.slots[slot.index()]))
    }

    /// The row for `var`, if live (resolves the slot through the
    /// process-wide registry without minting).
    pub fn get_var(&self, var: VarId) -> Option<&NetworkState> {
        self.get_slot(slot_registry().lookup(&self.pool, var)?)
    }

    /// Pre-size the slot vector and occupancy bitmap up to `slot_high`
    /// slots and reserve arena storage for `rows` incoming rows — the
    /// bulk-ingest companion of [`Column::upsert_at`]: after one reserve,
    /// a fill of pre-minted slots below `slot_high` never grows the slot
    /// table incrementally.
    pub fn reserve(&mut self, slot_high: usize, rows: usize) {
        if slot_high > self.slots.len() {
            self.slots.resize(slot_high, NO_ROW);
        }
        let words = slot_high.div_ceil(64);
        if words > self.occupied.len() {
            self.occupied.resize(words, 0);
        }
        self.arena.reserve(rows);
    }

    /// Insert or replace the row for `var`, minting its slot on first
    /// sight. Returns the slot written.
    pub fn upsert(&mut self, row: NetworkState) -> SlotId {
        let slot = slot_registry().slot_of(&self.pool, row.var_id());
        self.upsert_at(slot, row);
        slot
    }

    /// Insert or replace the row at an already-minted slot.
    pub fn upsert_at(&mut self, slot: SlotId, row: NetworkState) {
        self.ensure_slot(slot);
        let new_bytes = row_heap_bytes(&row);
        let idx = self.slots[slot.index()];
        if idx == NO_ROW {
            self.slots[slot.index()] = self.arena.push(row);
        } else {
            if self.is_occupied(slot) {
                self.heap_bytes -= row_heap_bytes(self.arena.get(idx));
                self.len -= 1;
            }
            *self.arena.get_mut(idx) = row;
        }
        self.heap_bytes += new_bytes;
        self.len += 1;
        self.set_occupied(slot, true);
    }

    /// Tombstone the row for `var`: clears the occupancy bit and returns
    /// the removed row. The slot and arena storage stay allocated (slots
    /// are never reused for a different variable).
    pub fn remove_var(&mut self, var: VarId) -> Option<NetworkState> {
        self.remove_slot(slot_registry().lookup(&self.pool, var)?)
    }

    /// Tombstone the row at `slot`.
    pub fn remove_slot(&mut self, slot: SlotId) -> Option<NetworkState> {
        if !self.is_occupied(slot) {
            return None;
        }
        let row = self.arena.get(self.slots[slot.index()]).clone();
        self.heap_bytes -= row_heap_bytes(&row);
        self.len -= 1;
        self.set_occupied(slot, false);
        Some(row)
    }

    /// Tombstone every row (occupancy reset; slots and arena storage are
    /// retained, so a rebuild writes straight back into its slots).
    pub fn clear(&mut self) {
        for w in &mut self.occupied {
            *w = 0;
        }
        self.len = 0;
        self.heap_bytes = 0;
    }

    /// Live rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no row is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever touched by this column (the never-shrinking high-water
    /// mark the reuse-never property asserts on).
    pub fn slot_high_water(&self) -> usize {
        self.slots.len()
    }

    /// Approximate resident bytes: slot vector + bitmap + arena reservation
    /// + live rows' heap payloads. Feeds the `state_bytes_per_var` gauge.
    pub fn approx_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<u32>()
            + self.occupied.capacity() * std::mem::size_of::<u64>()
            + self.arena.reserved_bytes()
            + self.heap_bytes
    }

    /// Iterate live rows with their slots, in slot order (bitmap-driven:
    /// skips tombstones and never-touched slots a word at a time).
    pub fn iter(&self) -> ColumnIter<'_> {
        ColumnIter {
            col: self,
            word: 0,
            bits: self.occupied.first().copied().unwrap_or(0),
        }
    }

    /// Iterate live rows in slot order.
    pub fn rows(&self) -> impl Iterator<Item = &NetworkState> {
        self.iter().map(|(_, r)| r)
    }
}

/// Bitmap-driven iterator over a column's live rows. See [`Column::iter`].
#[derive(Debug)]
pub struct ColumnIter<'a> {
    col: &'a Column,
    word: usize,
    bits: u64,
}

impl<'a> Iterator for ColumnIter<'a> {
    type Item = (SlotId, &'a NetworkState);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                let slot = SlotId((self.word * 64 + bit) as u32);
                let idx = self.col.slots[slot.index()];
                return Some((slot, self.col.arena.get(idx)));
            }
            self.word += 1;
            if self.word >= self.col.occupied.len() {
                return None;
            }
            self.bits = self.col.occupied[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityName;
    use crate::state::AppId;
    use crate::time::SimTime;
    use crate::vars::Attribute;

    fn row(dev: &str, fw: &str) -> NetworkState {
        NetworkState::new(
            EntityName::device("dc-col", dev),
            Attribute::DeviceFirmwareVersion,
            Value::text(fw),
            SimTime::ZERO,
            AppId::monitor(),
        )
    }

    #[test]
    fn upsert_get_remove_round_trip() {
        let mut c = Column::new(Pool::Observed);
        let a = row("a", "1");
        let slot = c.upsert(a.clone());
        assert_eq!(c.get_slot(slot), Some(&a));
        assert_eq!(c.get_var(a.var_id()), Some(&a));
        assert_eq!(c.len(), 1);

        // Replacement keeps the slot and the live count.
        let a2 = row("a", "2");
        assert_eq!(c.upsert(a2.clone()), slot);
        assert_eq!(c.get_slot(slot), Some(&a2));
        assert_eq!(c.len(), 1);

        // Tombstone: gone, but the slot survives and is reused on
        // re-insert of the same variable.
        assert_eq!(c.remove_var(a.var_id()), Some(a2));
        assert_eq!(c.get_slot(slot), None);
        assert_eq!(c.len(), 0);
        let high = c.slot_high_water();
        assert_eq!(c.upsert(a.clone()), slot);
        assert_eq!(c.slot_high_water(), high, "no new slot on re-insert");
    }

    #[test]
    fn iteration_skips_tombstones() {
        let mut c = Column::new(Pool::Target);
        for i in 0..130 {
            c.upsert(row(&format!("d{i}"), "1"));
        }
        // Tombstone a spread of slots across bitmap words.
        for i in [0, 63, 64, 127, 129] {
            c.remove_var(row(&format!("d{i}"), "1").var_id());
        }
        assert_eq!(c.len(), 125);
        assert_eq!(c.rows().count(), 125);
        assert!(c.rows().all(|r| !["d0", "d63", "d64", "d127", "d129"]
            .contains(&r.entity.as_device().unwrap().as_str())));
        // Slot order is ascending.
        let slots: Vec<u32> = c.iter().map(|(s, _)| s.0).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn clear_retains_slots_and_tracks_bytes() {
        let mut c = Column::new(Pool::Proposed(AppId::new("col-test")));
        c.upsert(row("a", "some-firmware"));
        c.upsert(row("b", "some-firmware"));
        assert!(c.approx_bytes() > 0);
        let high = c.slot_high_water();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.slot_high_water(), high);
        assert_eq!(c.rows().count(), 0);
        c.upsert(row("a", "x"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reserve_then_bulk_fill_reads_back_identically() {
        let mut a = Column::new(Pool::Observed);
        let mut b = Column::new(Pool::Observed);
        let rows: Vec<NetworkState> = (0..ARENA_CHUNK + 50)
            .map(|i| row(&format!("bulk{i}"), "1"))
            .collect();
        let slots = slot_registry().slots_of_batch(
            &Pool::Observed,
            &rows.iter().map(|r| r.var_id()).collect::<Vec<_>>(),
        );
        let high = slots.iter().map(|s| s.index() + 1).max().unwrap();
        a.reserve(high, rows.len());
        for (slot, r) in slots.iter().zip(&rows) {
            a.upsert_at(*slot, r.clone());
        }
        for r in &rows {
            b.upsert(r.clone());
        }
        assert_eq!(a.len(), b.len());
        let av: Vec<&NetworkState> = a.rows().collect();
        let bv: Vec<&NetworkState> = b.rows().collect();
        assert_eq!(av, bv, "bulk fill is bit-identical to per-row upserts");
    }

    #[test]
    fn arena_chunks_are_stable_past_one_chunk() {
        let mut c = Column::new(Pool::Observed);
        let n = ARENA_CHUNK + 10;
        for i in 0..n {
            c.upsert(row(&format!("big{i}"), "1"));
        }
        assert_eq!(c.len(), n);
        assert_eq!(c.rows().count(), n);
        assert!(c.approx_bytes() >= n * std::mem::size_of::<NetworkState>());
    }
}
