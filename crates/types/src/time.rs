//! Simulated time and per-row versions.
//!
//! Statesman's control loops "operate at the time scale of minutes, not
//! seconds" (paper §7.1). All components in this reproduction are driven by
//! a discrete simulated clock so that scenario runs (Fig 8, Fig 10) are
//! deterministic and fast. [`SimTime`] is an absolute instant in simulated
//! milliseconds since scenario start; [`SimDuration`] is a span of the same.
//!
//! [`Version`] is a monotonically increasing logical version assigned by the
//! storage service to each committed write; the checker uses versions to
//! detect whether a proposed state was computed against a stale observed
//! state.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in milliseconds since scenario start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The zero instant (scenario start).
    pub const ZERO: SimTime = SimTime(0);

    /// Build from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Build from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// Build from whole minutes (the natural unit of Statesman control loops).
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Milliseconds since scenario start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since scenario start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole minutes since scenario start (truncating).
    pub const fn as_mins(self) -> u64 {
        self.0 / 60_000
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Build from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// Build from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Milliseconds in the span.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds in the span (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Multiply the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1_000;
        let s = (self.0 / 1_000) % 60;
        let m = self.0 / 60_000;
        write!(f, "{m:03}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60_000 {
            write!(f, "{:.1}min", self.0 as f64 / 60_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}s", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// Monotonic logical version for a committed state row.
///
/// Versions are assigned by the storage partition that owns the row (one
/// Paxos ring per datacenter, §6.1), so they are comparable only within a
/// partition. `Version::GENESIS` marks a row that has never been written.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Version(pub u64);

impl Version {
    /// The version of a never-written row.
    pub const GENESIS: Version = Version(0);

    /// The next version after this one.
    pub const fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// True if this version is strictly newer than `other`.
    pub const fn is_newer_than(self, other: Version) -> bool {
        self.0 > other.0
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_mins(2).as_mins(), 2);
        assert_eq!(SimTime::from_millis(1_500).as_secs(), 1);
    }

    #[test]
    fn arithmetic_and_saturation() {
        let t = SimTime::from_secs(10);
        let t2 = t + SimDuration::from_secs(5);
        assert_eq!(t2, SimTime::from_secs(15));
        assert_eq!(t2 - t, SimDuration::from_secs(5));
        assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
        assert_eq!(t2.saturating_since(t), SimDuration::from_secs(5));
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(SimDuration::from_millis(250).to_string(), "250ms");
        assert_eq!(SimDuration::from_millis(2_500).to_string(), "2.50s");
        assert_eq!(SimDuration::from_mins(3).to_string(), "3.0min");
    }

    #[test]
    fn versions_order() {
        let v = Version::GENESIS;
        assert!(v.next().is_newer_than(v));
        assert!(!v.is_newer_than(v));
        assert_eq!(v.next(), Version(1));
    }

    #[test]
    fn time_display_is_min_sec_ms() {
        assert_eq!(SimTime::from_millis(61_005).to_string(), "001:01.005");
    }
}
