//! Network entities: datacenters, devices (switches/routers), links, paths.
//!
//! Statesman's storage keys every state variable by the *entity* it belongs
//! to (paper §6.4: "A NetworkState object consists of the entity name (i.e.,
//! the switch, link, or path name) ..."). Entities also carry the
//! datacenter they live in, because the storage service is partitioned with
//! one Paxos ring per datacenter (§6.1) and the proxy layer routes requests
//! by entity name.
//!
//! Naming conventions used by the topology builders (mirroring the paper's
//! Fig 7 / Fig 9 layouts):
//!
//! * devices: `tor-<pod>-<idx>`, `agg-<pod>-<idx>`, `core-<idx>`, `br-<idx>`
//! * links:   `<deviceA>~<deviceB>` with endpoint names ordered
//!   lexicographically so the link name is canonical.
//! * paths:   free-form, e.g. `te:dc1>dc3:via-br3`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a datacenter (e.g. `"dc1"`). Also identifies the storage
/// partition (Paxos ring) that owns entities homed in that datacenter. The
/// special WAN "impact group" uses [`DatacenterId::wan`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DatacenterId(pub String);

impl DatacenterId {
    /// The pseudo-datacenter that owns WAN entities: border routers and
    /// inter-DC links. The paper partitions checker responsibility into one
    /// impact group per DC "plus one additional impact group with border
    /// routers of all DCs and the WAN links" (§5 / slides).
    pub const WAN_NAME: &'static str = "wan";

    /// Construct from any string-like name.
    pub fn new(name: impl Into<String>) -> Self {
        DatacenterId(name.into())
    }

    /// The WAN pseudo-datacenter.
    pub fn wan() -> Self {
        DatacenterId(Self::WAN_NAME.to_string())
    }

    /// True if this is the WAN pseudo-datacenter.
    pub fn is_wan(&self) -> bool {
        self.0 == Self::WAN_NAME
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DatacenterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DatacenterId {
    fn from(s: &str) -> Self {
        DatacenterId(s.to_string())
    }
}

impl From<String> for DatacenterId {
    fn from(s: String) -> Self {
        DatacenterId(s)
    }
}

/// The role a device plays in the datacenter fabric. Used by topology
/// builders and invariant evaluators (e.g. the ToR-pair capacity invariant
/// of §7.2 cares about ToRs; the WAN scenarios of §7.3 care about border
/// routers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceRole {
    /// Top-of-rack switch.
    ToR,
    /// Pod aggregation switch.
    Agg,
    /// Datacenter core router.
    Core,
    /// WAN-facing border router.
    Border,
}

impl DeviceRole {
    /// Human-readable short name matching the device-name prefixes used by
    /// the topology builders.
    pub fn prefix(self) -> &'static str {
        match self {
            DeviceRole::ToR => "tor",
            DeviceRole::Agg => "agg",
            DeviceRole::Core => "core",
            DeviceRole::Border => "br",
        }
    }
}

impl fmt::Display for DeviceRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// A switch or router name, unique within its datacenter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DeviceName(pub String);

impl DeviceName {
    /// Construct from any string-like name.
    pub fn new(name: impl Into<String>) -> Self {
        DeviceName(name.into())
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Infer the device role from the canonical name prefix, if it follows
    /// the builder conventions.
    pub fn role(&self) -> Option<DeviceRole> {
        let head = self.0.split('-').next()?;
        match head {
            "tor" => Some(DeviceRole::ToR),
            "agg" => Some(DeviceRole::Agg),
            "core" => Some(DeviceRole::Core),
            "br" => Some(DeviceRole::Border),
            _ => None,
        }
    }

    /// For pod-scoped devices (`tor-<pod>-<idx>`, `agg-<pod>-<idx>`),
    /// the pod number.
    pub fn pod(&self) -> Option<u32> {
        let mut parts = self.0.split('-');
        let head = parts.next()?;
        if head != "tor" && head != "agg" {
            return None;
        }
        parts.next()?.parse().ok()
    }

    /// The trailing index in the canonical name, e.g. `2` for `agg-1-2` or
    /// `core-2`.
    pub fn index(&self) -> Option<u32> {
        self.0.rsplit('-').next()?.parse().ok()
    }
}

impl fmt::Display for DeviceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DeviceName {
    fn from(s: &str) -> Self {
        DeviceName(s.to_string())
    }
}

impl From<String> for DeviceName {
    fn from(s: String) -> Self {
        DeviceName(s)
    }
}

/// A (physical, undirected) link name, canonicalized so that the two
/// endpoint device names appear in lexicographic order joined by `~`.
///
/// Directed quantities (traffic load per direction, Fig 10's "12 physical
/// links × 2 directions") are modelled as per-direction attributes on the
/// canonical link, not as two entities.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkName {
    /// Lexicographically smaller endpoint.
    pub a: DeviceName,
    /// Lexicographically larger endpoint.
    pub b: DeviceName,
}

impl LinkName {
    /// Build the canonical link between two devices (order-insensitive).
    pub fn between(x: impl Into<DeviceName>, y: impl Into<DeviceName>) -> Self {
        let (x, y) = (x.into(), y.into());
        if x <= y {
            LinkName { a: x, b: y }
        } else {
            LinkName { a: y, b: x }
        }
    }

    /// Parse `"devA~devB"`; returns `None` if there is no `~` separator.
    pub fn parse(s: &str) -> Option<Self> {
        let (a, b) = s.split_once('~')?;
        if a.is_empty() || b.is_empty() {
            return None;
        }
        Some(LinkName::between(a, b))
    }

    /// True if `dev` is one of the link's endpoints.
    pub fn touches(&self, dev: &DeviceName) -> bool {
        &self.a == dev || &self.b == dev
    }

    /// Given one endpoint, the other; `None` if `dev` is not an endpoint.
    pub fn peer_of(&self, dev: &DeviceName) -> Option<&DeviceName> {
        if &self.a == dev {
            Some(&self.b)
        } else if &self.b == dev {
            Some(&self.a)
        } else {
            None
        }
    }
}

impl fmt::Display for LinkName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}~{}", self.a, self.b)
    }
}

/// A tunnel/path name (paper Fig 4 top level: "Path/Traffic Setup"). Paths
/// are created by applications such as inter-DC TE; the path's state
/// variables are translated by Statesman into the routing states of every
/// switch on the path (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PathName(pub String);

impl PathName {
    /// Construct from any string-like name.
    pub fn new(name: impl Into<String>) -> Self {
        PathName(name.into())
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PathName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Which kind of entity a name refers to. Useful for validating that an
/// attribute applies to the entity it is written against (e.g.
/// `DeviceFirmwareVersion` makes no sense on a link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// A switch or router.
    Device,
    /// A physical link.
    Link,
    /// A multi-hop tunnel/path.
    Path,
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityKind::Device => f.write_str("device"),
            EntityKind::Link => f.write_str("link"),
            EntityKind::Path => f.write_str("path"),
        }
    }
}

/// A fully qualified entity: the datacenter that homes it plus the
/// device/link/path name. This is the storage key prefix and the unit of
/// locking (§4.2: conflict resolution happens "at the level of individual
/// switches and links").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityName {
    /// Home datacenter — determines the owning storage partition.
    pub datacenter: DatacenterId,
    /// The entity proper.
    pub body: EntityBody,
}

/// The device/link/path discriminant inside an [`EntityName`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EntityBody {
    /// A switch or router.
    Device(DeviceName),
    /// A physical link.
    Link(LinkName),
    /// A multi-hop tunnel/path.
    Path(PathName),
}

impl EntityName {
    /// A device entity homed in `dc`.
    pub fn device(dc: impl Into<DatacenterId>, name: impl Into<DeviceName>) -> Self {
        EntityName {
            datacenter: dc.into(),
            body: EntityBody::Device(name.into()),
        }
    }

    /// A link entity homed in `dc` (endpoint order-insensitive).
    pub fn link(
        dc: impl Into<DatacenterId>,
        x: impl Into<DeviceName>,
        y: impl Into<DeviceName>,
    ) -> Self {
        EntityName {
            datacenter: dc.into(),
            body: EntityBody::Link(LinkName::between(x, y)),
        }
    }

    /// A link entity from an already-canonical [`LinkName`].
    pub fn link_named(dc: impl Into<DatacenterId>, link: LinkName) -> Self {
        EntityName {
            datacenter: dc.into(),
            body: EntityBody::Link(link),
        }
    }

    /// A path entity homed in `dc`.
    pub fn path(dc: impl Into<DatacenterId>, name: impl Into<String>) -> Self {
        EntityName {
            datacenter: dc.into(),
            body: EntityBody::Path(PathName::new(name)),
        }
    }

    /// Which kind of entity this is.
    pub fn kind(&self) -> EntityKind {
        match &self.body {
            EntityBody::Device(_) => EntityKind::Device,
            EntityBody::Link(_) => EntityKind::Link,
            EntityBody::Path(_) => EntityKind::Path,
        }
    }

    /// The device name, if this is a device entity.
    pub fn as_device(&self) -> Option<&DeviceName> {
        match &self.body {
            EntityBody::Device(d) => Some(d),
            _ => None,
        }
    }

    /// The link name, if this is a link entity.
    pub fn as_link(&self) -> Option<&LinkName> {
        match &self.body {
            EntityBody::Link(l) => Some(l),
            _ => None,
        }
    }

    /// The path name, if this is a path entity.
    pub fn as_path(&self) -> Option<&PathName> {
        match &self.body {
            EntityBody::Path(p) => Some(p),
            _ => None,
        }
    }

    /// Canonical wire form: `<dc>/<kind>/<name>`. Used by the HTTP API and
    /// as the storage key prefix. Allocates one `String`; serialization
    /// paths that already hold a formatter should use `Display` instead,
    /// which writes the same bytes component-by-component without an
    /// intermediate allocation.
    pub fn wire_name(&self) -> String {
        self.to_string()
    }

    /// Parse the wire form produced by [`EntityName::wire_name`].
    pub fn parse_wire_name(s: &str) -> Option<Self> {
        let mut parts = s.splitn(3, '/');
        let dc = parts.next()?;
        let kind = parts.next()?;
        let name = parts.next()?;
        if dc.is_empty() || name.is_empty() {
            return None;
        }
        let dc = DatacenterId::new(dc);
        match kind {
            "device" => Some(EntityName::device(dc, name)),
            "link" => Some(EntityName::link_named(dc, LinkName::parse(name)?)),
            "path" => Some(EntityName::path(dc, name)),
            _ => None,
        }
    }
}

impl fmt::Display for EntityName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            EntityBody::Device(d) => write!(f, "{}/device/{}", self.datacenter, d),
            EntityBody::Link(l) => write!(f, "{}/link/{}", self.datacenter, l),
            EntityBody::Path(p) => write!(f, "{}/path/{}", self.datacenter, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_names_are_canonical() {
        let l1 = LinkName::between("tor-1-1", "agg-1-2");
        let l2 = LinkName::between("agg-1-2", "tor-1-1");
        assert_eq!(l1, l2);
        assert_eq!(l1.to_string(), "agg-1-2~tor-1-1");
    }

    #[test]
    fn link_parse_round_trip() {
        let l = LinkName::between("br-1", "br-3");
        assert_eq!(LinkName::parse(&l.to_string()), Some(l));
        assert_eq!(LinkName::parse("nolink"), None);
        assert_eq!(LinkName::parse("~x"), None);
    }

    #[test]
    fn link_peers() {
        let l = LinkName::between("a", "b");
        assert!(l.touches(&DeviceName::new("a")));
        assert_eq!(
            l.peer_of(&DeviceName::new("a")),
            Some(&DeviceName::new("b"))
        );
        assert_eq!(l.peer_of(&DeviceName::new("c")), None);
    }

    #[test]
    fn device_role_and_pod_inference() {
        assert_eq!(DeviceName::new("tor-4-1").role(), Some(DeviceRole::ToR));
        assert_eq!(DeviceName::new("agg-10-4").pod(), Some(10));
        assert_eq!(DeviceName::new("agg-10-4").index(), Some(4));
        assert_eq!(DeviceName::new("core-2").role(), Some(DeviceRole::Core));
        assert_eq!(DeviceName::new("core-2").pod(), None);
        assert_eq!(DeviceName::new("br-7").role(), Some(DeviceRole::Border));
        assert_eq!(DeviceName::new("weird").role(), None);
    }

    #[test]
    fn entity_wire_names_round_trip() {
        let cases = vec![
            EntityName::device("dc1", "agg-1-1"),
            EntityName::link("dc2", "tor-1-1", "agg-1-1"),
            EntityName::path(DatacenterId::wan(), "te:dc1>dc3:0"),
        ];
        for e in cases {
            let wire = e.wire_name();
            assert_eq!(EntityName::parse_wire_name(&wire), Some(e), "{wire}");
        }
        assert_eq!(EntityName::parse_wire_name("dc1/blob/x"), None);
        assert_eq!(EntityName::parse_wire_name("dc1/device"), None);
    }

    #[test]
    fn wan_pseudo_datacenter() {
        assert!(DatacenterId::wan().is_wan());
        assert!(!DatacenterId::new("dc1").is_wan());
    }

    #[test]
    fn entity_kind_accessors() {
        let d = EntityName::device("dc1", "core-1");
        assert_eq!(d.kind(), EntityKind::Device);
        assert!(d.as_device().is_some());
        assert!(d.as_link().is_none());
        assert!(d.as_path().is_none());

        let l = EntityName::link("dc1", "a", "b");
        assert_eq!(l.kind(), EntityKind::Link);
        assert!(l.as_link().is_some());

        let p = EntityName::path("dc1", "p0");
        assert_eq!(p.kind(), EntityKind::Path);
        assert!(p.as_path().is_some());
    }
}
