#![warn(missing_docs)]

//! # statesman-types
//!
//! Shared vocabulary for the Statesman network-state management service
//! (Sun et al., SIGCOMM 2014).
//!
//! Statesman abstracts the network as a set of *variable–value pairs*. Every
//! other crate in the workspace speaks in the terms defined here:
//!
//! * [`EntityName`] — the switch, link, or path a variable belongs to
//!   (paper §4.1, Table 2 "Entity" column).
//! * [`Attribute`] — the state-variable catalogue of Table 2, each with a
//!   [`Permission`] (ReadOnly counters vs ReadWrite control variables) and a
//!   [`DependencyLevel`] placing it in the Fig-4 dependency model.
//! * [`Value`] — the typed value space of those variables, from booleans
//!   (admin power) to flow–link routing rule sets.
//! * [`NetworkState`] — one row of the storage service: entity + attribute +
//!   value + last-update timestamp + writer, exactly the "NetworkState
//!   object" of §6.4.
//! * [`Pool`] — which view a row lives in: observed (OS), proposed (PS, one
//!   per application), or target (TS) (paper §2.1).
//! * [`Freshness`] — the up-to-date vs bounded-stale read modes of §6.4.
//!
//! The crate is dependency-light (only `serde`) so every subsystem — the
//! simulated network, the Paxos-backed store, the checker, the HTTP API —
//! can share it without cycles.

pub mod columnar;
pub mod entity;
pub mod error;
pub mod intern;
pub mod lock;
pub mod retry;
pub mod state;
pub mod time;
pub mod value;
pub mod vars;

pub use columnar::{Column, ColumnIter, RowArena};
pub use entity::{
    DatacenterId, DeviceName, DeviceRole, EntityKind, EntityName, LinkName, PathName,
};
pub use error::{StateError, StateResult};
pub use intern::{
    interned_count, interner, key_resolutions, slot_registry, EntityId, SlotId, SlotRegistry, VarId,
};
pub use lock::{LockPriority, LockRecord};
pub use retry::RetryPolicy;
pub use state::{
    AppId, Freshness, NetworkState, Pool, StateDelta, StateKey, StateKeyRef, WriteOutcome,
    WriteReceipt,
};
pub use time::{SimDuration, SimTime, Version};
pub use value::{ControlPlaneMode, FlowLinkRule, OperStatus, PowerStatus, Value};
pub use vars::{Attribute, DependencyLevel, Permission};

#[cfg(test)]
mod integration_checks {
    //! Cross-module sanity checks that the vocabulary hangs together.
    use super::*;

    #[test]
    fn full_row_round_trips_through_json() {
        let row = NetworkState::new(
            EntityName::device("dc1", "agg-1-2"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.3.1"),
            SimTime::from_secs(42),
            AppId::new("switch-upgrade"),
        );
        let json = serde_json::to_string(&row).unwrap();
        let back: NetworkState = serde_json::from_str(&json).unwrap();
        assert_eq!(row, back);
    }

    #[test]
    fn table2_catalogue_is_complete() {
        // Table 2 lists 18 example variables across path/link/device plus
        // our lock meta-attribute; make sure the catalogue exposes them all.
        assert!(Attribute::catalogue().len() >= 18);
        for attr in Attribute::catalogue() {
            // Every attribute must know its permission and level.
            let _ = attr.permission();
            let _ = attr.dependency_level();
            // And have a stable wire name that parses back.
            let name = attr.wire_name();
            assert_eq!(Attribute::parse_wire_name(name), Some(*attr), "{name}");
        }
    }
}
