//! The `NetworkState` row, the OS/PS/TS pools, freshness modes, and
//! write receipts.
//!
//! Paper §6.4: "A NetworkState object consists of the entity name (i.e.,
//! the switch, link, or path name), the state variable name, the variable
//! value, and the last-update timestamp." Rows live in *pools*: the single
//! observed state (OS), one proposed state (PS) per application, and the
//! single target state (TS) (§2.1).
//!
//! Applications learn the fate of their proposals from [`WriteReceipt`]s:
//! "It also writes the acceptance or rejection results of the PSes to the
//! storage service, so applications can learn about the outcomes and react
//! accordingly" (§3).

use crate::entity::EntityName;
use crate::intern::VarId;
use crate::time::{SimTime, Version};
use crate::value::Value;
use crate::vars::Attribute;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Identifier of a management application (e.g. `"switch-upgrade"`,
/// `"failure-mitigation"`, `"inter-dc-te"`). Also used to name Statesman's
/// own components where they write state (the monitor writes the OS under
/// `AppId::monitor()`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AppId(pub String);

impl AppId {
    /// Construct from any string-like name.
    pub fn new(name: impl Into<String>) -> Self {
        AppId(name.into())
    }

    /// The monitor component's writer identity.
    pub fn monitor() -> Self {
        AppId("statesman.monitor".into())
    }

    /// The checker component's writer identity (it writes the TS).
    pub fn checker() -> Self {
        AppId("statesman.checker".into())
    }

    /// The updater component's writer identity.
    pub fn updater() -> Self {
        AppId("statesman.updater".into())
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AppId {
    fn from(s: &str) -> Self {
        AppId(s.to_string())
    }
}

impl From<String> for AppId {
    fn from(s: String) -> Self {
        AppId(s)
    }
}

/// Which view of network state a row belongs to (paper §2.1; the `Pool`
/// parameter of the Table-3 API).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pool {
    /// Observed state — the latest view of the actual network, written by
    /// the monitor.
    Observed,
    /// Proposed state of one application.
    Proposed(AppId),
    /// Target state — the merged, invariant-checked state the updater
    /// drives the network toward.
    Target,
}

impl Pool {
    /// Wire encoding used by the HTTP API: `OS`, `PS:<app>`, `TS`. The
    /// fixed pools borrow — only `PS:<app>` genuinely needs to allocate.
    pub fn wire_name(&self) -> Cow<'static, str> {
        match self {
            Pool::Observed => Cow::Borrowed("OS"),
            Pool::Proposed(app) => Cow::Owned(format!("PS:{app}")),
            Pool::Target => Cow::Borrowed("TS"),
        }
    }

    /// Parse the wire encoding produced by [`Pool::wire_name`].
    pub fn parse_wire_name(s: &str) -> Option<Pool> {
        match s {
            "OS" => Some(Pool::Observed),
            "TS" => Some(Pool::Target),
            other => {
                let app = other.strip_prefix("PS:")?;
                if app.is_empty() {
                    return None;
                }
                Some(Pool::Proposed(AppId::new(app)))
            }
        }
    }
}

impl fmt::Display for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pool::Observed => f.write_str("OS"),
            Pool::Proposed(app) => write!(f, "PS:{app}"),
            Pool::Target => f.write_str("TS"),
        }
    }
}

/// Read freshness (paper §6.4, the `Freshness` parameter of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Freshness {
    /// Strictly current data — served by the partition leader (linearizable
    /// read). For applications like failure mitigation that must see
    /// failures as soon as possible.
    UpToDate,
    /// Bounded-stale data served from caches; the bound is the storage
    /// service's configured staleness window (5 minutes in the paper).
    /// "By allowing such applications to read from caches, we boost the
    /// read throughput of Statesman."
    BoundedStale,
}

impl Freshness {
    /// Wire encoding used by the HTTP API.
    pub fn wire_name(self) -> &'static str {
        match self {
            Freshness::UpToDate => "up-to-date",
            Freshness::BoundedStale => "bounded-stale",
        }
    }

    /// Parse the wire encoding.
    pub fn parse_wire_name(s: &str) -> Option<Freshness> {
        match s {
            "up-to-date" => Some(Freshness::UpToDate),
            "bounded-stale" => Some(Freshness::BoundedStale),
            _ => None,
        }
    }
}

impl fmt::Display for Freshness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// One network-state row: the unit the storage service stores and the
/// Table-3 API transfers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkState {
    /// The switch, link, or path the variable belongs to.
    pub entity: EntityName,
    /// The state-variable name.
    pub attribute: Attribute,
    /// The variable's value.
    pub value: Value,
    /// Last-update timestamp (simulated time).
    pub updated_at: SimTime,
    /// Who wrote the row (an application, or a Statesman component).
    pub writer: AppId,
    /// Storage-assigned version; `Version::GENESIS` until committed.
    #[serde(default)]
    pub version: Version,
}

impl NetworkState {
    /// Build an uncommitted row (version = GENESIS; the storage partition
    /// stamps the real version on commit).
    pub fn new(
        entity: EntityName,
        attribute: Attribute,
        value: Value,
        updated_at: SimTime,
        writer: AppId,
    ) -> Self {
        NetworkState {
            entity,
            attribute,
            value,
            updated_at,
            writer,
            version: Version::GENESIS,
        }
    }

    /// The storage key of this row: entity + attribute. Two rows with the
    /// same key in the same pool shadow each other (last committed wins).
    ///
    /// This clones the entity; hot paths should use the allocation-free
    /// [`NetworkState::key_ref`] (comparisons, sorts) or
    /// [`NetworkState::var_id`] (map keys) instead.
    pub fn key(&self) -> StateKey {
        StateKey {
            entity: self.entity.clone(),
            attribute: self.attribute,
        }
    }

    /// The borrowed form of [`NetworkState::key`]: orders and compares
    /// exactly like [`StateKey`] without cloning the entity.
    pub fn key_ref(&self) -> StateKeyRef<'_> {
        StateKeyRef {
            entity: &self.entity,
            attribute: self.attribute,
        }
    }

    /// The compact id of this row's variable (interning the entity on
    /// first sight). See [`crate::intern`] for the edge-resolution rule.
    pub fn var_id(&self) -> VarId {
        VarId::of(&self.entity, self.attribute)
    }

    /// Whether the row is well-formed: the attribute must apply to the
    /// entity's kind, and lock rows must carry lock values.
    pub fn is_well_formed(&self) -> bool {
        if !self.attribute.applies_to(self.entity.kind()) {
            return false;
        }
        if self.attribute.is_lock() {
            return matches!(self.value, Value::Lock(_) | Value::None);
        }
        true
    }
}

impl fmt::Display for NetworkState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} = {} ({} @{} {})",
            self.entity, self.attribute, self.value, self.writer, self.updated_at, self.version
        )
    }
}

/// The (entity, attribute) pair identifying one state variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateKey {
    /// The owning entity.
    pub entity: EntityName,
    /// The variable name.
    pub attribute: Attribute,
}

impl StateKey {
    /// Convenience constructor.
    pub fn new(entity: EntityName, attribute: Attribute) -> Self {
        StateKey { entity, attribute }
    }

    /// Borrow as a [`StateKeyRef`] (orders identically, no clone).
    pub fn as_ref(&self) -> StateKeyRef<'_> {
        StateKeyRef {
            entity: &self.entity,
            attribute: self.attribute,
        }
    }

    /// The compact id of this variable (interning the entity on first
    /// sight).
    pub fn var_id(&self) -> VarId {
        VarId::of(&self.entity, self.attribute)
    }
}

impl fmt::Display for StateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.entity, self.attribute)
    }
}

/// The borrowed (entity, attribute) pair: compares and orders exactly like
/// [`StateKey`] — the fields are declared in the same order, so the
/// derived `Ord` agrees — without owning (or cloning) the entity. This is
/// what hot sorts and comparisons use; the canonical *wire* ordering of
/// the workspace is `StateKeyRef` order, never `VarId` numeric order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateKeyRef<'a> {
    /// The owning entity, borrowed.
    pub entity: &'a EntityName,
    /// The variable name.
    pub attribute: Attribute,
}

impl StateKeyRef<'_> {
    /// Materialize an owned [`StateKey`] (clones the entity — an edge
    /// operation, not for hot loops).
    pub fn to_owned(self) -> StateKey {
        StateKey::new(self.entity.clone(), self.attribute)
    }
}

impl fmt::Display for StateKeyRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.entity, self.attribute)
    }
}

/// A versioned change set for one pool: everything that happened after
/// some watermark, as upserts plus tombstone deletes.
///
/// Produced by the storage layer's `read_since` path. Consumers hold a
/// snapshot of the pool plus the watermark it reflects; applying a delta
/// (deletes first, then upserts) advances the snapshot to `watermark`.
/// When the requested watermark has been compacted out of the change
/// index, the storage layer falls back to a full snapshot and sets
/// [`StateDelta::snapshot`] — the consumer must replace its view instead
/// of patching it. Either way the paper's semantics stay recoverable:
/// a delta-maintained view is always reconstructible from a full read.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StateDelta {
    /// Rows created or modified after the watermark the caller supplied,
    /// at their *current* values. On a snapshot fallback: the whole pool.
    pub upserts: Vec<NetworkState>,
    /// Keys removed after the caller's watermark (empty on snapshots).
    pub deletes: Vec<StateKey>,
    /// The pool watermark this delta advances the consumer to.
    pub watermark: Version,
    /// True when the change index could not serve the request (the
    /// caller's watermark predates the compaction floor, or is ahead of
    /// this replica) and `upserts` is a complete pool snapshot.
    pub snapshot: bool,
}

impl StateDelta {
    /// An incremental delta (deterministically ordered by key).
    pub fn incremental(
        mut upserts: Vec<NetworkState>,
        mut deletes: Vec<StateKey>,
        watermark: Version,
    ) -> Self {
        upserts.sort_by(|a, b| a.key_ref().cmp(&b.key_ref()));
        deletes.sort();
        StateDelta {
            upserts,
            deletes,
            watermark,
            snapshot: false,
        }
    }

    /// A full-snapshot fallback (deterministically ordered by key).
    pub fn full_snapshot(mut rows: Vec<NetworkState>, watermark: Version) -> Self {
        rows.sort_by(|a, b| a.key_ref().cmp(&b.key_ref()));
        StateDelta {
            upserts: rows,
            deletes: Vec::new(),
            watermark,
            snapshot: true,
        }
    }

    /// True when applying this delta would change nothing.
    pub fn is_empty(&self) -> bool {
        !self.snapshot && self.upserts.is_empty() && self.deletes.is_empty()
    }

    /// Rows touched (upserts + deletes; a snapshot counts its rows).
    pub fn changes(&self) -> usize {
        self.upserts.len() + self.deletes.len()
    }
}

impl fmt::Display for StateDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delta(+{} -{} @{}{})",
            self.upserts.len(),
            self.deletes.len(),
            self.watermark,
            if self.snapshot { ", snapshot" } else { "" }
        )
    }
}

/// The fate of one proposed row after a checker pass (§3: acceptance or
/// rejection results written back for applications to react to).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteOutcome {
    /// Merged into the target state.
    Accepted,
    /// The proposal is a no-op: the OS already has the proposed value.
    AlreadySatisfied,
    /// Rejected: the variable is currently uncontrollable — some ancestor
    /// in the dependency model has an inappropriate observed value.
    RejectedUncontrollable {
        /// Human-readable reason naming the failing ancestor.
        reason: String,
    },
    /// Rejected: lost a conflict against another application's accepted
    /// proposal (or an existing lock).
    RejectedConflict {
        /// The application that won the conflict.
        winner: AppId,
        /// Human-readable detail.
        reason: String,
    },
    /// Rejected: merging would violate a network-wide invariant.
    RejectedInvariant {
        /// Name of the violated invariant.
        invariant: String,
        /// Human-readable detail.
        reason: String,
    },
    /// Rejected: the row was malformed (wrong entity kind, read-only
    /// attribute, stale basis version, …).
    RejectedInvalid {
        /// Human-readable detail.
        reason: String,
    },
}

impl WriteOutcome {
    /// True for `Accepted` (note: `AlreadySatisfied` is not an acceptance —
    /// nothing entered the TS).
    pub fn is_accepted(&self) -> bool {
        matches!(self, WriteOutcome::Accepted)
    }

    /// True for any `Rejected*` variant.
    pub fn is_rejected(&self) -> bool {
        !matches!(
            self,
            WriteOutcome::Accepted | WriteOutcome::AlreadySatisfied
        )
    }

    /// Short tag for scenario logs.
    pub fn tag(&self) -> &'static str {
        match self {
            WriteOutcome::Accepted => "accepted",
            WriteOutcome::AlreadySatisfied => "already-satisfied",
            WriteOutcome::RejectedUncontrollable { .. } => "rejected-uncontrollable",
            WriteOutcome::RejectedConflict { .. } => "rejected-conflict",
            WriteOutcome::RejectedInvariant { .. } => "rejected-invariant",
            WriteOutcome::RejectedInvalid { .. } => "rejected-invalid",
        }
    }
}

impl fmt::Display for WriteOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteOutcome::Accepted => f.write_str("accepted"),
            WriteOutcome::AlreadySatisfied => f.write_str("already satisfied"),
            WriteOutcome::RejectedUncontrollable { reason } => {
                write!(f, "rejected (uncontrollable: {reason})")
            }
            WriteOutcome::RejectedConflict { winner, reason } => {
                write!(f, "rejected (conflict, lost to {winner}: {reason})")
            }
            WriteOutcome::RejectedInvariant { invariant, reason } => {
                write!(f, "rejected (invariant {invariant}: {reason})")
            }
            WriteOutcome::RejectedInvalid { reason } => write!(f, "rejected (invalid: {reason})"),
        }
    }
}

/// The per-row receipt the checker writes back after processing a PS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteReceipt {
    /// The proposing application.
    pub app: AppId,
    /// The proposed row's key.
    pub key: StateKey,
    /// The value that was proposed.
    pub proposed: Value,
    /// What happened.
    pub outcome: WriteOutcome,
    /// When the checker decided (simulated time).
    pub decided_at: SimTime,
}

impl fmt::Display for WriteReceipt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} -> {}: {}",
            self.decided_at, self.app, self.key, self.outcome
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityName;

    #[test]
    fn pool_wire_round_trip() {
        for p in [
            Pool::Observed,
            Pool::Target,
            Pool::Proposed(AppId::new("inter-dc-te")),
        ] {
            assert_eq!(Pool::parse_wire_name(&p.wire_name()), Some(p.clone()));
        }
        assert_eq!(Pool::parse_wire_name("PS:"), None);
        assert_eq!(Pool::parse_wire_name("nope"), None);
    }

    #[test]
    fn freshness_wire_round_trip() {
        for fm in [Freshness::UpToDate, Freshness::BoundedStale] {
            assert_eq!(Freshness::parse_wire_name(fm.wire_name()), Some(fm));
        }
        assert_eq!(Freshness::parse_wire_name("eventual"), None);
    }

    #[test]
    fn well_formedness_checks_entity_kind() {
        let good = NetworkState::new(
            EntityName::device("dc1", "agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
            SimTime::ZERO,
            AppId::new("upgrade"),
        );
        assert!(good.is_well_formed());

        let bad = NetworkState::new(
            EntityName::link("dc1", "a", "b"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
            SimTime::ZERO,
            AppId::new("upgrade"),
        );
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn lock_rows_must_carry_lock_values() {
        let bad = NetworkState::new(
            EntityName::device("dc1", "br-1"),
            Attribute::EntityLock,
            Value::Int(1),
            SimTime::ZERO,
            AppId::new("te"),
        );
        assert!(!bad.is_well_formed());

        let release = NetworkState::new(
            EntityName::device("dc1", "br-1"),
            Attribute::EntityLock,
            Value::None,
            SimTime::ZERO,
            AppId::new("te"),
        );
        assert!(release.is_well_formed());
    }

    #[test]
    fn outcome_predicates() {
        assert!(WriteOutcome::Accepted.is_accepted());
        assert!(!WriteOutcome::AlreadySatisfied.is_accepted());
        assert!(!WriteOutcome::AlreadySatisfied.is_rejected());
        let rej = WriteOutcome::RejectedConflict {
            winner: AppId::new("upgrade"),
            reason: "high-priority lock".into(),
        };
        assert!(rej.is_rejected());
        assert_eq!(rej.tag(), "rejected-conflict");
    }

    #[test]
    fn delta_orders_rows_and_round_trips_json() {
        let a = NetworkState::new(
            EntityName::device("dc1", "agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
            SimTime::ZERO,
            AppId::monitor(),
        );
        let b = NetworkState::new(
            EntityName::device("dc1", "agg-1-2"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
            SimTime::ZERO,
            AppId::monitor(),
        );
        let d = StateDelta::incremental(
            vec![b.clone(), a.clone()],
            vec![b.key(), a.key()],
            Version(9),
        );
        assert_eq!(d.upserts, vec![a.clone(), b.clone()]);
        assert_eq!(d.deletes, vec![a.key(), b.key()]);
        assert!(!d.is_empty());
        assert_eq!(d.changes(), 4);
        let back: StateDelta = serde_json::from_slice(&serde_json::to_vec(&d).unwrap()).unwrap();
        assert_eq!(back, d);

        let s = StateDelta::full_snapshot(vec![b, a], Version(9));
        assert!(s.snapshot);
        assert!(!s.is_empty(), "snapshots always replace the view");
        assert!(StateDelta::incremental(vec![], vec![], Version(9)).is_empty());
    }

    #[test]
    fn state_key_display() {
        let k = StateKey::new(
            EntityName::device("dc1", "agg-1-1"),
            Attribute::DeviceAdminPower,
        );
        assert_eq!(k.to_string(), "dc1/device/agg-1-1#DeviceAdminPower");
    }
}
