//! Typed values for state variables.
//!
//! The paper models network state as variable–value pairs; values range from
//! booleans (admin power) through firmware version strings to structured
//! routing-rule sets ("a data structure of the flow-link pairs, which is
//! agnostic to the supported routing protocols", §4.1). [`Value`] is the
//! closed union of those shapes. Typed accessors return `None` on kind
//! mismatch rather than panicking so the checker can treat a mistyped
//! proposal as invalid input, not a crash.

use crate::entity::{DeviceName, LinkName};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Administrative power status for devices and link interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerStatus {
    /// Powered / administratively enabled.
    On,
    /// Powered off / administratively disabled.
    Off,
}

impl PowerStatus {
    /// True if `On`.
    pub fn is_on(self) -> bool {
        matches!(self, PowerStatus::On)
    }
}

impl fmt::Display for PowerStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PowerStatus::On => "on",
            PowerStatus::Off => "off",
        })
    }
}

/// Operational status as observed by the monitor. Distinct from
/// [`PowerStatus`]: an interface can be admin-up yet oper-down (cable cut,
/// peer rebooting) — that distinction drives the updater's retry logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperStatus {
    /// Passing traffic.
    Up,
    /// Not passing traffic.
    Down,
}

impl OperStatus {
    /// True if `Up`.
    pub fn is_up(self) -> bool {
        matches!(self, OperStatus::Up)
    }
}

impl fmt::Display for OperStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OperStatus::Up => "up",
            OperStatus::Down => "down",
        })
    }
}

/// Which control plane owns a link (Table 2 "Control plane setup": "a link
/// interface can be configured to use the OpenFlow protocol or traditional
/// protocols like BGP", §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlPlaneMode {
    /// An OpenFlow agent controls the interface.
    OpenFlow,
    /// A BGP session controls the interface.
    Bgp,
}

impl fmt::Display for ControlPlaneMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ControlPlaneMode::OpenFlow => "openflow",
            ControlPlaneMode::Bgp => "bgp",
        })
    }
}

/// One protocol-agnostic routing rule: traffic of `flow` leaves the device
/// over `out_link` with the given ECMP-style `weight` (§4.1: "We represent
/// the routing state in a data structure of the flow-link pairs").
///
/// The updater translates these into OpenFlow rule insertions/deletions or
/// BGP announcements/withdrawals depending on the device's control plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowLinkRule {
    /// Flow identifier, e.g. `"dc1>dc3"` for an inter-DC aggregate or a
    /// prefix string for BGP-style rules.
    pub flow: String,
    /// The link traffic exits on.
    pub out_link: LinkName,
    /// Relative weight among rules of the same flow (ECMP split).
    pub weight: f64,
}

impl FlowLinkRule {
    /// Convenience constructor.
    pub fn new(flow: impl Into<String>, out_link: LinkName, weight: f64) -> Self {
        FlowLinkRule {
            flow: flow.into(),
            out_link,
            weight,
        }
    }
}

/// The value of a state variable.
///
/// `Value` is deliberately a closed enum rather than opaque JSON: the
/// checker needs to *interpret* values (e.g. project the target state onto
/// the network graph to evaluate the capacity invariant), which requires
/// structural knowledge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absent/cleared. Writing `None` to the TS asks the updater to remove
    /// the corresponding configuration (e.g. tear down a tunnel).
    None,
    /// Boolean flag (e.g. management interface configured).
    Bool(bool),
    /// Unsigned integer (e.g. VLAN id).
    Int(i64),
    /// Floating-point measurement (utilization, rates, Mbps loads).
    Float(f64),
    /// Free-form string (firmware version, boot image, IP assignment).
    Text(String),
    /// Admin power status.
    Power(PowerStatus),
    /// Operational status (counters/oper variables).
    Oper(OperStatus),
    /// Control-plane selection for a link.
    ControlPlane(ControlPlaneMode),
    /// Flow→link routing rules for a device.
    Routes(Vec<FlowLinkRule>),
    /// An ordered list of devices (e.g. the switches on a path).
    DeviceList(Vec<DeviceName>),
    /// A per-entity lock record, serialized by `statesman-types::lock`.
    Lock(crate::lock::LockRecord),
}

impl Value {
    /// Shorthand for `Value::Text`.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Shorthand for a power value.
    pub fn power(on: bool) -> Value {
        Value::Power(if on {
            PowerStatus::On
        } else {
            PowerStatus::Off
        })
    }

    /// Shorthand for an oper-status value.
    pub fn oper(up: bool) -> Value {
        Value::Oper(if up { OperStatus::Up } else { OperStatus::Down })
    }

    /// The boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float inside; integers widen losslessly.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string inside, if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The power status inside, if this is `Power`.
    pub fn as_power(&self) -> Option<PowerStatus> {
        match self {
            Value::Power(p) => Some(*p),
            _ => None,
        }
    }

    /// The oper status inside, if this is `Oper`.
    pub fn as_oper(&self) -> Option<OperStatus> {
        match self {
            Value::Oper(o) => Some(*o),
            _ => None,
        }
    }

    /// The control-plane mode inside, if this is `ControlPlane`.
    pub fn as_control_plane(&self) -> Option<ControlPlaneMode> {
        match self {
            Value::ControlPlane(m) => Some(*m),
            _ => None,
        }
    }

    /// The routing rules inside, if this is `Routes`.
    pub fn as_routes(&self) -> Option<&[FlowLinkRule]> {
        match self {
            Value::Routes(r) => Some(r),
            _ => None,
        }
    }

    /// The device list inside, if this is `DeviceList`.
    pub fn as_device_list(&self) -> Option<&[DeviceName]> {
        match self {
            Value::DeviceList(d) => Some(d),
            _ => None,
        }
    }

    /// The lock record inside, if this is `Lock`.
    pub fn as_lock(&self) -> Option<&crate::lock::LockRecord> {
        match self {
            Value::Lock(l) => Some(l),
            _ => None,
        }
    }

    /// True if this is `Value::None` (absent/cleared).
    pub fn is_none(&self) -> bool {
        matches!(self, Value::None)
    }

    /// A short human-readable rendering for logs and scenario dumps.
    pub fn render(&self) -> String {
        match self {
            Value::None => "∅".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => format!("{x:.3}"),
            Value::Text(s) => s.clone(),
            Value::Power(p) => p.to_string(),
            Value::Oper(o) => o.to_string(),
            Value::ControlPlane(m) => m.to_string(),
            Value::Routes(r) => format!("{} rule(s)", r.len()),
            Value::DeviceList(d) => format!(
                "[{}]",
                d.iter().map(|x| x.as_str()).collect::<Vec<_>>().join(",")
            ),
            Value::Lock(l) => format!("lock:{}", l.holder),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::{LockPriority, LockRecord};
    use crate::state::AppId;
    use crate::time::SimTime;

    #[test]
    fn typed_accessors_reject_mismatches() {
        let v = Value::Int(7);
        assert_eq!(v.as_int(), Some(7));
        assert_eq!(v.as_float(), Some(7.0)); // widening is allowed
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.as_text(), None);
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert_eq!(Value::Float(0.5).as_int(), None);
    }

    #[test]
    fn power_and_oper_shorthands() {
        assert_eq!(Value::power(true).as_power(), Some(PowerStatus::On));
        assert_eq!(Value::power(false).as_power(), Some(PowerStatus::Off));
        assert!(Value::oper(true).as_oper().unwrap().is_up());
        assert!(!Value::oper(false).as_oper().unwrap().is_up());
    }

    #[test]
    fn routes_round_trip_json() {
        let v = Value::Routes(vec![FlowLinkRule::new(
            "dc1>dc2",
            LinkName::between("br-1", "br-3"),
            0.5,
        )]);
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn render_is_compact() {
        assert_eq!(Value::None.render(), "∅");
        assert_eq!(Value::Float(0.33333).render(), "0.333");
        let lock = Value::Lock(LockRecord::new(
            AppId::new("te"),
            LockPriority::Low,
            SimTime::ZERO,
            None,
        ));
        assert_eq!(lock.render(), "lock:te");
    }

    #[test]
    fn device_list_accessor() {
        let v = Value::DeviceList(vec![DeviceName::new("br-1"), DeviceName::new("br-3")]);
        assert_eq!(v.as_device_list().unwrap().len(), 2);
        assert!(Value::None.as_device_list().is_none());
        assert!(Value::None.is_none());
    }
}
