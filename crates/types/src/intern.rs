//! The entity interner and compact variable ids.
//!
//! Statesman's state plane walks every variable of a datacenter each round
//! (paper §4.2, §6.2). Keying the hot maps — storage pools, change
//! indexes, monitor diff bases, checker/updater mirrors — on the fully
//! structured [`EntityName`] means every insert, lookup, and comparison
//! hashes (and often clones) datacenter + device/link/path strings. This
//! module provides the compact alternative:
//!
//! * [`EntityId`] — a dense `u32` handle minted by a process-wide,
//!   append-only symbol table. Interning the same name always yields the
//!   same id for the lifetime of the process.
//! * [`VarId`] — one state variable: an (entity, attribute) pair packed
//!   into a single `u64` (entity id in the high 48 bits, attribute
//!   discriminant in the low 16). `Copy`, hashes as one word.
//!
//! **The edge-resolution rule.** Ids never appear on the wire. Interning
//! order depends on execution order (which round touched an entity first),
//! so `VarId`'s numeric order is *not* canonical: every wire-observable
//! ordering in the workspace sorts by the string [`StateKey`] order (via
//! the allocation-free [`StateKeyRef`](crate::StateKeyRef)), and ids are
//! resolved back to names only where a wire artifact needs one (delta
//! tombstones, receipts). Those resolutions are counted — the
//! `key_resolutions` metric — so a refactor that accidentally drags
//! resolution into a hot loop is observable. Within one process, ids *are*
//! order-compatible with names after a canonicalizing pass: interning
//! names in sorted order first makes `VarId` order agree with `StateKey`
//! order (property-tested in `tests/proptests.rs`).

use crate::entity::EntityName;
use crate::state::{Pool, StateKey};
use crate::vars::Attribute;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A dense handle for one interned [`EntityName`]. Stable for the process
/// lifetime; never serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

/// One state variable — an interned entity plus an attribute — packed into
/// a single `u64` (entity id `<< 16 | attribute` discriminant).
///
/// `VarId` is a *hash key*, not an ordering key: its numeric order follows
/// interning order, which is execution-dependent. Sort wire-visible output
/// by [`StateKeyRef`](crate::StateKeyRef) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u64);

impl VarId {
    /// Pack an already-interned entity with an attribute.
    pub fn new(entity: EntityId, attribute: Attribute) -> Self {
        VarId(((entity.0 as u64) << 16) | attribute as u16 as u64)
    }

    /// The variable id of (entity, attribute), interning the entity in the
    /// process-wide table on first sight. Allocation-free for entities
    /// already interned.
    pub fn of(entity: &EntityName, attribute: Attribute) -> Self {
        VarId::new(interner().intern(entity), attribute)
    }

    /// The interned entity.
    pub fn entity_id(self) -> EntityId {
        EntityId((self.0 >> 16) as u32)
    }

    /// The attribute (recovered from the packed discriminant).
    pub fn attribute(self) -> Attribute {
        Attribute::catalogue()[(self.0 & 0xFFFF) as usize]
    }

    /// Resolve back to the owning entity's name via the process-wide
    /// table. This is an *edge* operation (wire tombstones, receipts) and
    /// is counted by [`key_resolutions`].
    pub fn resolve_entity(self) -> Arc<EntityName> {
        interner().resolve(self.entity_id())
    }

    /// Resolve to the string [`StateKey`] (edge resolution; counted).
    pub fn resolve_key(self) -> StateKey {
        StateKey::new((*self.resolve_entity()).clone(), self.attribute())
    }
}

/// A concurrent, append-only symbol table of entity names. One process-wide
/// instance backs [`VarId::of`]; independent instances exist only for tests
/// (ordering properties need a table whose insertion order they control).
#[derive(Default)]
pub struct Interner {
    inner: RwLock<InternerInner>,
}

#[derive(Default)]
struct InternerInner {
    /// Name → id. Keyed by the same `Arc`s `names` holds, so each distinct
    /// entity is stored once.
    lookup: HashMap<Arc<EntityName>, u32>,
    /// Id → name, append-only: `names[id.0 as usize]`.
    names: Vec<Arc<EntityName>>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id for `name`, minting one on first sight. Lookups for known
    /// names take a shared read lock and allocate nothing.
    pub fn intern(&self, name: &EntityName) -> EntityId {
        if let Some(&id) = self
            .inner
            .read()
            .expect("interner poisoned")
            .lookup
            .get(name)
        {
            return EntityId(id);
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        if let Some(&id) = inner.lookup.get(name) {
            return EntityId(id); // raced: another thread minted it first
        }
        let id = u32::try_from(inner.names.len()).expect("interner overflow");
        let arc = Arc::new(name.clone());
        inner.names.push(Arc::clone(&arc));
        inner.lookup.insert(arc, id);
        EntityId(id)
    }

    /// The name behind `id`. Panics on a foreign id (ids are only minted
    /// by [`Interner::intern`]). Each call counts as one key resolution.
    pub fn resolve(&self, id: EntityId) -> Arc<EntityName> {
        RESOLUTIONS.fetch_add(1, Ordering::Relaxed);
        Arc::clone(&self.inner.read().expect("interner poisoned").names[id.0 as usize])
    }

    /// Number of distinct entities interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner poisoned").names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A dense, per-pool slot index for one state variable — the columnar
/// companion of [`VarId`].
///
/// Where [`EntityId`] names an entity in the process-wide symbol table,
/// `SlotId` names a *row position* in one pool's column: the first
/// variable a pool ever sees gets slot 0, the next slot 1, and so on.
/// Slots are append-only and **never reused** — deleting a variable
/// tombstones its slot, and re-inserting the same variable lands in the
/// same slot again — so a slot id, once handed out, is a stable row
/// address for the process lifetime. Like every interned id, slots are
/// never serialized; snapshots and deltas carry string keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

impl SlotId {
    /// The slot as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The per-pool slot tables: for each pool, a bijection between the
/// [`VarId`]s the pool has ever stored and dense [`SlotId`]s in
/// first-sight order. One process-wide instance backs the columnar state
/// plane (storage columns and core mirrors agree on slot addressing
/// because they consult the same registry); independent instances exist
/// only for tests.
#[derive(Default)]
pub struct SlotRegistry {
    inner: RwLock<SlotRegistryInner>,
}

#[derive(Default)]
struct SlotRegistryInner {
    pools: HashMap<Pool, PoolSlots>,
}

#[derive(Default)]
struct PoolSlots {
    /// Var → slot.
    lookup: HashMap<VarId, u32>,
    /// Slot → var, append-only: `vars[slot.0 as usize]`.
    vars: Vec<VarId>,
}

impl SlotRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot of `var` in `pool`, minting one on first sight. Lookups
    /// for known variables take a shared read lock and allocate nothing.
    pub fn slot_of(&self, pool: &Pool, var: VarId) -> SlotId {
        if let Some(&slot) = self
            .inner
            .read()
            .expect("slot registry poisoned")
            .pools
            .get(pool)
            .and_then(|p| p.lookup.get(&var))
        {
            return SlotId(slot);
        }
        let mut inner = self.inner.write().expect("slot registry poisoned");
        let pool_slots = inner.pools.entry(pool.clone()).or_default();
        if let Some(&slot) = pool_slots.lookup.get(&var) {
            return SlotId(slot); // raced: another thread minted it first
        }
        let slot = u32::try_from(pool_slots.vars.len()).expect("slot registry overflow");
        pool_slots.vars.push(var);
        pool_slots.lookup.insert(var, slot);
        SlotId(slot)
    }

    /// Slots for a whole batch of variables in one pool, minting on first
    /// sight — one write-lock acquisition for the entire batch instead of
    /// a read-probe + write-mint cycle per variable. Returned slots are in
    /// input order; duplicates in `vars` resolve to the same slot. The
    /// bulk-ingest seed path lives on this: a bootstrap batch is almost
    /// entirely first-sight variables, where `slot_of`'s per-call fast
    /// path never hits.
    pub fn slots_of_batch(&self, pool: &Pool, vars: &[VarId]) -> Vec<SlotId> {
        let mut inner = self.inner.write().expect("slot registry poisoned");
        let pool_slots = inner.pools.entry(pool.clone()).or_default();
        pool_slots.lookup.reserve(vars.len());
        pool_slots.vars.reserve(vars.len());
        vars.iter()
            .map(|v| match pool_slots.lookup.entry(*v) {
                std::collections::hash_map::Entry::Occupied(e) => SlotId(*e.get()),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let slot =
                        u32::try_from(pool_slots.vars.len()).expect("slot registry overflow");
                    pool_slots.vars.push(*v);
                    e.insert(slot);
                    SlotId(slot)
                }
            })
            .collect()
    }

    /// The slot of `var` in `pool`, if one has been minted (never mints —
    /// the read-path counterpart of [`SlotRegistry::slot_of`]).
    pub fn lookup(&self, pool: &Pool, var: VarId) -> Option<SlotId> {
        self.inner
            .read()
            .expect("slot registry poisoned")
            .pools
            .get(pool)?
            .lookup
            .get(&var)
            .map(|&s| SlotId(s))
    }

    /// The variable behind a slot. Panics on a foreign slot (slots are
    /// only minted by [`SlotRegistry::slot_of`]).
    pub fn var_of(&self, pool: &Pool, slot: SlotId) -> VarId {
        self.inner
            .read()
            .expect("slot registry poisoned")
            .pools
            .get(pool)
            .map(|p| p.vars[slot.index()])
            .expect("slot registry: unknown pool")
    }

    /// Slots minted for `pool` so far (the pool's column high-water mark).
    pub fn pool_slots(&self, pool: &Pool) -> usize {
        self.inner
            .read()
            .expect("slot registry poisoned")
            .pools
            .get(pool)
            .map(|p| p.vars.len())
            .unwrap_or(0)
    }
}

static SLOTS: OnceLock<SlotRegistry> = OnceLock::new();

/// The process-wide slot registry backing the columnar state plane.
pub fn slot_registry() -> &'static SlotRegistry {
    SLOTS.get_or_init(SlotRegistry::new)
}

/// Id → name resolutions performed so far, process-wide (both the global
/// table and test-local ones count; the metric watches for resolution
/// creeping into hot loops anywhere).
static RESOLUTIONS: AtomicU64 = AtomicU64::new(0);

static GLOBAL: OnceLock<Interner> = OnceLock::new();

/// The process-wide symbol table backing [`VarId::of`].
pub fn interner() -> &'static Interner {
    GLOBAL.get_or_init(Interner::new)
}

/// Distinct entities in the process-wide table (the `interned_entities`
/// gauge).
pub fn interned_count() -> usize {
    interner().len()
}

/// Cumulative id → name resolutions (the `key_resolutions` counter's
/// source; monotone, process-wide).
pub fn key_resolutions() -> u64 {
    RESOLUTIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(n: &str) -> EntityName {
        EntityName::device("dc1", n)
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let t = Interner::new();
        let a = t.intern(&dev("a"));
        let b = t.intern(&dev("b"));
        assert_ne!(a, b);
        assert_eq!(t.intern(&dev("a")), a);
        assert_eq!(t.len(), 2);
        assert_eq!((a.0, b.0), (0, 1), "ids are dense, in first-sight order");
    }

    #[test]
    fn var_id_packs_and_unpacks() {
        for attr in Attribute::catalogue() {
            let vid = VarId::new(EntityId(12345), *attr);
            assert_eq!(vid.entity_id(), EntityId(12345));
            assert_eq!(vid.attribute(), *attr);
        }
    }

    #[test]
    fn attribute_discriminants_index_the_catalogue() {
        // VarId::attribute depends on `catalogue()[a as usize] == a`:
        // declaration order, discriminant order, and catalogue order are
        // all the same order.
        for (i, attr) in Attribute::catalogue().iter().enumerate() {
            assert_eq!(*attr as u16 as usize, i, "{attr}");
        }
        assert!(
            Attribute::catalogue().len() <= u16::MAX as usize,
            "attribute discriminant must fit the packed 16 bits"
        );
    }

    #[test]
    fn global_round_trip_resolves_and_counts() {
        let entity = dev("round-trip-probe");
        let vid = VarId::of(&entity, Attribute::DeviceFirmwareVersion);
        let before = key_resolutions();
        assert_eq!(*vid.resolve_entity(), entity);
        let key = vid.resolve_key();
        assert_eq!(key, StateKey::new(entity, Attribute::DeviceFirmwareVersion));
        assert!(key_resolutions() >= before + 2, "resolutions are counted");
    }

    #[test]
    fn slots_are_dense_per_pool_and_never_reused() {
        let reg = SlotRegistry::new();
        let a = VarId::of(&dev("slot-a"), Attribute::DeviceFirmwareVersion);
        let b = VarId::of(&dev("slot-b"), Attribute::DeviceFirmwareVersion);
        let os = Pool::Observed;
        let ts = Pool::Target;
        assert_eq!(reg.lookup(&os, a), None, "lookup never mints");
        let sa = reg.slot_of(&os, a);
        let sb = reg.slot_of(&os, b);
        assert_eq!((sa.0, sb.0), (0, 1), "dense, first-sight order");
        // Re-interning yields the same slot; pools are independent spaces.
        assert_eq!(reg.slot_of(&os, a), sa);
        assert_eq!(reg.slot_of(&ts, b).0, 0);
        assert_eq!(reg.var_of(&os, sb), b);
        assert_eq!(reg.pool_slots(&os), 2);
        assert_eq!(reg.pool_slots(&ts), 1);
    }

    #[test]
    fn batch_slot_minting_matches_per_var_minting() {
        let reg = SlotRegistry::new();
        let vars: Vec<VarId> = (0..10)
            .map(|i| VarId::of(&dev(&format!("b{i}")), Attribute::DeviceFirmwareVersion))
            .collect();
        // Pre-mint a few one at a time, then batch the full set with a
        // duplicate: existing slots are reused, new ones minted in order.
        let s0 = reg.slot_of(&Pool::Observed, vars[3]);
        let s1 = reg.slot_of(&Pool::Observed, vars[7]);
        let mut batch = vars.clone();
        batch.push(vars[0]);
        let slots = reg.slots_of_batch(&Pool::Observed, &batch);
        assert_eq!(slots[3], s0);
        assert_eq!(slots[7], s1);
        assert_eq!(slots[10], slots[0], "duplicates share a slot");
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(reg.slot_of(&Pool::Observed, *v), slots[i]);
        }
        assert_eq!(reg.pool_slots(&Pool::Observed), vars.len());
    }

    #[test]
    fn cross_thread_slot_minting_is_consistent() {
        let reg = Arc::new(SlotRegistry::new());
        let vars: Vec<VarId> = (0..64)
            .map(|i| VarId::of(&dev(&format!("s{i}")), Attribute::DeviceAdminPower))
            .collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let vars = vars.clone();
                std::thread::spawn(move || {
                    vars.iter()
                        .map(|v| reg.slot_of(&Pool::Observed, *v))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let per_thread: Vec<Vec<SlotId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for slots in &per_thread {
            assert_eq!(slots, &per_thread[0], "all threads see the same slots");
        }
        assert_eq!(reg.pool_slots(&Pool::Observed), vars.len());
    }

    #[test]
    fn cross_thread_interning_is_deterministic() {
        // Many threads interning the same names concurrently must agree on
        // one id per name, and every id must resolve back to its name.
        let t = Arc::new(Interner::new());
        let names: Vec<EntityName> = (0..64).map(|i| dev(&format!("d{i}"))).collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                let names = names.clone();
                std::thread::spawn(move || names.iter().map(|n| t.intern(n)).collect::<Vec<_>>())
            })
            .collect();
        let per_thread: Vec<Vec<EntityId>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &per_thread {
            assert_eq!(ids, &per_thread[0], "all threads see the same mapping");
        }
        assert_eq!(t.len(), names.len());
        for (name, id) in names.iter().zip(&per_thread[0]) {
            assert_eq!(*t.resolve(*id), *name);
        }
    }
}
