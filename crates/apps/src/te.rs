//! The inter-DC traffic-engineering application (paper §7.1, §7.3).
//!
//! "As described in SWAN, Statesman collects the bandwidth demands from
//! the bandwidth brokers ... the TE application computes and proposes new
//! forwarding states, which are then pushed to all the relevant routers by
//! the Statesman updater."
//!
//! This implementation allocates each DC-pair demand across the WAN's
//! border-router *planes* (Fig 9: two border routers per DC, one mesh per
//! plane). It holds a **low-priority lock** on every router it steers
//! traffic through; when a router's lock cannot be (re-)acquired — the
//! switch-upgrade application preempted it with a high-priority lock — TE
//! steers the affected demands onto the remaining planes, draining the
//! locked router (Fig 10's B). When the lock becomes available again it
//! re-acquires and moves traffic back (E).
//!
//! Forwarding state is written at the *path* level (`PathSwitches` +
//! `PathTrafficAllocation`); Statesman's updater translates paths into
//! per-router routing rules (§4.1).

use crate::harness::{AppStepReport, ManagementApp};
use statesman_core::StatesmanClient;
use statesman_net::FlowSpec;
use statesman_types::{
    Attribute, DatacenterId, DeviceName, EntityName, LockPriority, StateResult, Value,
};
use std::collections::BTreeMap;

/// One inter-DC aggregate demand.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficDemand {
    /// Source datacenter.
    pub src: DatacenterId,
    /// Destination datacenter.
    pub dst: DatacenterId,
    /// Offered volume, Mbps.
    pub mbps: f64,
}

impl TrafficDemand {
    /// Convenience constructor.
    pub fn new(src: impl Into<DatacenterId>, dst: impl Into<DatacenterId>, mbps: f64) -> Self {
        TrafficDemand {
            src: src.into(),
            dst: dst.into(),
            mbps,
        }
    }
}

/// TE configuration.
#[derive(Debug, Clone)]
pub struct TeConfig {
    /// The demand matrix.
    pub demands: Vec<TrafficDemand>,
    /// Border routers per datacenter, indexed by plane: `borders[dc][p]`.
    pub borders: BTreeMap<DatacenterId, Vec<DeviceName>>,
    /// The WAN topology (for path computation: direct where possible,
    /// transit via another DC's router when a link is down — the
    /// SWAN-style multipath behaviour).
    pub graph: statesman_topology::NetworkGraph,
}

impl TeConfig {
    /// Derive the border-plane layout from a WAN spec.
    pub fn from_wan_spec(spec: &statesman_topology::WanSpec, demands: Vec<TrafficDemand>) -> Self {
        let mut borders = BTreeMap::new();
        for (i, dc) in spec.dc_names.iter().enumerate() {
            let brs: Vec<DeviceName> = (0..spec.border_routers_per_dc)
                .map(|p| spec.br_name(i, p))
                .collect();
            borders.insert(DatacenterId::new(dc.clone()), brs);
        }
        TeConfig {
            demands,
            borders,
            graph: spec.build(),
        }
    }

    /// Number of planes (assumes uniform).
    pub fn planes(&self) -> usize {
        self.borders.values().next().map(|v| v.len()).unwrap_or(0)
    }
}

/// The inter-DC TE application.
pub struct InterDcTeApp {
    client: StatesmanClient,
    config: TeConfig,
    /// Last (allocation, route) proposed per path (avoid re-proposing
    /// no-ops; re-propose when either the volume or the route changes).
    current: BTreeMap<String, (f64, Vec<DeviceName>)>,
    /// The flows corresponding to current allocations (offered to the
    /// simulator by the scenario driver).
    flows: Vec<FlowSpec>,
}

impl InterDcTeApp {
    /// Build the application.
    pub fn new(client: StatesmanClient, config: TeConfig) -> Self {
        InterDcTeApp {
            client,
            config,
            current: BTreeMap::new(),
            flows: Vec::new(),
        }
    }

    /// The flows matching the current allocation (give these to
    /// `SimNetwork::offer_flows` so link loads materialize).
    pub fn flow_specs(&self) -> Vec<FlowSpec> {
        self.flows.clone()
    }

    /// The canonical path name for (demand, plane).
    pub fn path_name(d: &TrafficDemand, plane: usize) -> String {
        format!("te:{}>{}:p{plane}", d.src, d.dst)
    }

    /// Build TE's routing view of the WAN: a link is unusable if the OS
    /// reports it oper-down; a border router is unusable if we do not
    /// hold its low-priority lock (someone else owns it — steer around).
    fn routing_view(&self) -> StateResult<statesman_topology::HealthView> {
        let mut health = statesman_topology::HealthView::all_up();
        // Observed WAN link state.
        let rows = self
            .client
            .read_os(&DatacenterId::wan(), statesman_types::Freshness::UpToDate)?;
        for row in rows {
            if row.attribute == Attribute::LinkOperStatus {
                if let (Some(link), Some(oper)) = (row.entity.as_link(), row.value.as_oper()) {
                    if !oper.is_up() {
                        health.set_link_down(link.clone());
                    }
                }
            }
        }
        // Locks: a router we cannot lock is off-limits for our paths.
        for (dc, brs) in &self.config.borders {
            for br in brs {
                let entity = EntityName::device(dc.clone(), br.clone());
                if !self.client.holds_lock(&entity)? {
                    health.set_device_down(br.clone());
                }
            }
        }
        Ok(health)
    }

    /// The usable path (node name list) for one demand on one plane:
    /// shortest path over the routing view from the plane's source router
    /// to its destination router (direct when the mesh link is up;
    /// transit via another DC's same-plane router when it is not).
    fn plane_path(
        &self,
        health: &statesman_topology::HealthView,
        d: &TrafficDemand,
        plane: usize,
    ) -> Option<Vec<DeviceName>> {
        let src = self.config.borders.get(&d.src)?.get(plane)?;
        let dst = self.config.borders.get(&d.dst)?.get(plane)?;
        let graph = &self.config.graph;
        let s = graph.node_id(src)?;
        let t = graph.node_id(dst)?;
        let path = statesman_topology::paths::shortest_path(graph, health, s, t)?;
        Some(
            path.into_iter()
                .map(|id| graph.node(id).name.clone())
                .collect(),
        )
    }
}

impl ManagementApp for InterDcTeApp {
    fn name(&self) -> &str {
        self.client.app().as_str()
    }

    fn step(&mut self) -> StateResult<AppStepReport> {
        let mut report = AppStepReport {
            receipts: self.client.take_receipts()?,
            ..Default::default()
        };

        // 1. (Re-)acquire low-priority locks over every border router we
        //    may want. Preempted locks simply fail; we notice next step.
        for (dc, brs) in &self.config.borders {
            for br in brs {
                let entity = EntityName::device(dc.clone(), br.clone());
                if !self.client.holds_lock(&entity)? {
                    self.client.acquire_lock(&entity, LockPriority::Low, None)?;
                    report.proposals += 1;
                }
            }
        }

        // 2. Compute each demand's usable per-plane path over the routing
        //    view (observed link health + lock ownership), and split the
        //    demand across planes with paths.
        let health = self.routing_view()?;
        let mut proposals = Vec::new();
        let mut flows = Vec::new();
        let planes = self.config.planes();
        for d in &self.config.demands.clone() {
            let plane_paths: Vec<Option<Vec<DeviceName>>> = (0..planes)
                .map(|p| self.plane_path(&health, d, p))
                .collect();
            let available = plane_paths.iter().filter(|p| p.is_some()).count();
            if available == 0 {
                report.note(format!(
                    "no usable path for {}→{}; demand unallocated",
                    d.src, d.dst
                ));
            }
            for (p, path) in plane_paths.into_iter().enumerate() {
                let name = Self::path_name(d, p);
                let (alloc, switches) = match path {
                    Some(switches) => (d.mbps / available as f64, switches),
                    None => (
                        0.0,
                        // Keep the last-known route in the row; allocation 0
                        // tears its rules down.
                        vec![
                            self.config.borders[&d.src][p].clone(),
                            self.config.borders[&d.dst][p].clone(),
                        ],
                    ),
                };
                if switches.len() > 2 && alloc > 0.0 {
                    report.note(format!(
                        "{}→{} plane {p} routed via transit ({} hops)",
                        d.src,
                        d.dst,
                        switches.len() - 1
                    ));
                }
                if alloc > 0.0 {
                    flows.push(FlowSpec::new(
                        name.clone(),
                        switches.first().expect("non-empty path").clone(),
                        switches.last().expect("non-empty path").clone(),
                        alloc,
                    ));
                }
                let changed = self
                    .current
                    .get(&name)
                    .map(|(prev_alloc, prev_route)| {
                        (prev_alloc - alloc).abs() > 1e-9 || prev_route != &switches
                    })
                    .unwrap_or(true);
                if changed {
                    let path = EntityName::path(DatacenterId::wan(), name.clone());
                    proposals.push((
                        path.clone(),
                        Attribute::PathSwitches,
                        Value::DeviceList(switches.clone()),
                    ));
                    proposals.push((path, Attribute::PathTrafficAllocation, Value::Float(alloc)));
                    self.current.insert(name, (alloc, switches));
                }
            }
        }
        self.flows = flows;
        report.proposals += proposals.len();
        self.client.propose(proposals)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
    use statesman_net::{SimClock, SimConfig, SimNetwork};
    use statesman_storage::{StorageConfig, StorageService};
    use statesman_topology::WanSpec;
    use statesman_types::{LinkName, SimDuration};

    fn setup() -> (Coordinator, InterDcTeApp, SimNetwork, StatesmanClient) {
        let clock = SimClock::new();
        let spec = WanSpec::fig9();
        let graph = spec.build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.command_latency_ms = 1_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::new(
            spec.dc_names.iter().map(DatacenterId::new),
            clock.clone(),
            StorageConfig::default(),
        );
        let coord = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig::default(),
        );
        let te_client = StatesmanClient::new("inter-dc-te", storage.clone(), clock.clone());
        let upg_client = StatesmanClient::new("switch-upgrade", storage, clock);
        let demands = vec![
            TrafficDemand::new("dc1", "dc2", 20_000.0),
            TrafficDemand::new("dc1", "dc3", 10_000.0),
        ];
        let app = InterDcTeApp::new(te_client, TeConfig::from_wan_spec(&spec, demands));
        (coord, app, net, upg_client)
    }

    /// One scenario round: app step → statesman round → offer flows →
    /// advance.
    fn round(coord: &Coordinator, app: &mut InterDcTeApp, net: &SimNetwork) {
        app.step().unwrap();
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        net.offer_flows(app.flow_specs());
        net.step(SimDuration::from_millis(1));
    }

    #[test]
    fn demands_split_across_planes_and_flow() {
        let (coord, mut app, net, _) = setup();
        // Round 1 proposes locks; round 2 sees them held and allocates;
        // round 3 has rules programmed and traffic flowing.
        for _ in 0..3 {
            round(&coord, &mut app, &net);
        }
        let report = net.traffic_report();
        assert!(
            (report.delivered_mbps - 30_000.0).abs() < 1.0,
            "delivered {} lost {}",
            report.delivered_mbps,
            report.lost_mbps
        );
        // dc1→dc2 splits over both planes: br-1~br-3 and br-2~br-4.
        let l_p0 = net
            .link_snapshot(&LinkName::between("br-1", "br-3"))
            .unwrap();
        let l_p1 = net
            .link_snapshot(&LinkName::between("br-2", "br-4"))
            .unwrap();
        assert!((l_p0.load_ab_mbps + l_p0.load_ba_mbps - 10_000.0).abs() < 1.0);
        assert!((l_p1.load_ab_mbps + l_p1.load_ba_mbps - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn preempted_lock_drains_the_router() {
        let (coord, mut app, net, upgrade) = setup();
        for _ in 0..3 {
            round(&coord, &mut app, &net);
        }
        // Upgrade preempts br-1 with a high-priority lock.
        let br1 = EntityName::device("dc1", "br-1");
        upgrade
            .acquire_lock(&br1, statesman_types::LockPriority::High, None)
            .unwrap();
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        assert!(upgrade.holds_lock(&br1).unwrap());

        // TE notices (fails to hold), reroutes; two rounds to settle.
        for _ in 0..2 {
            round(&coord, &mut app, &net);
        }
        let report = net.traffic_report();
        assert!(
            (report.delivered_mbps - 30_000.0).abs() < 1.0,
            "all demand still delivered via plane 1: {report:?}"
        );
        for link in net.link_names() {
            if link.touches(&DeviceName::new("br-1")) {
                let l = net.link_snapshot(&link).unwrap();
                assert!(
                    l.load_ab_mbps + l.load_ba_mbps < 1.0,
                    "br-1 drained, but {link} carries load"
                );
            }
        }

        // Release; TE moves traffic back across both planes.
        upgrade.release_lock(&br1).unwrap();
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        for _ in 0..3 {
            round(&coord, &mut app, &net);
        }
        let l_p0 = net
            .link_snapshot(&LinkName::between("br-1", "br-3"))
            .unwrap();
        assert!(
            l_p0.load_ab_mbps + l_p0.load_ba_mbps > 1.0,
            "traffic returned to br-1"
        );
    }

    #[test]
    fn path_names_are_stable() {
        let d = TrafficDemand::new("dc1", "dc3", 1.0);
        assert_eq!(InterDcTeApp::path_name(&d, 1), "te:dc1>dc3:p1");
    }
}
