//! The application control-loop contract.
//!
//! Paper §7.1 emphasizes two things about how applications must interact
//! with Statesman: control loops operate "at the time scale of minutes,
//! not seconds", and applications "need to run iteratively to adapt to the
//! latest OS and the acceptance or rejection of their previous PSes".
//! [`ManagementApp::step`] is that iteration: read the OS, digest
//! receipts, propose.

use statesman_types::{StateResult, WriteReceipt};

/// What one application iteration did (scenario drivers log these).
#[derive(Debug, Clone, Default)]
pub struct AppStepReport {
    /// Variables proposed this step.
    pub proposals: usize,
    /// Receipts digested this step.
    pub receipts: Vec<WriteReceipt>,
    /// Free-form notes ("upgrading pod 4", "drained br-1", …).
    pub notes: Vec<String>,
}

impl AppStepReport {
    /// Append a note (builder style for app internals).
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// How many digested receipts were rejections.
    pub fn rejections(&self) -> usize {
        self.receipts
            .iter()
            .filter(|r| r.outcome.is_rejected())
            .count()
    }
}

/// A loosely coupled management application.
pub trait ManagementApp {
    /// The application's identity (matches its PS pool / receipts).
    fn name(&self) -> &str;

    /// Run one control-loop iteration at the current simulated time.
    fn step(&mut self) -> StateResult<AppStepReport>;

    /// Whether the application considers its current objective complete
    /// (e.g. all targeted switches upgraded). Long-running apps (TE,
    /// mitigation) never finish.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_types::{AppId, Attribute, EntityName, SimTime, StateKey, Value, WriteOutcome};

    #[test]
    fn report_counts_rejections() {
        let mut r = AppStepReport::default();
        r.note("hello");
        r.receipts.push(WriteReceipt {
            app: AppId::new("x"),
            key: StateKey::new(
                EntityName::device("dc1", "a"),
                Attribute::DeviceFirmwareVersion,
            ),
            proposed: Value::text("7"),
            outcome: WriteOutcome::Accepted,
            decided_at: SimTime::ZERO,
        });
        r.receipts.push(WriteReceipt {
            app: AppId::new("x"),
            key: StateKey::new(
                EntityName::device("dc1", "b"),
                Attribute::DeviceFirmwareVersion,
            ),
            proposed: Value::text("7"),
            outcome: WriteOutcome::RejectedInvariant {
                invariant: "cap".into(),
                reason: "r".into(),
            },
            decided_at: SimTime::ZERO,
        });
        assert_eq!(r.rejections(), 1);
        assert_eq!(r.notes.len(), 1);
    }
}
