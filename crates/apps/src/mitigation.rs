//! The link-failure-mitigation application (paper §7.1).
//!
//! "This application periodically reads the Frame-Check-Sequence (FCS)
//! error rates on all the links. When detecting persistently high FCS
//! error rates on certain links, it changes the LinkAdminPower state to
//! shut down those faulty links ... The application also initiates an
//! out-of-band repair process for those links, e.g., by creating a repair
//! ticket for the on-site team."
//!
//! *Persistently* matters: a single bad sample must not shut a link. The
//! app keeps a consecutive-high counter per link and acts only when it
//! reaches the configured persistence. It reads the OS **up-to-date** —
//! this is the example the paper gives of an application that cannot
//! tolerate bounded staleness (§6.4).

use crate::harness::{AppStepReport, ManagementApp};
use statesman_core::StatesmanClient;
use statesman_types::{
    Attribute, DatacenterId, EntityName, Freshness, LinkName, SimTime, StateResult, Value,
};
use std::collections::HashMap;

/// Configuration.
#[derive(Debug, Clone)]
pub struct MitigationConfig {
    /// Datacenters whose links to watch.
    pub datacenters: Vec<DatacenterId>,
    /// FCS error rate above which a sample counts as "high".
    pub fcs_threshold: f64,
    /// Consecutive high samples before acting ("persistently high").
    pub persistence: u32,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        MitigationConfig {
            datacenters: vec![],
            fcs_threshold: 0.01,
            persistence: 2,
        }
    }
}

/// An out-of-band repair ticket for the on-site team.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairTicket {
    /// The faulty link.
    pub link: LinkName,
    /// The observed FCS rate that triggered the shutdown.
    pub observed_rate: f64,
    /// When the ticket was opened.
    pub opened_at: SimTime,
}

/// The failure-mitigation application.
pub struct FailureMitigationApp {
    client: StatesmanClient,
    config: MitigationConfig,
    /// Consecutive high-FCS samples per link.
    strikes: HashMap<EntityName, u32>,
    /// Links already shut by us (avoid re-proposing each round).
    shut: HashMap<EntityName, RepairTicket>,
    tickets: Vec<RepairTicket>,
}

impl FailureMitigationApp {
    /// Build the application.
    pub fn new(client: StatesmanClient, config: MitigationConfig) -> Self {
        FailureMitigationApp {
            client,
            config,
            strikes: HashMap::new(),
            shut: HashMap::new(),
            tickets: Vec::new(),
        }
    }

    /// Repair tickets opened so far.
    pub fn tickets(&self) -> &[RepairTicket] {
        &self.tickets
    }
}

impl ManagementApp for FailureMitigationApp {
    fn name(&self) -> &str {
        self.client.app().as_str()
    }

    fn step(&mut self) -> StateResult<AppStepReport> {
        let mut report = AppStepReport {
            receipts: self.client.take_receipts()?,
            ..Default::default()
        };
        let now = self.client.now();

        let mut proposals = Vec::new();
        for dc in self.config.datacenters.clone() {
            // Failure detection needs the freshest data (§6.4).
            let rows = self.client.read_os(&dc, Freshness::UpToDate)?;
            for row in rows {
                if row.attribute != Attribute::LinkFcsErrorRate {
                    continue;
                }
                let Some(rate) = row.value.as_float() else {
                    continue;
                };
                let entity = row.entity.clone();
                if self.shut.contains_key(&entity) {
                    continue;
                }
                if rate > self.config.fcs_threshold {
                    let strikes = self.strikes.entry(entity.clone()).or_insert(0);
                    *strikes += 1;
                    if *strikes >= self.config.persistence {
                        let link = entity.as_link().expect("FCS rows are link rows").clone();
                        report.note(format!(
                            "link {link} persistently bad (rate {rate:.3}); shutting down"
                        ));
                        proposals.push((
                            entity.clone(),
                            Attribute::LinkAdminPower,
                            Value::power(false),
                        ));
                        let ticket = RepairTicket {
                            link,
                            observed_rate: rate,
                            opened_at: now,
                        };
                        self.tickets.push(ticket.clone());
                        self.shut.insert(entity, ticket);
                    }
                } else {
                    self.strikes.remove(&entity);
                }
            }
        }
        report.proposals = proposals.len();
        self.client.propose(proposals)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
    use statesman_net::{FaultEvent, SimClock, SimConfig, SimNetwork};
    use statesman_storage::StorageService;
    use statesman_topology::DcnSpec;
    use statesman_types::SimDuration;

    fn setup_with_fault(rate: f64) -> (Coordinator, FailureMitigationApp, SimNetwork, LinkName) {
        let clock = SimClock::new();
        let graph = DcnSpec::fig7("dc1").build();
        let link = LinkName::between("tor-4-1", "agg-4-1");
        let mut cfg = SimConfig::ideal();
        cfg.faults.command_latency_ms = 500;
        cfg.faults = cfg.faults.with_event(
            SimTime::from_mins(2),
            FaultEvent::SetFcsErrorRate {
                link: link.clone(),
                rate,
            },
        );
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        let coord = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig::default(),
        );
        let client = StatesmanClient::new("failure-mitigation", storage, clock);
        let app = FailureMitigationApp::new(
            client,
            MitigationConfig {
                datacenters: vec![DatacenterId::new("dc1")],
                fcs_threshold: 0.01,
                persistence: 2,
            },
        );
        (coord, app, net, link)
    }

    #[test]
    fn persistent_fcs_errors_shut_the_link() {
        let (coord, mut app, net, link) = setup_with_fault(0.03);
        // Round 1: no fault yet.
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        app.step().unwrap();
        assert!(app.tickets().is_empty());

        // Fault fires at minute 2; two consecutive high samples needed.
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        app.step().unwrap(); // strike 1
        assert!(app.tickets().is_empty(), "one sample is not persistent");
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        app.step().unwrap(); // strike 2 → shutdown proposed
        assert_eq!(app.tickets().len(), 1);
        assert_eq!(app.tickets()[0].link, link);

        // The checker merges, the updater executes, the link goes down.
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        net.step(SimDuration::from_mins(1));
        assert!(!net.link_oper_up(&link));

        // No duplicate proposals afterwards.
        let r = app.step().unwrap();
        assert_eq!(r.proposals, 0);
        assert_eq!(app.tickets().len(), 1);
    }

    #[test]
    fn transient_blips_do_not_trigger() {
        // Fault raises FCS at minute 2 and clears at minute 7: only one
        // high sample lands, below the persistence threshold.
        let clock = SimClock::new();
        let graph = DcnSpec::fig7("dc1").build();
        let link = LinkName::between("tor-4-1", "agg-4-1");
        let mut cfg = SimConfig::ideal();
        cfg.faults = cfg
            .faults
            .with_event(
                SimTime::from_mins(2),
                FaultEvent::SetFcsErrorRate {
                    link: link.clone(),
                    rate: 0.03,
                },
            )
            .with_event(
                SimTime::from_mins(7),
                FaultEvent::SetFcsErrorRate {
                    link: link.clone(),
                    rate: 0.0,
                },
            );
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        let coord = Coordinator::new(&graph, net, storage.clone(), CoordinatorConfig::default());
        let mut app = FailureMitigationApp::new(
            StatesmanClient::new("failure-mitigation", storage, clock),
            MitigationConfig {
                datacenters: vec![DatacenterId::new("dc1")],
                fcs_threshold: 0.01,
                persistence: 2,
            },
        );
        // t=0: healthy sample. Advance to 5 (fault fires at 2).
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        app.step().unwrap();
        // t=5: high sample → strike 1. Advance to 10 (fault clears at 7).
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        app.step().unwrap();
        assert!(app.tickets().is_empty());
        // t=10: low sample → counter resets; still no ticket ever.
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        let r = app.step().unwrap();
        assert_eq!(r.proposals, 0);
        assert!(app.tickets().is_empty());
    }
}
