#![warn(missing_docs)]

//! # statesman-apps
//!
//! The three management applications from the paper's deployment (§7.1),
//! built as loosely coupled control loops over the
//! [`StatesmanClient`](statesman_core::StatesmanClient) API — they never
//! talk to devices, never talk to each other, and learn everything from
//! the observed state and their receipts:
//!
//! * [`upgrade::SwitchUpgradeApp`] — rolls a firmware version across a
//!   switch population: pod-by-pod with opportunistic parallelism inside a
//!   pod (§7.2's "continuing to write a PS for one Agg upgrade until it
//!   gets rejected"), or border-router-by-border-router behind a
//!   high-priority lock with a drain wait (§7.3);
//! * [`mitigation::FailureMitigationApp`] — watches FCS error rates and
//!   shuts persistently faulty links down, opening an out-of-band repair
//!   ticket;
//! * [`te::InterDcTeApp`] — allocates inter-DC demands across WAN paths
//!   (SWAN-style), holding low-priority locks on the routers it uses and
//!   steering traffic away from routers it cannot lock;
//! * [`energy::EnergySaverApp`] — an ElasticTree-style energy saver that
//!   probes for the capacity invariant's floor by greedily sleeping idle
//!   aggregation switches (§1 motivates energy saving as a standing
//!   management application).
//!
//! All three implement [`ManagementApp`]: a `step()` the scenario driver
//! calls on the application's own period (the paper's apps run every five
//! minutes).

pub mod energy;
pub mod harness;
pub mod mitigation;
pub mod te;
pub mod upgrade;

pub use energy::{EnergyConfig, EnergySaverApp};
pub use harness::{AppStepReport, ManagementApp};
pub use mitigation::{FailureMitigationApp, MitigationConfig, RepairTicket};
pub use te::{InterDcTeApp, TeConfig, TrafficDemand};
pub use upgrade::{DrainTarget, SwitchUpgradeApp, UpgradeConfig, UpgradePlan, UpgradeStatus};
