//! An energy-saving application (paper §1's motivation: switches are
//! "brought down for planned maintenance or saving energy", citing
//! ElasticTree [NSDI'10]).
//!
//! The control loop: read the observed per-link traffic loads of each
//! pod's aggregation switches; when a pod's aggregate utilization has been
//! below the power-down threshold for enough consecutive samples, propose
//! powering off its highest-numbered live Agg; when utilization rises
//! above the wake threshold, propose powering Aggs back on.
//!
//! Like every Statesman application it is *greedy and safety-ignorant by
//! design*: it may propose a power-down that would breach the capacity
//! invariant, and it relies on the checker's rejection to find the floor.
//! (That interplay — an energy saver probing for the invariant boundary —
//! is the loose-coupling thesis of the paper in its purest form.)

use crate::harness::{AppStepReport, ManagementApp};
use statesman_core::StatesmanClient;
use statesman_types::{
    Attribute, DatacenterId, DeviceName, EntityName, Freshness, StateResult, Value,
};
use std::collections::HashMap;

/// Configuration.
#[derive(Debug, Clone)]
pub struct EnergyConfig {
    /// The datacenter to manage.
    pub datacenter: DatacenterId,
    /// Pods with their Agg devices, in pod order.
    pub pods: Vec<(u32, Vec<DeviceName>)>,
    /// Power a pod's Agg down when pod utilization is below this.
    pub sleep_below_utilization: f64,
    /// Power Aggs back up when pod utilization is above this.
    pub wake_above_utilization: f64,
    /// Consecutive low samples required before sleeping an Agg.
    pub persistence: u32,
}

/// The energy-saving application.
pub struct EnergySaverApp {
    client: StatesmanClient,
    config: EnergyConfig,
    low_streak: HashMap<u32, u32>,
    /// Aggs we have put to sleep, per pod (most recent last).
    asleep: HashMap<u32, Vec<DeviceName>>,
    /// Victims whose power-down the checker refused: the invariant floor.
    /// Cleared when utilization rises (the floor moves with load).
    blocked: std::collections::HashSet<DeviceName>,
}

impl EnergySaverApp {
    /// Build the application.
    pub fn new(client: StatesmanClient, config: EnergyConfig) -> Self {
        EnergySaverApp {
            client,
            config,
            low_streak: HashMap::new(),
            asleep: HashMap::new(),
            blocked: std::collections::HashSet::new(),
        }
    }

    /// Devices currently slept by this app (all pods).
    pub fn sleeping(&self) -> Vec<DeviceName> {
        let mut v: Vec<DeviceName> = self.asleep.values().flatten().cloned().collect();
        v.sort();
        v
    }

    /// Pod utilization: the *hottest* directed load among the pod's
    /// Agg-incident links, as a fraction of nominal link capacity. Max
    /// (not mean) because a single saturating link is what forces a wake.
    fn pod_utilization(
        &self,
        os_loads: &HashMap<EntityName, (f64, f64)>,
        aggs: &[DeviceName],
    ) -> f64 {
        let mut peak: f64 = 0.0;
        for (entity, (ab, ba)) in os_loads {
            let Some(link) = entity.as_link() else {
                continue;
            };
            if aggs.iter().any(|a| link.touches(a)) {
                peak = peak.max(ab.max(*ba) / 10_000.0); // nominal 10G links
            }
        }
        peak
    }
}

impl ManagementApp for EnergySaverApp {
    fn name(&self) -> &str {
        self.client.app().as_str()
    }

    fn step(&mut self) -> StateResult<AppStepReport> {
        let mut report = AppStepReport {
            receipts: self.client.take_receipts()?,
            ..Default::default()
        };

        // Digest rejections: a rejected power-down means the checker found
        // the capacity floor — pull the device back out of our sleep set.
        let receipts = report.receipts.clone();
        for r in &receipts {
            if r.outcome.is_rejected() && r.key.attribute == Attribute::DeviceAdminPower {
                if let Some(dev) = r.key.entity.as_device() {
                    for slept in self.asleep.values_mut() {
                        slept.retain(|d| d != dev);
                    }
                    self.blocked.insert(dev.clone());
                    report.note(format!("power-down of {dev} rejected; backing off"));
                }
            }
        }

        // Read loads (bounded-stale is plenty for energy trends, §6.4).
        let rows = self
            .client
            .read_os(&self.config.datacenter, Freshness::BoundedStale)?;
        let mut loads: HashMap<EntityName, (f64, f64)> = HashMap::new();
        for row in rows {
            let e = loads.entry(row.entity.clone()).or_insert((0.0, 0.0));
            match row.attribute {
                Attribute::LinkTrafficLoadAB => e.0 = row.value.as_float().unwrap_or(0.0),
                Attribute::LinkTrafficLoadBA => e.1 = row.value.as_float().unwrap_or(0.0),
                _ => {}
            }
        }

        let mut proposals = Vec::new();
        for (pod, aggs) in self.config.pods.clone() {
            let util = self.pod_utilization(&loads, &aggs);
            let slept = self.asleep.entry(pod).or_default();
            let live: Vec<DeviceName> = aggs
                .iter()
                .filter(|a| !slept.contains(a))
                .cloned()
                .collect();

            if util < self.config.sleep_below_utilization && live.len() > 1 {
                let streak = self.low_streak.entry(pod).or_insert(0);
                *streak += 1;
                if *streak >= self.config.persistence {
                    // Sleep the highest-numbered live Agg the checker has
                    // not already refused (the refusal marks the floor).
                    let victim = live
                        .iter()
                        .rev()
                        .find(|d| !self.blocked.contains(*d))
                        .cloned();
                    if let Some(victim) = victim {
                        report.note(format!(
                            "pod {pod} at {util:.2} utilization; sleeping {victim}"
                        ));
                        proposals.push((
                            EntityName::device(self.config.datacenter.clone(), victim.clone()),
                            Attribute::DeviceAdminPower,
                            Value::power(false),
                        ));
                        slept.push(victim);
                    }
                    *streak = 0;
                }
            } else {
                self.low_streak.remove(&pod);
                // Rising load moves the invariant floor: allow re-probing.
                self.blocked.clear();
                if util > self.config.wake_above_utilization && !slept.is_empty() {
                    let wake = slept.pop().expect("non-empty");
                    report.note(format!("pod {pod} at {util:.2}; waking {wake}"));
                    proposals.push((
                        EntityName::device(self.config.datacenter.clone(), wake),
                        Attribute::DeviceAdminPower,
                        Value::power(true),
                    ));
                }
            }
        }
        report.proposals = proposals.len();
        self.client.propose(proposals)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upgrade::agg_pods_of;
    use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
    use statesman_net::{SimClock, SimConfig, SimNetwork};
    use statesman_storage::StorageService;
    use statesman_topology::DcnSpec;
    use statesman_types::SimDuration;

    fn setup() -> (Coordinator, EnergySaverApp, SimNetwork) {
        let clock = SimClock::new();
        let graph = DcnSpec::fig7("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.command_latency_ms = 500;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        let coord = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig::default(),
        );
        let app = EnergySaverApp::new(
            StatesmanClient::new("energy-saver", storage, clock),
            EnergyConfig {
                datacenter: DatacenterId::new("dc1"),
                pods: agg_pods_of(&graph, &DatacenterId::new("dc1"))
                    .into_iter()
                    .take(1)
                    .collect(),
                sleep_below_utilization: 0.1,
                wake_above_utilization: 0.5,
                persistence: 2,
            },
        );
        (coord, app, net)
    }

    #[test]
    fn idle_pod_sleeps_aggs_until_the_checker_refuses() {
        let (coord, mut app, net) = setup();
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();

        // The fabric is idle; the app sleeps one Agg every `persistence`
        // steps until the 50%-capacity invariant refuses (at most 2 of 4
        // Aggs may be down).
        let mut rejected_seen = false;
        for _ in 0..12 {
            let r = app.step().unwrap();
            coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
            net.step(SimDuration::from_mins(1));
            if r.rejections() > 0 {
                rejected_seen = true;
            }
        }
        assert!(rejected_seen, "the checker must eventually refuse");
        // Exactly 2 Aggs sleeping — the invariant floor.
        assert_eq!(app.sleeping().len(), 2, "{:?}", app.sleeping());
        let down = ["agg-1-1", "agg-1-2", "agg-1-3", "agg-1-4"]
            .iter()
            .filter(|d| !net.device_operational(&DeviceName::new(**d)))
            .count();
        assert_eq!(down, 2, "two Aggs actually powered down");
    }

    #[test]
    fn traffic_wakes_slept_aggs() {
        let (coord, mut app, net) = setup();
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        // Sleep one Agg first.
        for _ in 0..3 {
            app.step().unwrap();
            coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
            net.step(SimDuration::from_mins(1));
        }
        assert!(!app.sleeping().is_empty());

        // Load the pod: a heavy flow across pod-1 links.
        use statesman_net::{DeviceCommand, FlowSpec};
        use statesman_types::{FlowLinkRule, LinkName};
        let l1 = LinkName::between("tor-1-1", "agg-1-1");
        let l2 = LinkName::between("agg-1-1", "tor-1-2");
        net.submit(
            &DeviceName::new("tor-1-1"),
            DeviceCommand::SetRoutingRules {
                rules: vec![FlowLinkRule::new("hot", l1, 1.0)],
            },
        );
        net.submit(
            &DeviceName::new("agg-1-1"),
            DeviceCommand::SetRoutingRules {
                rules: vec![FlowLinkRule::new("hot", l2, 1.0)],
            },
        );
        net.offer_flows(vec![FlowSpec::new("hot", "tor-1-1", "tor-1-2", 9_000.0)]);
        net.step(SimDuration::from_mins(1));

        // The monitor reports the load; bounded-stale caches expire after
        // 5 minutes, so advance past the bound before the app reads.
        let mut woke = false;
        for _ in 0..6 {
            coord.tick_and_advance(SimDuration::from_mins(6)).unwrap();
            net.step(SimDuration::from_mins(1));
            let r = app.step().unwrap();
            if r.notes.iter().any(|n| n.contains("waking")) {
                woke = true;
                break;
            }
        }
        assert!(woke, "high utilization must wake a slept Agg");
    }
}
