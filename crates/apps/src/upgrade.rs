//! The switch-upgrade application (paper §7.1–§7.3).
//!
//! "When a new version of firmware is released by a switch vendor, this
//! application automatically schedules all the switches from the same
//! vendor to upgrade by proposing a new value of DeviceFirmwareVersion."
//!
//! Two rollout plans, matching the two scenarios:
//!
//! * [`UpgradePlan::PodByPod`] (Fig 8): "it will upgrade the pods one by
//!   one. Within each pod, it will attempt to upgrade multiple Aggs in
//!   parallel by continuing to write a PS for one Agg upgrade until it
//!   gets rejected by Statesman." The app is deliberately greedy — safety
//!   is the checker's job, not the app's.
//! * [`UpgradePlan::LockAndDrain`] (Fig 10): for each border router in
//!   turn, acquire the high-priority lock, wait for the router's observed
//!   traffic to drain to zero (TE moves it away once it loses its
//!   low-priority lock), upgrade, release, proceed.

use crate::harness::{AppStepReport, ManagementApp};
use statesman_core::StatesmanClient;
use statesman_types::{
    Attribute, DatacenterId, DeviceName, EntityName, LockPriority, StateResult, Value,
};

/// Which rollout strategy to run.
#[derive(Debug, Clone, PartialEq)]
pub enum UpgradePlan {
    /// Fig-8 style: upgrade the Aggs of each pod in pod order,
    /// opportunistically parallel within a pod.
    PodByPod {
        /// The datacenter whose Aggs to upgrade.
        datacenter: DatacenterId,
        /// Pods in upgrade order, each with its Agg device names.
        pods: Vec<(u32, Vec<DeviceName>)>,
    },
    /// Fig-10 style: lock, drain, upgrade each device in order.
    LockAndDrain {
        /// The devices (border routers) in upgrade order.
        devices: Vec<DrainTarget>,
        /// Observed load (Mbps) below which the router counts as drained.
        drain_epsilon_mbps: f64,
    },
}

/// One lock-and-drain target: a device plus the link entities whose
/// observed loads indicate whether it still carries traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainTarget {
    /// Home datacenter.
    pub datacenter: DatacenterId,
    /// The device.
    pub device: DeviceName,
    /// Link entities to poll for load.
    pub links: Vec<EntityName>,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct UpgradeConfig {
    /// The firmware version to roll out.
    pub target_version: String,
    /// The rollout plan.
    pub plan: UpgradePlan,
}

/// Externally visible progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpgradeStatus {
    /// Still working (current pod or device index).
    InProgress {
        /// Pod number (pod plan) or device index (lock plan).
        position: String,
    },
    /// Every targeted device observed at the target version.
    Done,
}

/// Per-device phase in the lock-and-drain plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainPhase {
    /// Waiting for our high-priority lock to be granted.
    Locking,
    /// Lock held; waiting for load to hit zero.
    Draining,
    /// Upgrade proposed; waiting for the OS to show the new version.
    Upgrading,
}

/// The switch-upgrade application.
pub struct SwitchUpgradeApp {
    client: StatesmanClient,
    config: UpgradeConfig,
    /// PodByPod: index of the pod currently being upgraded.
    current_pod_idx: usize,
    /// LockAndDrain: index of the device currently being upgraded.
    current_dev_idx: usize,
    phase: DrainPhase,
    done: bool,
}

impl SwitchUpgradeApp {
    /// Build the application.
    pub fn new(client: StatesmanClient, config: UpgradeConfig) -> Self {
        SwitchUpgradeApp {
            client,
            config,
            current_pod_idx: 0,
            current_dev_idx: 0,
            phase: DrainPhase::Locking,
            done: false,
        }
    }

    /// Current progress.
    pub fn status(&self) -> UpgradeStatus {
        if self.done {
            return UpgradeStatus::Done;
        }
        let position = match &self.config.plan {
            UpgradePlan::PodByPod { pods, .. } => pods
                .get(self.current_pod_idx)
                .map(|(p, _)| format!("pod {p}"))
                .unwrap_or_else(|| "finished".into()),
            UpgradePlan::LockAndDrain { devices, .. } => devices
                .get(self.current_dev_idx)
                .map(|t| format!("device {}", t.device))
                .unwrap_or_else(|| "finished".into()),
        };
        UpgradeStatus::InProgress { position }
    }

    /// Observed firmware of a device, if the OS has it.
    fn observed_version(&self, dc: &DatacenterId, dev: &DeviceName) -> StateResult<Option<String>> {
        Ok(self
            .client
            .read_os_value(
                &EntityName::device(dc.clone(), dev.clone()),
                Attribute::DeviceFirmwareVersion,
            )?
            .and_then(|v| v.as_text().map(|s| s.to_string())))
    }

    fn step_pod_by_pod(&mut self) -> StateResult<AppStepReport> {
        let mut report = AppStepReport {
            receipts: self.client.take_receipts()?,
            ..Default::default()
        };
        let (datacenter, pods) = match &self.config.plan {
            UpgradePlan::PodByPod { datacenter, pods } => (datacenter.clone(), pods.clone()),
            _ => unreachable!("plan checked by caller"),
        };

        // Find the first pod with pending devices; that's the current pod
        // (pods strictly one-by-one).
        let mut proposals = Vec::new();
        for (idx, (pod, aggs)) in pods.iter().enumerate() {
            let mut pending = Vec::new();
            for agg in aggs {
                let observed = self.observed_version(&datacenter, agg)?;
                if observed.as_deref() != Some(self.config.target_version.as_str()) {
                    pending.push(agg.clone());
                }
            }
            if pending.is_empty() {
                continue;
            }
            self.current_pod_idx = idx;
            report.note(format!("upgrading pod {pod}: {} pending", pending.len()));
            // Greedy parallelism: propose every pending Agg; Statesman
            // accepts as many as the invariants allow. Skip devices whose
            // upgrade is already accepted (in the TS) to avoid churning.
            for agg in pending {
                let entity = EntityName::device(datacenter.clone(), agg.clone());
                let ts = self
                    .client
                    .read_ts_value(&entity, Attribute::DeviceFirmwareVersion)?;
                if ts.as_ref().and_then(|v| v.as_text())
                    == Some(self.config.target_version.as_str())
                {
                    continue; // accepted, updater is on it
                }
                proposals.push((
                    entity,
                    Attribute::DeviceFirmwareVersion,
                    Value::text(&self.config.target_version),
                ));
            }
            break;
        }
        if proposals.is_empty()
            && pods.iter().all(|(_, aggs)| {
                aggs.iter().all(|a| {
                    self.observed_version(&datacenter, a)
                        .ok()
                        .flatten()
                        .as_deref()
                        == Some(self.config.target_version.as_str())
                })
            })
        {
            self.done = true;
            report.note("all pods upgraded");
            return Ok(report);
        }
        report.proposals = proposals.len();
        self.client.propose(proposals)?;
        Ok(report)
    }

    fn step_lock_and_drain(&mut self) -> StateResult<AppStepReport> {
        let mut report = AppStepReport {
            receipts: self.client.take_receipts()?,
            ..Default::default()
        };
        let (devices, drain_epsilon) = match &self.config.plan {
            UpgradePlan::LockAndDrain {
                devices,
                drain_epsilon_mbps,
            } => (devices.clone(), *drain_epsilon_mbps),
            _ => unreachable!("plan checked by caller"),
        };

        let Some(target) = devices.get(self.current_dev_idx).cloned() else {
            self.done = true;
            return Ok(report);
        };
        let (dc, dev) = (target.datacenter.clone(), target.device.clone());
        let entity = EntityName::device(dc.clone(), dev.clone());

        match self.phase {
            DrainPhase::Locking => {
                if self.client.holds_lock(&entity)? {
                    report.note(format!("lock held on {dev}; draining"));
                    self.phase = DrainPhase::Draining;
                } else {
                    report.note(format!("acquiring high-priority lock on {dev}"));
                    self.client
                        .acquire_lock(&entity, LockPriority::High, None)?;
                    report.proposals += 1;
                }
            }
            DrainPhase::Draining => {
                // Sum observed directional loads on the router's links.
                let mut load = 0.0;
                for le in &target.links {
                    for attr in [Attribute::LinkTrafficLoadAB, Attribute::LinkTrafficLoadBA] {
                        if let Some(v) = self.client.read_os_value(le, attr)? {
                            load += v.as_float().unwrap_or(0.0);
                        }
                    }
                }
                if load <= drain_epsilon {
                    report.note(format!("{dev} drained; proposing upgrade"));
                    self.client.propose([(
                        entity,
                        Attribute::DeviceFirmwareVersion,
                        Value::text(&self.config.target_version),
                    )])?;
                    report.proposals += 1;
                    self.phase = DrainPhase::Upgrading;
                } else {
                    report.note(format!("{dev} carries {load:.0} Mbps; waiting"));
                }
            }
            DrainPhase::Upgrading => {
                let observed = self.observed_version(&dc, &dev)?;
                if observed.as_deref() == Some(self.config.target_version.as_str()) {
                    report.note(format!("{dev} upgraded; releasing lock"));
                    self.client.release_lock(&entity)?;
                    report.proposals += 1;
                    self.current_dev_idx += 1;
                    self.phase = DrainPhase::Locking;
                    if self.current_dev_idx >= devices.len() {
                        self.done = true;
                    }
                } else {
                    report.note(format!("{dev} still rebooting"));
                }
            }
        }
        Ok(report)
    }
}

impl ManagementApp for SwitchUpgradeApp {
    fn name(&self) -> &str {
        self.client.app().as_str()
    }

    fn step(&mut self) -> StateResult<AppStepReport> {
        if self.done {
            return Ok(AppStepReport::default());
        }
        match self.config.plan {
            UpgradePlan::PodByPod { .. } => self.step_pod_by_pod(),
            UpgradePlan::LockAndDrain { .. } => self.step_lock_and_drain(),
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Helper: the Agg devices of each pod of a Fig-7-style fabric, in pod
/// order — the population §7.2's rollout targets.
pub fn agg_pods_of(
    graph: &statesman_topology::NetworkGraph,
    dc: &DatacenterId,
) -> Vec<(u32, Vec<DeviceName>)> {
    graph
        .pods_in(dc)
        .into_iter()
        .map(|pod| {
            let aggs: Vec<DeviceName> = graph
                .devices_in_pod(dc, pod)
                .into_iter()
                .filter(|&id| graph.node(id).role == statesman_types::DeviceRole::Agg)
                .map(|id| graph.node(id).name.clone())
                .collect();
            (pod, aggs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
    use statesman_net::{SimClock, SimConfig, SimNetwork};
    use statesman_storage::StorageService;
    use statesman_topology::DcnSpec;
    use statesman_types::SimDuration;

    fn fig7_setup() -> (
        Coordinator,
        StatesmanClient,
        SimNetwork,
        statesman_topology::NetworkGraph,
    ) {
        let clock = SimClock::new();
        let graph = DcnSpec::fig7("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.command_latency_ms = 1_000;
        cfg.faults.reboot_window_ms = 8 * 60_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        let coord = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig::default(),
        );
        let client = StatesmanClient::new("switch-upgrade", storage, clock);
        (coord, client, net, graph)
    }

    #[test]
    fn pod_by_pod_respects_two_at_a_time() {
        let (coord, client, net, graph) = fig7_setup();
        let dc = DatacenterId::new("dc1");
        let mut app = SwitchUpgradeApp::new(
            client,
            UpgradeConfig {
                target_version: "7.0".into(),
                plan: UpgradePlan::PodByPod {
                    datacenter: dc,
                    pods: agg_pods_of(&graph, &DatacenterId::new("dc1")),
                },
            },
        );

        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        // App proposes all 4 Aggs of pod 1; checker lets 2 through.
        app.step().unwrap();
        let r = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        assert_eq!(r.accepted(), 2, "50%-capacity invariant caps at 2 of 4");
        assert_eq!(r.rejected(), 2);

        // During reboot the app keeps pushing pod 1; nothing new accepted.
        app.step().unwrap();
        let r2 = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        assert_eq!(r2.accepted(), 0, "{:?}", r2.checkers[0].receipts);

        // Let reboots finish; the first two come back at 7.0.
        net.step(SimDuration::from_mins(10));
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        assert_eq!(
            net.device_snapshot(&"agg-1-1".into())
                .unwrap()
                .observed_firmware(),
            "7.0"
        );

        // Next app step proposes the remaining two of pod 1.
        app.step().unwrap();
        let r3 = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        assert_eq!(r3.accepted(), 2);
        assert!(matches!(app.status(), UpgradeStatus::InProgress { .. }));
    }

    #[test]
    fn pod_by_pod_finishes_eventually() {
        let (coord, client, net, graph) = fig7_setup();
        let mut app = SwitchUpgradeApp::new(
            client,
            UpgradeConfig {
                target_version: "7.0".into(),
                plan: UpgradePlan::PodByPod {
                    datacenter: DatacenterId::new("dc1"),
                    pods: agg_pods_of(&graph, &DatacenterId::new("dc1"))
                        .into_iter()
                        .take(2) // keep the test quick: 2 pods
                        .collect(),
                },
            },
        );
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        for _ in 0..40 {
            if app.is_done() {
                break;
            }
            app.step().unwrap();
            coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
            net.step(SimDuration::from_mins(5));
        }
        assert!(app.is_done(), "status: {:?}", app.status());
        for pod in 1..=2 {
            for a in 1..=4 {
                let name = format!("agg-{pod}-{a}");
                assert_eq!(
                    net.device_snapshot(&DeviceName::new(name.clone()))
                        .unwrap()
                        .observed_firmware(),
                    "7.0",
                    "{name}"
                );
            }
        }
    }
}
