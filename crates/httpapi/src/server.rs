//! The API server: the versioned v1 API over a [`StorageService`],
//! rebuilt as a fixed worker thread-pool behind a readiness-driven
//! reactor (ROADMAP item 3: "thousands of out-of-process applications").
//!
//! ## Architecture
//!
//! ```text
//! accept thread ──> reactor thread ──> fair ready-queue ──> N workers
//!      │                 │  ▲                                  │
//!      │ (429 over       │  └──────── keep-alive return ───────┘
//!      │  max_connections)│
//!      │                 └── owns idle connections, nonblocking;
//!      │                     poll(2) readiness, incremental parse,
//!      │                     idle timeouts (408), 431/413/400,
//!      │                     429 when the ready-queue is full
//! ```
//!
//! - **Accept** only hands sockets over (or sheds with `429` +
//!   `Retry-After` when the connection limit is hit). It never blocks on
//!   a client.
//! - The **reactor** owns every idle connection in nonblocking mode,
//!   accumulates bytes, and parses incrementally ([`crate::http::parse_head`]).
//!   A complete request becomes a job in the bounded fair queue; a full
//!   queue sheds `429` instead of letting the OS accept backlog decide.
//! - **Workers** (fixed pool — thread count is `workers + 2` regardless
//!   of connection count) run read→dispatch→write with HTTP/1.1
//!   keep-alive, drain pipelined requests already buffered on the
//!   connection (budget-capped, re-queued through the fair queue past the
//!   burst limit so a mega-pipeliner cannot monopolize a worker), and
//!   coalesce queued same-pool `/v1/write` bodies into one storage batch
//!   (exploiting the sharded storage plane's concurrent fan-out).
//! - **Fairness**: requests carry `x-statesman-app`; the ready-queue is
//!   deficit-round-robin across apps (quantum 1), so one chatty app
//!   cannot starve the rest.
//!
//! Dispatch is a typed route table: the hot path scans only the six v1
//! rows ([`ROUTES`]); the Table-3 aliases live in a separate cold table
//! ([`LEGACY_ROUTES`]) consulted only on a v1 miss, and answer `410 Gone`
//! with a `link` to the successor unless [`ServerConfig::legacy_aliases`]
//! is enabled.
//!
//! Every response carries `x-statesman-server`; every retryable error
//! carries `retry-after`; delta and pool reads carry
//! [`WATERMARK_HEADER`]; paginated receipts carry [`CURSOR_HEADER`].

use crate::error::{error_response, reason, ApiErrorBody};
use crate::http::{parse_head, HttpLimits, HttpRequest, HttpResponse, RequestError, RequestHead};
use serde::{Deserialize, Serialize};
use statesman_obs::{Gauge, Histogram, Obs, RoundTrace, StatusBoard, LATENCY_BUCKETS_US};
use statesman_storage::{ReadRequest, StorageService, WriteRequest};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, StateError,
    StateResult, Version, WriteReceipt,
};
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default per-connection idle timeout (no complete request arriving).
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Response header carrying the pool watermark: on delta reads
/// (`GET /v1/read?since=...`) clients feed its value back as the next
/// `since`; full pool reads carry the pool's current watermark so a
/// snapshot-then-follow client can start its changefeed without a probe.
pub const WATERMARK_HEADER: &str = "x-statesman-watermark";

/// Response header carrying the receipt-page cursor on paginated
/// `GET /v1/receipts?limit=` reads; feed it back as `after=` to ack the
/// page and fetch the next.
pub const CURSOR_HEADER: &str = "x-statesman-cursor";

/// Response header naming the serving implementation and version,
/// stamped on every response.
pub const SERVER_HEADER: &str = "x-statesman-server";

/// The `x-statesman-server` value this build stamps.
pub const SERVER_VERSION: &str = concat!("statesman/", env!("CARGO_PKG_VERSION"));

/// The endpoints the server implements (each may be reachable through
/// several [`RouteSpec`] entries: the v1 path and deprecated aliases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /v1/read` — pool rows at a chosen freshness (Table 3a).
    /// With `since=<version>`, a [`statesman_types::StateDelta`] of
    /// changes past that watermark instead (the changefeed read; the
    /// reply carries the new watermark in [`WATERMARK_HEADER`]).
    Read,
    /// `POST /v1/write` — upsert rows into a pool (Table 3a).
    Write,
    /// `GET /v1/receipts` — an application's receipts; `?limit=&after=`
    /// pages with a stable cursor, no `limit` drains (legacy shape).
    Receipts,
    /// `GET /v1/health` — liveness plus the server's simulated clock.
    Health,
    /// `GET /v1/metrics` — the metrics registry (text or JSON).
    Metrics,
    /// `GET /v1/status` — recent round traces and the status board.
    Status,
}

/// One row of the route table: a method + path bound to a [`Route`].
#[derive(Debug, Clone, Copy)]
pub struct RouteSpec {
    /// HTTP method.
    pub method: &'static str,
    /// Exact request path.
    pub path: &'static str,
    /// The endpoint this row reaches.
    pub route: Route,
    /// Deprecated alias? (Table-3 spelling; gated by
    /// [`ServerConfig::legacy_aliases`].)
    pub deprecated: bool,
    /// The v1 path a deprecated alias forwards to (self for v1 rows).
    pub successor: &'static str,
}

/// The v1 route table — the only table the hot dispatch path scans.
pub const ROUTES: &[RouteSpec] = &[
    RouteSpec {
        method: "GET",
        path: "/v1/read",
        route: Route::Read,
        deprecated: false,
        successor: "/v1/read",
    },
    RouteSpec {
        method: "POST",
        path: "/v1/write",
        route: Route::Write,
        deprecated: false,
        successor: "/v1/write",
    },
    RouteSpec {
        method: "GET",
        path: "/v1/receipts",
        route: Route::Receipts,
        deprecated: false,
        successor: "/v1/receipts",
    },
    RouteSpec {
        method: "GET",
        path: "/v1/health",
        route: Route::Health,
        deprecated: false,
        successor: "/v1/health",
    },
    RouteSpec {
        method: "GET",
        path: "/v1/metrics",
        route: Route::Metrics,
        deprecated: false,
        successor: "/v1/metrics",
    },
    RouteSpec {
        method: "GET",
        path: "/v1/status",
        route: Route::Status,
        deprecated: false,
        successor: "/v1/status",
    },
];

/// The sunset Table-3 spellings, out of the hot path. Disabled by
/// default: they answer `410 Gone` with a `link` to the v1 successor
/// unless [`ServerConfig::legacy_aliases`] re-enables them for one more
/// deprecation cycle.
pub const LEGACY_ROUTES: &[RouteSpec] = &[
    RouteSpec {
        method: "GET",
        path: "/NetworkState/Read",
        route: Route::Read,
        deprecated: true,
        successor: "/v1/read",
    },
    RouteSpec {
        method: "POST",
        path: "/NetworkState/Write",
        route: Route::Write,
        deprecated: true,
        successor: "/v1/write",
    },
    RouteSpec {
        method: "GET",
        path: "/NetworkState/Receipts",
        route: Route::Receipts,
        deprecated: true,
        successor: "/v1/receipts",
    },
    RouteSpec {
        method: "GET",
        path: "/healthz",
        route: Route::Health,
        deprecated: true,
        successor: "/v1/health",
    },
];

/// `GET /v1/health` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always true when the server answers.
    pub ok: bool,
    /// The server's simulated clock, milliseconds since scenario start
    /// (out-of-process clients stamp proposals with this).
    pub now_ms: u64,
}

/// `GET /v1/status` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusResponse {
    /// The live status board (quarantine set, open breakers, degraded
    /// partitions, last round index).
    pub status: StatusBoard,
    /// The most recent round traces, oldest first.
    pub traces: Vec<RoundTrace>,
}

/// Front-end tuning knobs. [`Default`] is production-shaped; tests use
/// small values to hit the edges quickly.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the pool. `0` means auto: available parallelism
    /// clamped to `[2, 8]`. Total thread count is `workers + 2` (accept +
    /// reactor) regardless of how many connections are open.
    pub workers: usize,
    /// Ready-queue bound. A complete request arriving while the queue
    /// holds this many is shed with `429` + `Retry-After`.
    pub queue_depth: usize,
    /// Open-connection bound. Accepts beyond it are answered `429` and
    /// closed immediately — admission control, not the OS accept backlog.
    pub max_connections: usize,
    /// How long a connection may sit without producing a complete
    /// request: a never-sent or half-sent request is answered `408`; a
    /// quiet keep-alive connection that has been served before is closed
    /// silently.
    pub idle_timeout: Duration,
    /// Serve many requests per connection (HTTP/1.1 keep-alive). Off
    /// forces `connection: close` after every response.
    pub keep_alive: bool,
    /// Requests served on one connection before the server closes it
    /// (resource rotation; `Retry-After`-free — clients just reconnect).
    pub max_requests_per_conn: u64,
    /// Serve the Table-3 alias paths (deprecation headers and all).
    /// Default off: aliases answer `410 Gone` + `link` to the successor.
    pub legacy_aliases: bool,
    /// Maximum request-line + header bytes before `431`.
    pub max_header_bytes: usize,
    /// Maximum declared body bytes before `413`.
    pub max_body_bytes: usize,
    /// The backoff advised on `429` sheds (rounded up to whole seconds
    /// on the wire).
    pub retry_after: Duration,
    /// Maximum queued same-pool `/v1/write` jobs coalesced into one
    /// storage batch (1 disables coalescing).
    pub write_coalesce: usize,
    /// Hard bound on the write-coalescing gather window, measured from
    /// the moment the *popped* write entered the queue. A worker holding
    /// an under-filled batch may wait for more same-pool writes only
    /// until `enqueued_at + write_coalesce_max_delay`; a write that
    /// already aged past that in the queue commits immediately, so under
    /// backlog the window is zero and no write ever waits on an
    /// unbounded batch window. `Duration::ZERO` disables gathering
    /// (coalescing then only picks up writes already queued).
    pub write_coalesce_max_delay: Duration,
    /// Pipelined requests a worker drains per queue visit before the
    /// connection is re-queued through the fair queue.
    pub pipeline_burst: usize,
    /// How long [`ApiServer::shutdown`] waits for in-flight workers to
    /// finish before detaching them.
    pub stop_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_depth: 256,
            max_connections: 16_384,
            idle_timeout: DEFAULT_IO_TIMEOUT,
            keep_alive: true,
            max_requests_per_conn: 100_000,
            legacy_aliases: false,
            max_header_bytes: 16 << 10,
            max_body_bytes: 64 << 20,
            retry_after: Duration::from_secs(1),
            write_coalesce: 8,
            write_coalesce_max_delay: Duration::from_millis(2),
            pipeline_burst: 32,
            stop_grace: Duration::from_secs(3),
        }
    }
}

impl ServerConfig {
    fn worker_count(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }

    fn limits(&self) -> HttpLimits {
        HttpLimits {
            max_header_bytes: self.max_header_bytes,
            max_body_bytes: self.max_body_bytes,
        }
    }

    fn retry_after_ms(&self) -> u64 {
        (self.retry_after.as_millis() as u64).max(1)
    }
}

/// Shared open-connection accounting. Every [`Conn`] holds an `Arc` and
/// decrements on drop, so the count stays right no matter where a
/// connection dies (reactor, queue, worker).
#[derive(Default)]
struct ConnCount {
    open: AtomicI64,
    gauge: Option<Gauge>,
}

impl ConnCount {
    fn inc(&self) {
        let n = self.open.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(g) = &self.gauge {
            g.set(n);
        }
    }

    fn dec(&self) {
        let n = self.open.fetch_sub(1, Ordering::Relaxed) - 1;
        if let Some(g) = &self.gauge {
            g.set(n);
        }
    }

    fn get(&self) -> i64 {
        self.open.load(Ordering::Relaxed)
    }
}

/// One client connection and its accumulated read state. Owned by
/// exactly one of {reactor, ready-queue, worker} at any moment.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by a parsed request.
    buf: Vec<u8>,
    /// Parsed head of the next request, cached so completeness checks
    /// are O(1) once the head has parsed.
    head: Option<RequestHead>,
    /// Requests served on this connection.
    served: u64,
    /// Last time bytes arrived (idle-timeout anchor).
    last_activity: Instant,
    count: Arc<ConnCount>,
}

impl Conn {
    fn new(stream: TcpStream, count: Arc<ConnCount>) -> Conn {
        count.inc();
        Conn {
            stream,
            buf: Vec::new(),
            head: None,
            served: 0,
            last_activity: Instant::now(),
            count,
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.count.dec();
    }
}

/// A complete request ready for a worker, still attached to its
/// connection.
struct Job {
    conn: Conn,
    req: HttpRequest,
    /// When the job entered the fair queue. Bounds the write-coalescing
    /// gather window: a write that already aged in the queue gets no
    /// further delay.
    enqueued_at: Instant,
}

impl Job {
    fn new(conn: Conn, req: HttpRequest) -> Job {
        Job {
            conn,
            req,
            enqueued_at: Instant::now(),
        }
    }
}

/// Pop the next complete request out of a connection's buffer, if one is
/// fully buffered. `Ok(None)`: nothing complete yet.
fn next_buffered_request(
    conn: &mut Conn,
    limits: &HttpLimits,
) -> Result<Option<HttpRequest>, RequestError> {
    if conn.head.is_none() {
        if conn.buf.is_empty() {
            return Ok(None);
        }
        conn.head = parse_head(&conn.buf, limits)?;
    }
    let Some(head) = &conn.head else {
        return Ok(None);
    };
    if conn.buf.len() < head.total_len() {
        return Ok(None);
    }
    let head = conn.head.take().expect("checked above");
    let total = head.total_len();
    let mut req = head.request;
    req.body = conn.buf[head.head_len..total].to_vec();
    conn.buf.drain(..total);
    Ok(Some(req))
}

/// The bounded, per-app-fair ready queue. Deficit round-robin with
/// quantum 1: each app in rotation yields one job per turn, so a chatty
/// app's backlog cannot starve the others. `std::sync` primitives on
/// purpose — the vendored `parking_lot` shim has no `Condvar`.
struct FairQueue {
    inner: Mutex<FairQueueInner>,
    cv: Condvar,
    depth: usize,
    gauge: Option<Gauge>,
}

#[derive(Default)]
struct FairQueueInner {
    by_app: HashMap<String, VecDeque<Job>>,
    rotation: VecDeque<String>,
    len: usize,
    closed: bool,
}

impl FairQueue {
    fn new(depth: usize, gauge: Option<Gauge>) -> FairQueue {
        FairQueue {
            inner: Mutex::new(FairQueueInner::default()),
            cv: Condvar::new(),
            depth: depth.max(1),
            gauge,
        }
    }

    fn set_gauge(&self, n: usize) {
        if let Some(g) = &self.gauge {
            g.set(n as i64);
        }
    }

    /// Admit a job, or hand it back when the queue is full or closing
    /// (caller sheds with 429). The whole job rides in the `Err` on
    /// purpose: the caller still owns the connection it must answer on.
    #[allow(clippy::result_large_err)]
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.closed || q.len >= self.depth {
            return Err(job);
        }
        let app = job.req.app_label().to_string();
        let per_app = q.by_app.entry(app.clone()).or_default();
        let newly_active = per_app.is_empty();
        per_app.push_back(job);
        if newly_active {
            q.rotation.push_back(app);
        }
        q.len += 1;
        self.set_gauge(q.len);
        drop(q);
        // notify_all, not notify_one: a worker gathering a write batch in
        // `take_writes_until` waits on the same condvar, and a single
        // notification it consumes for a non-write job would leave a
        // popper asleep with work queued.
        self.cv.notify_all();
        Ok(())
    }

    /// Next job under the fairness rotation. Blocks; `None` once the
    /// queue is closed **and** drained (graceful shutdown serves what
    /// was already admitted).
    fn pop(&self) -> Option<Job> {
        let mut q = self.inner.lock().expect("queue poisoned");
        loop {
            while let Some(app) = q.rotation.pop_front() {
                let Some(per_app) = q.by_app.get_mut(&app) else {
                    continue;
                };
                let Some(job) = per_app.pop_front() else {
                    // Emptied out-of-band (write coalescing); drop the
                    // rotation slot.
                    q.by_app.remove(&app);
                    continue;
                };
                if per_app.is_empty() {
                    q.by_app.remove(&app);
                } else {
                    q.rotation.push_back(app);
                }
                q.len -= 1;
                self.set_gauge(q.len);
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self.cv.wait(q).expect("queue poisoned");
        }
    }

    /// Pull up to `max` queued plain `/v1/write` jobs targeting `pool`
    /// (wire spelling), across all apps, for batch coalescing, waiting
    /// for late arrivals until `deadline` if the batch is under-filled.
    /// A `deadline` at or before now degenerates to a single non-blocking
    /// sweep, so callers bound the gather window per job. The rotation
    /// self-heals in `pop`.
    fn take_writes_until(&self, pool: &str, max: usize, deadline: Instant) -> Vec<Job> {
        if max == 0 {
            return Vec::new();
        }
        let mut q = self.inner.lock().expect("queue poisoned");
        let mut taken = Vec::new();
        loop {
            Self::sweep_writes(&mut q, pool, max, &mut taken);
            self.set_gauge(q.len);
            if taken.len() >= max || q.closed {
                return taken;
            }
            let now = Instant::now();
            if now >= deadline {
                return taken;
            }
            q = self
                .cv
                .wait_timeout(q, deadline - now)
                .expect("queue poisoned")
                .0;
        }
    }

    /// One locked sweep moving matching write jobs from the queue into
    /// `taken` (capped at `max` total) and updating `q.len`.
    fn sweep_writes(q: &mut FairQueueInner, pool: &str, max: usize, taken: &mut Vec<Job>) {
        for per_app in q.by_app.values_mut() {
            let mut i = 0;
            while i < per_app.len() && taken.len() < max {
                let j = &per_app[i];
                if j.req.method == "POST"
                    && j.req.path == "/v1/write"
                    && j.req.param("Pool") == Some(pool)
                {
                    taken.push(per_app.remove(i).expect("index checked"));
                    q.len -= 1;
                } else {
                    i += 1;
                }
            }
            if taken.len() >= max {
                break;
            }
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.cv.notify_all();
    }
}

/// Reactor wake-up channel: a byte written here interrupts `poll(2)`.
/// Unix socketpair because `std` has no pipe; this whole server is
/// `cfg(unix)`-reliant anyway via `poll`.
#[cfg(unix)]
mod wake {
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    pub struct WakeRx(pub UnixStream);

    #[derive(Clone)]
    pub struct WakeTx(std::sync::Arc<UnixStream>);

    pub fn pair() -> std::io::Result<(WakeTx, WakeRx)> {
        let (tx, rx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok((WakeTx(std::sync::Arc::new(tx)), WakeRx(rx)))
    }

    impl WakeTx {
        /// Nudge the reactor. Best-effort: a full pipe means a wake-up
        /// is already pending, which is all we need.
        pub fn notify(&self) {
            let _ = (&*self.0).write(&[1]);
        }
    }

    impl WakeRx {
        /// Drain pending wake bytes.
        pub fn drain(&mut self) {
            let mut buf = [0u8; 64];
            while matches!(self.0.read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

/// Minimal `poll(2)` binding — readiness for the reactor without any
/// external crate (the container has no epoll/mio dependency; libc is
/// already linked by `std`).
#[cfg(unix)]
mod sys {
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Wait for readiness on `fds` up to `timeout_ms`. Errors (EINTR)
    /// report as "nothing ready"; the caller just loops.
    pub fn poll_in(fds: &mut [PollFd], timeout_ms: i32) -> usize {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if n < 0 {
            0
        } else {
            n as usize
        }
    }
}

/// Shared per-server state handed to the reactor and every worker.
struct ServerContext {
    storage: StorageService,
    obs: Option<Obs>,
    cfg: ServerConfig,
    pager: Mutex<HashMap<String, AppReceipts>>,
    requests: Arc<AtomicU64>,
}

/// Per-app receipt pagination state: receipts pulled from storage wait
/// here, sequence-stamped, until the client acks them by cursor — a
/// reconnecting app re-reads the same page instead of losing it.
#[derive(Default)]
struct AppReceipts {
    next_seq: u64,
    pending: VecDeque<(u64, WriteReceipt)>,
}

impl ServerContext {
    /// Count one served request in the shared registry, labeled by route
    /// path and status code, plus the byte/deprecation side counters.
    fn record(&self, spec: Option<&RouteSpec>, resp: &HttpResponse, bytes_in: usize) {
        let Some(obs) = &self.obs else { return };
        let r = &obs.registry;
        let route = spec.map(|s| s.path).unwrap_or("unmatched");
        let status = resp.status.to_string();
        r.counter_with(
            "httpapi_requests_total",
            &[("route", route), ("status", &status)],
        )
        .inc();
        r.counter("httpapi_bytes_received_total")
            .add(bytes_in as u64);
        r.counter("httpapi_bytes_sent_total")
            .add(resp.body.len() as u64);
        if spec.map(|s| s.deprecated).unwrap_or(false) {
            r.counter_with("httpapi_deprecated_total", &[("route", route)])
                .inc();
        }
    }

    fn record_io_timeout(&self) {
        if let Some(obs) = &self.obs {
            obs.registry.counter("httpapi_io_timeouts_total").inc();
        }
    }

    fn record_shed(&self, reason: &str) {
        if let Some(obs) = &self.obs {
            obs.registry
                .counter_with("httpapi_sheds_total", &[("reason", reason)])
                .inc();
        }
    }

    fn bump(&self, name: &str) {
        if let Some(obs) = &self.obs {
            obs.registry.counter(name).inc();
        }
    }

    fn add(&self, name: &str, n: u64) {
        if let Some(obs) = &self.obs {
            obs.registry.counter(name).add(n);
        }
    }

    fn overloaded(&self) -> HttpResponse {
        finalize(error_response(StateError::Overloaded {
            retry_after_ms: self.cfg.retry_after_ms(),
        }))
    }
}

/// Stamp the invariant response headers every reply carries.
fn finalize(resp: HttpResponse) -> HttpResponse {
    resp.with_header(SERVER_HEADER, SERVER_VERSION)
}

/// Write a final response on a connection the server is about to close
/// (shed, reject, timeout), then half-close and briefly drain the
/// client's in-flight bytes. Closing with unread data in the receive
/// queue turns the FIN into an RST, which can destroy the very response
/// we just wrote — a shed client would see a connection error instead
/// of its 429. The drain is bounded (client close or 50 ms), so an
/// abusive peer cannot pin the calling thread.
fn write_and_close(stream: &mut TcpStream, resp: &HttpResponse) {
    if resp.write_to(stream, false).is_err() {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    while matches!(stream.read(&mut buf), Ok(n) if n > 0) {}
}

/// The response a parse-level failure maps to: `431` oversized head,
/// `413` oversized body, `400` non-HTTP bytes — each with the unified
/// typed JSON body.
fn parse_error_response(e: &RequestError) -> HttpResponse {
    let (status, code, msg) = match e {
        RequestError::HeadersTooLarge => (
            431_u16,
            "headers_too_large",
            "request head exceeds the server's header limit".to_string(),
        ),
        RequestError::BodyTooLarge => (
            413_u16,
            "body_too_large",
            "declared content-length exceeds the server's body limit".to_string(),
        ),
        RequestError::Malformed(err) => (400_u16, "protocol_error", err.to_string()),
    };
    let body = ApiErrorBody {
        code: code.to_string(),
        message: msg.clone(),
        retryable: false,
        source: StateError::protocol(msg),
    };
    let json = serde_json::to_vec(&body).unwrap_or_else(|_| b"{}".to_vec());
    finalize(HttpResponse {
        status,
        reason: reason(status),
        body: json,
        content_type: "application/json",
        headers: Vec::new(),
    })
}

/// The running API server.
pub struct ApiServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<FairQueue>,
    wake: wake::WakeTx,
    accept_thread: Option<JoinHandle<()>>,
    reactor_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
    stop_grace: Duration,
}

impl ApiServer {
    /// Bind on 127.0.0.1 (ephemeral port) and start serving `storage`
    /// with the default [`ServerConfig`].
    pub fn start(storage: StorageService) -> StateResult<ApiServer> {
        Self::start_with_config(storage, ServerConfig::default(), None)
    }

    /// Like [`ApiServer::start`] but additionally serving `obs` through
    /// `/v1/metrics` and `/v1/status`, and recording request metrics
    /// into its registry.
    pub fn start_with_obs(storage: StorageService, obs: Obs) -> StateResult<ApiServer> {
        Self::start_with_config(storage, ServerConfig::default(), Some(obs))
    }

    /// Like [`ApiServer::start`] but with an explicit idle timeout
    /// (tests use a short one to exercise the half-open path quickly).
    pub fn start_with_io_timeout(
        storage: StorageService,
        io_timeout: Duration,
    ) -> StateResult<ApiServer> {
        Self::start_configured(storage, io_timeout, None)
    }

    /// Compatibility constructor: idle timeout + optional observability,
    /// default everything else.
    pub fn start_configured(
        storage: StorageService,
        io_timeout: Duration,
        obs: Option<Obs>,
    ) -> StateResult<ApiServer> {
        let cfg = ServerConfig {
            idle_timeout: io_timeout,
            ..ServerConfig::default()
        };
        Self::start_with_config(storage, cfg, obs)
    }

    /// Fully explicit constructor.
    pub fn start_with_config(
        storage: StorageService,
        cfg: ServerConfig,
        obs: Option<Obs>,
    ) -> StateResult<ApiServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let (wake_tx, wake_rx) = wake::pair()?;

        let conn_gauge = obs
            .as_ref()
            .map(|o| o.registry.gauge("httpapi_open_connections"));
        let queue_gauge = obs
            .as_ref()
            .map(|o| o.registry.gauge("httpapi_queue_depth"));
        let inflight_gauge = obs
            .as_ref()
            .map(|o| o.registry.gauge("httpapi_inflight_requests"));

        let count = Arc::new(ConnCount {
            open: AtomicI64::new(0),
            gauge: conn_gauge,
        });
        let queue = Arc::new(FairQueue::new(cfg.queue_depth, queue_gauge));
        let ctx = Arc::new(ServerContext {
            storage,
            obs,
            cfg: cfg.clone(),
            pager: Mutex::new(HashMap::new()),
            requests: requests.clone(),
        });

        // Connections flow accept → reactor and worker → reactor over
        // the same channel; the reactor owns the receiving end.
        let (conn_tx, conn_rx) = std::sync::mpsc::channel::<Conn>();

        let accept_thread = {
            let stop = stop.clone();
            let ctx = ctx.clone();
            let count = count.clone();
            let conn_tx = conn_tx.clone();
            let wake = wake_tx.clone();
            std::thread::Builder::new()
                .name("statesman-api-accept".into())
                .spawn(move || accept_loop(listener, stop, ctx, count, conn_tx, wake))
                .expect("spawn accept thread")
        };

        let reactor_thread = {
            let stop = stop.clone();
            let ctx = ctx.clone();
            let queue = queue.clone();
            std::thread::Builder::new()
                .name("statesman-api-reactor".into())
                .spawn(move || reactor_loop(conn_rx, wake_rx, stop, ctx, queue))
                .expect("spawn reactor thread")
        };

        let mut worker_threads = Vec::new();
        for i in 0..cfg.worker_count() {
            let worker = Worker {
                ctx: ctx.clone(),
                queue: queue.clone(),
                conn_tx: conn_tx.clone(),
                wake: wake_tx.clone(),
                inflight: inflight_gauge.clone(),
                hist: ctx.obs.as_ref().map(|o| {
                    o.registry.histogram_with(
                        "httpapi_request_duration_us",
                        &[("worker", &i.to_string())],
                        LATENCY_BUCKETS_US,
                    )
                }),
            };
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("statesman-api-worker-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker thread"),
            );
        }

        Ok(ApiServer {
            addr,
            stop,
            queue,
            wake: wake_tx,
            accept_thread: Some(accept_thread),
            reactor_thread: Some(reactor_thread),
            worker_threads,
            requests,
            stop_grace: cfg.stop_grace,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Worker + reactor + accept thread count — constant for the
    /// server's lifetime regardless of connection count (the bench
    /// asserts this).
    pub fn thread_count(&self) -> usize {
        self.worker_threads.len() + 2
    }

    /// Stop accepting, drain the admitted queue, and join every thread:
    /// accept and reactor synchronously, workers within
    /// [`ServerConfig::stop_grace`] (a worker still mid-write after the
    /// grace is detached; its socket write timeout bounds its life).
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop (blocked in accept) and the reactor
        // (blocked in poll); close the queue so workers drain and exit.
        let _ = TcpStream::connect(self.addr);
        self.queue.close();
        self.wake.notify();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + self.stop_grace;
        for w in self.worker_threads.drain(..) {
            while !w.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if w.is_finished() {
                let _ = w.join();
            }
            // else: detached; it exits on its own once its bounded
            // socket write completes, and the queue is already closed.
        }
    }

    /// Alias for [`ApiServer::shutdown`] under the name the redesigned
    /// API documents.
    pub fn stop(&mut self) {
        self.shutdown();
    }
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The accept loop: configure the socket, enforce the connection limit
/// (shedding with 429 — admission control happens here, not in the OS
/// accept backlog), and hand the connection to the reactor.
fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    ctx: Arc<ServerContext>,
    count: Arc<ConnCount>,
    conn_tx: Sender<Conn>,
    wake: wake::WakeTx,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        // Blocking writes (workers, sheds) are bounded by this; reads
        // never block (the reactor uses nonblocking mode + poll).
        let _ = stream.set_write_timeout(Some(ctx.cfg.idle_timeout.max(Duration::from_millis(1))));
        ctx.bump("httpapi_connections_total");
        if count.get() >= ctx.cfg.max_connections as i64 {
            ctx.record_shed("max_connections");
            let resp = ctx.overloaded();
            ctx.record(None, &resp, 0);
            let mut stream = stream;
            write_and_close(&mut stream, &resp);
            continue;
        }
        if conn_tx.send(Conn::new(stream, count.clone())).is_err() {
            break; // reactor gone (shutdown)
        }
        wake.notify();
    }
}

/// What the reactor decided about one connection after a readiness pass.
enum Verdict {
    /// Keep waiting.
    Idle,
    /// A complete request is buffered: hand to the queue.
    Ready,
    /// Peer closed / socket error: drop silently.
    Close,
    /// Answer this response, then close (408, 431, 413, 400).
    Reject(HttpResponse, &'static str),
}

/// The reactor: owns idle connections in nonblocking mode, waits for
/// readiness with `poll(2)`, parses incrementally, enforces idle
/// timeouts, and feeds complete requests to the fair queue (shedding
/// 429 when it is full). One thread, any number of connections.
fn reactor_loop(
    conn_rx: Receiver<Conn>,
    mut wake_rx: wake::WakeRx,
    stop: Arc<AtomicBool>,
    ctx: Arc<ServerContext>,
    queue: Arc<FairQueue>,
) {
    use std::os::fd::AsRawFd;
    let limits = ctx.cfg.limits();
    let idle = ctx.cfg.idle_timeout.max(Duration::from_millis(1));
    let mut conns: Vec<Conn> = Vec::new();
    let mut pollfds: Vec<sys::PollFd> = Vec::new();

    while !stop.load(Ordering::SeqCst) {
        // Ingest new and returned connections.
        while let Ok(mut c) = conn_rx.try_recv() {
            if c.stream.set_nonblocking(true).is_err() {
                continue; // drops (and un-counts) the connection
            }
            c.last_activity = Instant::now();
            conns.push(c);
        }

        // Wait for readiness: the wake pipe plus every connection.
        let now = Instant::now();
        let next_deadline = conns
            .iter()
            .map(|c| c.last_activity + idle)
            .min()
            .unwrap_or(now + Duration::from_millis(500));
        let timeout_ms = next_deadline
            .saturating_duration_since(now)
            .as_millis()
            .clamp(1, 500) as i32;
        pollfds.clear();
        pollfds.push(sys::PollFd {
            fd: wake_rx.0.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
        for c in &conns {
            pollfds.push(sys::PollFd {
                fd: c.stream.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
        }
        sys::poll_in(&mut pollfds, timeout_ms);
        wake_rx.drain();

        // Scan: readable conns first (the pollfd list is conns[i] at
        // index i+1), then idle deadlines for everyone.
        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            let readable = pollfds
                .get(i + 1)
                .map(|p| p.revents & sys::POLLIN != 0)
                // A conn ingested after the pollfd snapshot: treat as
                // readable once so freshly returned keep-alive sockets
                // are pumped promptly.
                .unwrap_or(true);
            let verdict = pump(&mut conns[i], readable, now, idle, &limits, &ctx);
            match verdict {
                Verdict::Idle => i += 1,
                Verdict::Close => {
                    conns.swap_remove(i);
                }
                Verdict::Reject(resp, why) => {
                    let mut c = conns.swap_remove(i);
                    if why == "io_timeout" {
                        ctx.record_io_timeout();
                    }
                    ctx.record(None, &resp, 0);
                    let _ = c.stream.set_nonblocking(false);
                    write_and_close(&mut c.stream, &resp);
                }
                Verdict::Ready => {
                    let mut c = conns.swap_remove(i);
                    match next_buffered_request(&mut c, &limits) {
                        Ok(Some(req)) => {
                            let _ = c.stream.set_nonblocking(false);
                            if let Err(job) = queue.push(Job::new(c, req)) {
                                shed_job(job, &ctx);
                            }
                        }
                        // Race-proofing; pump said Ready, so these are
                        // unreachable in practice.
                        Ok(None) => conns.push(c),
                        Err(e) => {
                            let resp = parse_error_response(&e);
                            ctx.record(None, &resp, 0);
                            let _ = c.stream.set_nonblocking(false);
                            write_and_close(&mut c.stream, &resp);
                        }
                    }
                }
            }
        }
    }
    // Shutdown: close everything still parked here or in transit.
    drop(conns);
    while conn_rx.try_recv().is_ok() {}
}

/// Shed one admitted-but-unqueueable request with 429 + Retry-After.
fn shed_job(job: Job, ctx: &ServerContext) {
    ctx.record_shed("queue_full");
    let resp = ctx.overloaded();
    ctx.record(None, &resp, job.req.body.len());
    let mut conn = job.conn;
    write_and_close(&mut conn.stream, &resp);
}

/// One reactor pass over one connection: drain readable bytes, check
/// parse state, check the idle deadline.
fn pump(
    conn: &mut Conn,
    readable: bool,
    now: Instant,
    idle: Duration,
    limits: &HttpLimits,
    _ctx: &ServerContext,
) -> Verdict {
    if readable {
        let mut tmp = [0u8; 16 << 10];
        loop {
            match conn.stream.read(&mut tmp) {
                Ok(0) => return Verdict::Close,
                Ok(n) => {
                    conn.buf.extend_from_slice(&tmp[..n]);
                    conn.last_activity = now;
                    if n < tmp.len() {
                        break;
                    }
                    // Stop slurping unboundedly ahead of the parser; the
                    // limits check below fires before the next read.
                    if conn.buf.len() > limits.max_header_bytes + limits.max_body_bytes {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Verdict::Close,
            }
        }
        // Parse as far as the bytes allow.
        if conn.head.is_none() && !conn.buf.is_empty() {
            match parse_head(&conn.buf, limits) {
                Ok(h) => conn.head = h,
                Err(e) => return Verdict::Reject(parse_error_response(&e), "parse"),
            }
        }
        if let Some(h) = &conn.head {
            if conn.buf.len() >= h.total_len() {
                return Verdict::Ready;
            }
        }
    }
    if now.saturating_duration_since(conn.last_activity) >= idle {
        // Mid-request (or never requested): 408. A quiet keep-alive
        // connection that has already been served closes silently.
        if conn.served == 0 || !conn.buf.is_empty() || conn.head.is_some() {
            return Verdict::Reject(
                finalize(HttpResponse::request_timeout(
                    "connection idled past the server's read timeout",
                )),
                "io_timeout",
            );
        }
        _ctx.bump("httpapi_idle_closes_total");
        return Verdict::Close;
    }
    Verdict::Idle
}

/// One pool worker: pops fair-queue jobs, serves them (coalescing
/// same-pool writes), drains pipelined requests, and returns keep-alive
/// connections to the reactor.
struct Worker {
    ctx: Arc<ServerContext>,
    queue: Arc<FairQueue>,
    conn_tx: Sender<Conn>,
    wake: wake::WakeTx,
    inflight: Option<Gauge>,
    hist: Option<Histogram>,
}

impl Worker {
    fn run(&self) {
        while let Some(job) = self.queue.pop() {
            if let Some(g) = &self.inflight {
                g.add(1);
            }
            self.serve(job);
            if let Some(g) = &self.inflight {
                g.add(-1);
            }
        }
    }

    fn serve(&self, job: Job) {
        let coalesce = self.ctx.cfg.write_coalesce;
        if coalesce > 1 && job.req.method == "POST" && job.req.path == "/v1/write" {
            if let Some(pool) = job.req.param("Pool") {
                // The gather window is anchored at the job's *enqueue*
                // time: a write popped off a backlog has already aged
                // past the deadline and commits with whatever is queued
                // right now, so coalescing never adds delay on top of
                // queueing delay — it only spends idle time.
                let deadline = job.enqueued_at + self.ctx.cfg.write_coalesce_max_delay;
                let extras = self.queue.take_writes_until(pool, coalesce - 1, deadline);
                if !extras.is_empty() {
                    self.serve_write_batch(job, extras);
                    return;
                }
            }
        }
        let Job { mut conn, req, .. } = job;
        let closing = self.serve_one(&mut conn, req);
        self.finish_conn(conn, closing);
    }

    /// Dispatch one request and write its response. Returns whether the
    /// connection must close afterwards.
    fn serve_one(&self, conn: &mut Conn, req: HttpRequest) -> bool {
        let (spec, resp) = dispatch(&req, &self.ctx);
        self.respond(conn, &req, finalize(resp), spec)
    }

    /// Write an already-built response with full bookkeeping (request
    /// count, metrics, keep-alive accounting, latency histogram).
    fn respond(
        &self,
        conn: &mut Conn,
        req: &HttpRequest,
        resp: HttpResponse,
        spec: Option<&'static RouteSpec>,
    ) -> bool {
        let start = Instant::now();
        let cfg = &self.ctx.cfg;
        let will_close =
            !cfg.keep_alive || req.wants_close() || conn.served + 1 >= cfg.max_requests_per_conn;
        if conn.served > 0 {
            self.ctx.bump("httpapi_keepalive_reuses_total");
        }
        conn.served += 1;
        self.ctx.requests.fetch_add(1, Ordering::Relaxed);
        self.ctx.record(spec, &resp, req.body.len());
        let ok = resp.write_to(&mut conn.stream, !will_close).is_ok();
        if let Some(h) = &self.hist {
            h.observe(start.elapsed().as_micros() as f64);
        }
        will_close || !ok
    }

    /// Drain pipelined requests already buffered (budget-capped), then
    /// either return the connection to the reactor or let it drop.
    fn finish_conn(&self, mut conn: Conn, mut closing: bool) {
        let limits = self.ctx.cfg.limits();
        let mut burst = 1; // the request that got us here
        while !closing && burst < self.ctx.cfg.pipeline_burst {
            match next_buffered_request(&mut conn, &limits) {
                Ok(Some(req)) => {
                    burst += 1;
                    closing = self.serve_one(&mut conn, req);
                }
                Ok(None) => break,
                Err(e) => {
                    let resp = parse_error_response(&e);
                    self.ctx.record(None, &resp, 0);
                    let _ = resp.write_to(&mut conn.stream, false);
                    closing = true;
                }
            }
        }
        if closing {
            return; // conn drops; ConnCount decrements
        }
        // Burst exhausted with another full request buffered? Route it
        // back through the fair queue instead of hogging this worker.
        match next_buffered_request(&mut conn, &limits) {
            Ok(Some(req)) => {
                if let Err(job) = self.queue.push(Job::new(conn, req)) {
                    shed_job(job, &self.ctx);
                }
            }
            Ok(None) => {
                if self.conn_tx.send(conn).is_ok() {
                    self.wake.notify();
                }
                // send fails only at shutdown; the conn just drops.
            }
            Err(e) => {
                let resp = parse_error_response(&e);
                self.ctx.record(None, &resp, 0);
                let _ = resp.write_to(&mut conn.stream, false);
            }
        }
    }

    /// Coalesced write path: this job plus `extras` all target the same
    /// pool via plain `/v1/write`. Parse every body, commit the good
    /// ones as ONE storage batch (the sharded plane fans it out
    /// per-partition concurrently), and answer each connection
    /// individually. On a batch error fall back to per-request writes —
    /// value-identical rewrites are no-ops, so re-execution is safe and
    /// per-caller error attribution is preserved.
    fn serve_write_batch(&self, primary: Job, extras: Vec<Job>) {
        let spec = ROUTES.iter().find(|s| s.route == Route::Write);
        let pool = primary
            .req
            .param("Pool")
            .and_then(Pool::parse_wire_name)
            .expect("caller matched a plain write with a Pool param; wire names parse or the job would not have matched take_writes");
        let mut jobs: Vec<Job> = Vec::with_capacity(1 + extras.len());
        jobs.push(primary);
        jobs.extend(extras);

        let mut parsed: Vec<(Job, StateResult<Vec<NetworkState>>)> = jobs
            .into_iter()
            .map(|j| {
                let rows = serde_json::from_slice::<Vec<NetworkState>>(&j.req.body)
                    .map_err(|e| StateError::protocol(format!("body: {e}")));
                (j, rows)
            })
            .collect();

        let batch: Vec<NetworkState> = parsed
            .iter()
            .filter_map(|(_, r)| r.as_ref().ok())
            .flatten()
            .cloned()
            .collect();
        let good = parsed.iter().filter(|(_, r)| r.is_ok()).count();
        let batched = self
            .ctx
            .storage
            .write(WriteRequest {
                pool: pool.clone(),
                rows: batch,
            })
            .is_ok();
        if good > 1 {
            self.ctx.bump("httpapi_write_batches_total");
            self.ctx
                .add("httpapi_writes_coalesced_total", (good - 1) as u64);
        }

        for (job, rows) in parsed.drain(..) {
            let Job { mut conn, req, .. } = job;
            let resp = match rows {
                Err(e) => error_response(e),
                Ok(rows) if batched => {
                    let _ = rows;
                    HttpResponse::no_content()
                }
                // Batch failed: per-request fallback isolates the
                // culprit and gives everyone their own typed error.
                Ok(rows) => match self.ctx.storage.write(WriteRequest {
                    pool: pool.clone(),
                    rows,
                }) {
                    Ok(()) => HttpResponse::no_content(),
                    Err(e) => error_response(e),
                },
            };
            let closing = self.respond(&mut conn, &req, finalize(resp), spec);
            self.finish_conn(conn, closing);
        }
    }
}

/// Route-table dispatch: the hot path scans only the six v1 rows; a miss
/// falls through to the cold legacy table, where aliases answer `410
/// Gone` + `link` unless [`ServerConfig::legacy_aliases`] keeps them
/// alive (with `deprecation` headers, as before). A known path under an
/// unknown verb is 405 (with `allow`), an unknown path is 404.
fn dispatch(req: &HttpRequest, ctx: &ServerContext) -> (Option<&'static RouteSpec>, HttpResponse) {
    if let Some(found) = dispatch_table(req, ctx, ROUTES) {
        return found;
    }
    let on_path: Vec<&'static RouteSpec> = LEGACY_ROUTES
        .iter()
        .filter(|s| s.path == req.path)
        .collect();
    if on_path.is_empty() {
        return (None, HttpResponse::not_found());
    }
    if !ctx.cfg.legacy_aliases {
        let spec = on_path[0];
        return (Some(spec), gone_response(spec));
    }
    match dispatch_table(req, ctx, LEGACY_ROUTES) {
        Some((spec, mut resp)) => {
            if let Some(s) = spec {
                resp = resp.with_header("deprecation", "true").with_header(
                    "link",
                    format!("<{}>; rel=\"successor-version\"", s.successor),
                );
            }
            (spec, resp)
        }
        None => (None, HttpResponse::not_found()),
    }
}

/// Exact-match lookup + handler invocation over one table. `None`: the
/// path is not in this table at all.
fn dispatch_table(
    req: &HttpRequest,
    ctx: &ServerContext,
    table: &'static [RouteSpec],
) -> Option<(Option<&'static RouteSpec>, HttpResponse)> {
    let on_path: Vec<&'static RouteSpec> = table.iter().filter(|s| s.path == req.path).collect();
    if on_path.is_empty() {
        return None;
    }
    let Some(spec) = on_path.iter().find(|s| s.method == req.method) else {
        let allow = on_path
            .iter()
            .map(|s| s.method)
            .collect::<Vec<_>>()
            .join(", ");
        // Attribute the 405 to the path's first row so the metric lands
        // on a real route.
        return Some((Some(on_path[0]), HttpResponse::method_not_allowed(&allow)));
    };
    let resp = match spec.route {
        Route::Read => handle_read(req, &ctx.storage),
        Route::Write => handle_write(req, &ctx.storage),
        Route::Receipts => handle_receipts(req, ctx),
        Route::Health => handle_health(ctx),
        Route::Metrics => handle_metrics(req, ctx),
        Route::Status => handle_status(req, ctx),
    };
    Some((Some(spec), resp))
}

/// The `410 Gone` answer for a sunset alias: typed JSON body plus a
/// `link` to the v1 successor.
fn gone_response(spec: &'static RouteSpec) -> HttpResponse {
    let msg = format!(
        "{} was retired; use {} (enable the legacy_aliases server config to restore it for one more cycle)",
        spec.path, spec.successor
    );
    let body = ApiErrorBody {
        code: "gone".to_string(),
        message: msg.clone(),
        retryable: false,
        source: StateError::invalid(msg),
    };
    let json = serde_json::to_vec(&body).unwrap_or_else(|_| b"{}".to_vec());
    HttpResponse {
        status: 410,
        reason: reason(410),
        body: json,
        content_type: "application/json",
        headers: Vec::new(),
    }
    .with_header(
        "link",
        format!("<{}>; rel=\"successor-version\"", spec.successor),
    )
}

fn storage_error(e: StateError) -> HttpResponse {
    error_response(e)
}

fn handle_read(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    if req.param("since").is_some() {
        return handle_read_since(req, storage);
    }
    let parse = || -> StateResult<ReadRequest> {
        let dc = DatacenterId::new(req.require("Datacenter")?);
        let pool = Pool::parse_wire_name(req.require("Pool")?)
            .ok_or_else(|| StateError::protocol("bad Pool"))?;
        let freshness = match req.param("Freshness") {
            Some(f) => Freshness::parse_wire_name(f)
                .ok_or_else(|| StateError::protocol("bad Freshness"))?,
            None => Freshness::UpToDate,
        };
        let entity = match req.param("Entity") {
            Some(e) => Some(
                EntityName::parse_wire_name(e).ok_or_else(|| StateError::protocol("bad Entity"))?,
            ),
            None => None,
        };
        let attribute = match req.param("Attribute") {
            Some(a) => Some(
                Attribute::parse_wire_name(a)
                    .ok_or_else(|| StateError::protocol("bad Attribute"))?,
            ),
            None => None,
        };
        Ok(ReadRequest {
            datacenter: dc,
            pool,
            freshness,
            entity,
            attribute,
        })
    };
    let request = match parse() {
        Ok(r) => r,
        Err(e) => return error_response(e),
    };
    let (dc, pool) = (request.datacenter.clone(), request.pool.clone());
    match storage.read(request) {
        Ok(mut rows) => {
            rows.sort_by_key(|a| a.key());
            match serde_json::to_vec(&rows) {
                Ok(json) => {
                    let resp = HttpResponse::ok_json(json);
                    // Stamp the pool watermark so snapshot-then-follow
                    // clients can start a changefeed without a probe
                    // (best-effort: the read itself already succeeded).
                    match storage.pool_watermark(&dc, &pool) {
                        Ok(w) => resp.with_header(WATERMARK_HEADER, w.0.to_string()),
                        Err(_) => resp,
                    }
                }
                Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
            }
        }
        Err(e) => storage_error(e),
    }
}

/// `GET /v1/read?since=<version>`: the changefeed read. Always a leader
/// read; the reply body is a [`statesman_types::StateDelta`] and the new
/// watermark rides in [`WATERMARK_HEADER`].
fn handle_read_since(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    let parse = || -> StateResult<(DatacenterId, Pool, Version)> {
        let dc = DatacenterId::new(req.require("Datacenter")?);
        let pool = Pool::parse_wire_name(req.require("Pool")?)
            .ok_or_else(|| StateError::protocol("bad Pool"))?;
        let since = req
            .param("since")
            .expect("checked by caller")
            .parse::<u64>()
            .map_err(|_| StateError::protocol("since must be a non-negative integer version"))?;
        // A delta is the whole pool's change set: row filters and
        // staleness bounds don't compose with it.
        for incompatible in ["Entity", "Attribute", "Freshness"] {
            if req.param(incompatible).is_some() {
                return Err(StateError::protocol(format!(
                    "{incompatible} cannot be combined with since"
                )));
            }
        }
        Ok((dc, pool, Version(since)))
    };
    let (dc, pool, since) = match parse() {
        Ok(p) => p,
        Err(e) => return error_response(e),
    };
    match storage.read_since(&dc, &pool, since) {
        Ok(delta) => {
            let watermark = delta.watermark.0.to_string();
            match serde_json::to_vec(&delta) {
                Ok(json) => HttpResponse::ok_json(json).with_header(WATERMARK_HEADER, watermark),
                Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
            }
        }
        Err(e) => storage_error(e),
    }
}

fn handle_write(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    let pool = match req
        .require("Pool")
        .and_then(|p| Pool::parse_wire_name(p).ok_or_else(|| StateError::protocol("bad Pool")))
    {
        Ok(p) => p,
        Err(e) => return error_response(e),
    };
    let rows: Vec<NetworkState> = match serde_json::from_slice(&req.body) {
        Ok(r) => r,
        Err(e) => return error_response(StateError::protocol(format!("body: {e}"))),
    };
    match storage.write(WriteRequest { pool, rows }) {
        Ok(()) => HttpResponse::no_content(),
        Err(e) => storage_error(e),
    }
}

/// `GET /v1/receipts?App=<app>[&limit=N][&after=C]`.
///
/// Without `limit`: the legacy drain — every pending receipt, removed on
/// send. With `limit`: cursor pagination — receipts are pulled from
/// storage into a per-app pending list with monotonically increasing
/// sequence numbers, a page is the first `limit` entries (NOT removed),
/// the last sequence in the page rides in [`CURSOR_HEADER`], and
/// `after=C` acknowledges (removes) everything up to `C`. A client that
/// crashes mid-page re-reads the same page on reconnect.
fn handle_receipts(req: &HttpRequest, ctx: &ServerContext) -> HttpResponse {
    let app = match req.require("App") {
        Ok(a) => AppId::new(a),
        Err(e) => return error_response(e),
    };
    let limit = match req.param("limit") {
        None => None,
        Some(l) => match l.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => {
                return error_response(StateError::invalid(format!(
                    "limit must be a non-negative integer, got {l:?}"
                )))
            }
        },
    };
    let after = match req.param("after") {
        None => None,
        Some(a) => match a.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                return error_response(StateError::invalid(format!(
                    "after must be a cursor from a prior page, got {a:?}"
                )))
            }
        },
    };

    // Pull fresh receipts from every partition, in a deterministic
    // order so pages are stable.
    let mut fresh = Vec::new();
    for dc in ctx.storage.partitions() {
        match ctx.storage.take_receipts(&dc, &app) {
            Ok(r) => fresh.extend(r),
            Err(e) => return storage_error(e),
        }
    }
    fresh.sort_by(|a, b| {
        a.decided_at
            .cmp(&b.decided_at)
            .then_with(|| a.key.cmp(&b.key))
    });

    let mut pager = ctx.pager.lock().expect("pager poisoned");
    let entry = pager.entry(app.as_str().to_string()).or_default();
    if let Some(c) = after {
        entry.pending.retain(|(seq, _)| *seq > c);
    }
    for r in fresh {
        entry.next_seq += 1;
        let seq = entry.next_seq;
        entry.pending.push_back((seq, r));
    }

    match limit {
        None => {
            // Legacy shape: drain everything in one body.
            let all: Vec<WriteReceipt> = entry.pending.drain(..).map(|(_, r)| r).collect();
            match serde_json::to_vec(&all) {
                Ok(json) => HttpResponse::ok_json(json),
                Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
            }
        }
        Some(n) => {
            let page: Vec<&WriteReceipt> = entry.pending.iter().take(n).map(|(_, r)| r).collect();
            let cursor = page
                .len()
                .checked_sub(1)
                .and_then(|i| entry.pending.get(i))
                .map(|(seq, _)| *seq)
                .or(after)
                .unwrap_or(0);
            match serde_json::to_vec(&page) {
                Ok(json) => {
                    HttpResponse::ok_json(json).with_header(CURSOR_HEADER, cursor.to_string())
                }
                Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
            }
        }
    }
}

fn handle_health(ctx: &ServerContext) -> HttpResponse {
    let body = HealthResponse {
        ok: true,
        now_ms: ctx.storage.clock().now().as_millis(),
    };
    match serde_json::to_vec(&body) {
        Ok(json) => HttpResponse::ok_json(json),
        Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
    }
}

fn handle_metrics(req: &HttpRequest, ctx: &ServerContext) -> HttpResponse {
    let Some(obs) = &ctx.obs else {
        return error_response(StateError::invalid(
            "observability is not enabled on this server (start it with start_with_obs)",
        ));
    };
    match req.param("format") {
        Some("json") => HttpResponse::ok_json(obs.registry.render_json().into_bytes()),
        None | Some("text") => HttpResponse::ok_text(obs.registry.render_text().into_bytes()),
        Some(other) => error_response(StateError::invalid(format!(
            "unknown metrics format {other:?} (use \"text\" or \"json\")"
        ))),
    }
}

fn handle_status(req: &HttpRequest, ctx: &ServerContext) -> HttpResponse {
    let Some(obs) = &ctx.obs else {
        return error_response(StateError::invalid(
            "observability is not enabled on this server (start it with start_with_obs)",
        ));
    };
    let rounds = match req.param("rounds") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return error_response(StateError::invalid(format!(
                    "rounds must be a non-negative integer, got {n:?}"
                )))
            }
        },
        None => 1,
    };
    let body = StatusResponse {
        status: obs.status(),
        traces: obs.traces.recent(rounds),
    };
    match serde_json::to_vec(&body) {
        Ok(json) => HttpResponse::ok_json(json),
        Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ApiClient;
    use statesman_net::SimClock;
    use statesman_types::{SimTime, Value};

    fn server() -> (ApiServer, ApiClient, SimClock) {
        let clock = SimClock::new();
        let storage = StorageService::single_dc("dc1", clock.clone());
        let server = ApiServer::start(storage).unwrap();
        let client = ApiClient::new(server.addr());
        (server, client, clock)
    }

    fn server_with(cfg: ServerConfig) -> (ApiServer, ApiClient, SimClock) {
        let clock = SimClock::new();
        let storage = StorageService::single_dc("dc1", clock.clone());
        let server = ApiServer::start_with_config(storage, cfg, None).unwrap();
        let client = ApiClient::new(server.addr());
        (server, client, clock)
    }

    fn fw_row(dev: &str, v: &str, at: SimTime) -> NetworkState {
        NetworkState::new(
            EntityName::device("dc1", dev),
            Attribute::DeviceFirmwareVersion,
            Value::text(v),
            at,
            AppId::monitor(),
        )
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut server, client, clock) = server();
        client
            .write(&Pool::Observed, &[fw_row("agg-1-1", "6.0", clock.now())])
            .unwrap();
        let rows = client
            .read(
                &DatacenterId::new("dc1"),
                &Pool::Observed,
                Freshness::UpToDate,
                None,
                None,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, Value::text("6.0"));
        assert!(server.request_count() >= 2);
        server.shutdown();
    }

    #[test]
    fn read_filters_by_entity_and_attribute() {
        let (mut server, client, clock) = server();
        client
            .write(
                &Pool::Observed,
                &[
                    fw_row("agg-1-1", "6.0", clock.now()),
                    fw_row("agg-1-2", "6.0", clock.now()),
                ],
            )
            .unwrap();
        let rows = client
            .read(
                &DatacenterId::new("dc1"),
                &Pool::Observed,
                Freshness::UpToDate,
                Some(&EntityName::device("dc1", "agg-1-2")),
                Some(Attribute::DeviceFirmwareVersion),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].entity, EntityName::device("dc1", "agg-1-2"));
        server.shutdown();
    }

    #[test]
    fn read_since_serves_the_changefeed_over_the_wire() {
        let (mut server, client, clock) = server();
        let dc = DatacenterId::new("dc1");
        client
            .write(
                &Pool::Observed,
                &[
                    fw_row("agg-1-1", "6.0", clock.now()),
                    fw_row("agg-1-2", "6.0", clock.now()),
                ],
            )
            .unwrap();

        // From genesis: both rows arrive as one delta, watermark echoed
        // in the header (checked inside read_since).
        let d0 = client
            .read_os_since(&dc, statesman_types::Version::GENESIS)
            .unwrap();
        assert_eq!(d0.upserts.len(), 2);
        assert!(d0.deletes.is_empty());

        // Caught up: empty delta at the same watermark.
        let d1 = client.read_os_since(&dc, d0.watermark).unwrap();
        assert!(d1.is_empty());
        assert_eq!(d1.watermark, d0.watermark);

        // One change: exactly one upsert rides the feed.
        client
            .write(&Pool::Observed, &[fw_row("agg-1-1", "7.0", clock.now())])
            .unwrap();
        let d2 = client.read_os_since(&dc, d1.watermark).unwrap();
        assert_eq!(d2.upserts.len(), 1);
        assert_eq!(d2.upserts[0].value, Value::text("7.0"));
        assert!(!d2.snapshot);

        // The raw reply really carries the watermark header.
        let resp = client
            .raw_request("GET", "/v1/read?Datacenter=dc1&Pool=OS&since=0", &[])
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.watermark().is_some(), "{:?}", resp.headers);
        server.shutdown();
    }

    #[test]
    fn every_response_names_the_server() {
        let (mut server, client, _clock) = server();
        let ok = client.raw_request("GET", "/v1/health", &[]).unwrap();
        assert_eq!(ok.server_version(), Some(SERVER_VERSION));
        let err = client.raw_request("GET", "/v1/read", &[]).unwrap();
        assert_eq!(err.status, 400);
        assert_eq!(err.server_version(), Some(SERVER_VERSION));
        server.shutdown();
    }

    #[test]
    fn full_reads_carry_the_pool_watermark() {
        let (mut server, client, clock) = server();
        client
            .write(&Pool::Observed, &[fw_row("agg-1-1", "6.0", clock.now())])
            .unwrap();
        let resp = client
            .raw_request("GET", "/v1/read?Datacenter=dc1&Pool=OS", &[])
            .unwrap();
        assert_eq!(resp.status, 200);
        let w = resp.watermark().expect("full reads carry the watermark");
        // Following the changefeed from that watermark is caught-up.
        let d = client
            .read_os_since(&DatacenterId::new("dc1"), Version(w))
            .unwrap();
        assert!(d.is_empty(), "{d:?}");
        server.shutdown();
    }

    #[test]
    fn read_since_rejects_bad_and_incompatible_params() {
        let (mut server, client, _clock) = server();
        for target in [
            "/v1/read?Datacenter=dc1&Pool=OS&since=banana",
            "/v1/read?Datacenter=dc1&Pool=OS&since=-1",
            "/v1/read?Datacenter=dc1&Pool=OS&since=0&Entity=device:dc1:agg-1-1",
            "/v1/read?Datacenter=dc1&Pool=OS&since=0&Attribute=DeviceFirmwareVersion",
            "/v1/read?Datacenter=dc1&Pool=OS&since=0&Freshness=UpToDate",
        ] {
            let err = client.raw_get(target).unwrap_err();
            assert!(
                matches!(err, StateError::Protocol { .. }),
                "{target}: {err:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn bad_requests_are_typed_4xx() {
        let (mut server, client, _clock) = server();
        let err = client.raw_get("/v1/read?Pool=OS").unwrap_err();
        assert!(
            matches!(err, StateError::Protocol { .. }),
            "missing Datacenter is a protocol error: {err}"
        );
        let err = client.raw_get("/nope").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        server.shutdown();
    }

    #[test]
    fn known_path_wrong_verb_is_405_with_allow() {
        let (mut server, client, _clock) = server();
        let resp = client.raw_request("POST", "/v1/read", &[]).unwrap();
        assert_eq!(resp.status, 405);
        assert_eq!(resp.header("allow"), Some("GET"));
        // Unknown path stays 404 even with a known verb.
        let resp = client.raw_request("GET", "/v2/read", &[]).unwrap();
        assert_eq!(resp.status, 404);
        server.shutdown();
    }

    #[test]
    fn health_endpoint_reports_sim_time() {
        let (mut server, client, clock) = server();
        clock.advance(statesman_types::SimDuration::from_mins(3));
        let body = client.raw_get("/v1/health").unwrap();
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"ok\":true"), "{text}");
        assert!(
            text.contains(&format!("\"now_ms\":{}", 3 * 60_000)),
            "{text}"
        );
        server.shutdown();
    }

    #[test]
    fn legacy_aliases_are_gone_by_default() {
        let (mut server, client, _clock) = server();
        for (method, path) in [
            ("GET", "/NetworkState/Read?Datacenter=dc1&Pool=OS"),
            ("POST", "/NetworkState/Write?Pool=OS"),
            ("GET", "/NetworkState/Receipts?App=switch-upgrade"),
            ("GET", "/healthz"),
        ] {
            let resp = client.raw_request(method, path, &[]).unwrap();
            assert_eq!(resp.status, 410, "{path}");
            let link = resp.header("link").unwrap_or_default();
            assert!(link.contains("successor-version"), "{path}: {link:?}");
            assert!(link.contains("/v1/"), "{path}: {link:?}");
            // Typed JSON body, non-retryable.
            let body: ApiErrorBody = serde_json::from_slice(&resp.body).unwrap();
            assert_eq!(body.code, "gone");
            assert!(!body.retryable);
        }
        server.shutdown();
    }

    #[test]
    fn legacy_aliases_answer_with_deprecation_headers_when_enabled() {
        let (mut server, client, clock) = server_with(ServerConfig {
            legacy_aliases: true,
            ..ServerConfig::default()
        });
        client
            .write(&Pool::Observed, &[fw_row("agg-1-1", "6.0", clock.now())])
            .unwrap();
        for (method, path) in [
            ("GET", "/NetworkState/Read?Datacenter=dc1&Pool=OS"),
            ("GET", "/NetworkState/Receipts?App=switch-upgrade"),
            ("GET", "/healthz"),
        ] {
            let resp = client.raw_request(method, path, &[]).unwrap();
            assert_eq!(resp.status, 200, "{path}");
            assert_eq!(
                resp.header("deprecation"),
                Some("true"),
                "{path} must carry a deprecation header: {:?}",
                resp.headers
            );
            assert!(
                resp.header("link")
                    .map(|l| l.contains("successor-version"))
                    .unwrap_or(false),
                "{path} must link its successor: {:?}",
                resp.headers
            );
        }
        // The v1 spelling answers without them.
        let resp = client.raw_request("GET", "/v1/health", &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("deprecation"), None);
        server.shutdown();
    }

    #[test]
    fn unroutable_write_is_typed_4xx() {
        let (mut server, client, clock) = server();
        let row = NetworkState::new(
            EntityName::device("dc-unknown", "x"),
            Attribute::DeviceFirmwareVersion,
            Value::text("1"),
            clock.now(),
            AppId::monitor(),
        );
        let err = client.write(&Pool::Observed, &[row]).unwrap_err();
        assert!(
            matches!(err, StateError::UnroutableEntity { .. }),
            "client decodes the typed error: {err:?}"
        );
        server.shutdown();
    }

    #[test]
    fn metrics_and_status_require_obs() {
        let (mut server, client, _clock) = server();
        let err = client.raw_get("/v1/metrics").unwrap_err();
        assert!(matches!(err, StateError::InvalidRequest { .. }), "{err:?}");
        server.shutdown();
    }

    #[test]
    fn half_open_connections_time_out_and_do_not_wedge_the_server() {
        use std::io::Read;
        let clock = SimClock::new();
        let storage = StorageService::single_dc("dc1", clock);
        let mut server =
            ApiServer::start_with_io_timeout(storage, Duration::from_millis(100)).unwrap();
        let client = ApiClient::new(server.addr());

        // A client connects and never sends a byte (half-open)...
        let mut idle = TcpStream::connect(server.addr()).unwrap();

        // ...other clients are still served meanwhile...
        let body = client.raw_get("/v1/health").unwrap();
        assert!(String::from_utf8_lossy(&body).contains("\"ok\":true"));

        // ...and once the idle timeout fires, the idle connection is
        // answered with 408 and closed rather than pinning anything.
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        idle.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");

        // Shutdown joins all threads promptly (no wedged thread).
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_socket() {
        use std::io::{BufReader, Write};
        let (mut server, _client, _clock) = server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for i in 0..5 {
            writer
                .write_all(b"GET /v1/health HTTP/1.1\r\nhost: x\r\n\r\n")
                .unwrap();
            let resp = crate::http::read_response_buffered(&mut reader).unwrap();
            assert_eq!(resp.status, 200, "request {i}");
            assert!(!resp.connection_close(), "request {i} keeps the conn");
        }
        assert_eq!(server.request_count(), 5);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_all_answer_in_order() {
        use std::io::{BufReader, Write};
        let (mut server, _client, _clock) = server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Three requests in one burst; the last asks to close.
        writer
            .write_all(
                b"GET /v1/health HTTP/1.1\r\n\r\nGET /nope HTTP/1.1\r\n\r\nGET /v1/health HTTP/1.1\r\nconnection: close\r\n\r\n",
            )
            .unwrap();
        let r1 = crate::http::read_response_buffered(&mut reader).unwrap();
        let r2 = crate::http::read_response_buffered(&mut reader).unwrap();
        let r3 = crate::http::read_response_buffered(&mut reader).unwrap();
        assert_eq!(
            (r1.status, r2.status, r3.status),
            (200, 404, 200),
            "responses arrive in request order"
        );
        assert!(r3.connection_close());
        server.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_with_429_and_retry_after() {
        // One worker, queue depth 1, and a storage briefly blocked is
        // hard to fake — instead flood with more simultaneous requests
        // than worker+queue can admit. Some must shed with 429; none may
        // get a connection error before a response.
        let (server, _client, _clock) = server_with(ServerConfig {
            workers: 1,
            queue_depth: 1,
            retry_after: Duration::from_secs(3),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut server = server;
        let handles: Vec<_> = (0..24)
            .map(|_| {
                std::thread::spawn(move || {
                    let client = ApiClient::new(addr);
                    client.raw_request("GET", "/v1/health", &[]).unwrap()
                })
            })
            .collect();
        let mut ok = 0;
        let mut shed = 0;
        for h in handles {
            let resp = h.join().unwrap();
            match resp.status {
                200 => ok += 1,
                429 => {
                    shed += 1;
                    assert_eq!(resp.retry_after(), Some(3), "{:?}", resp.headers);
                    let e = crate::error::decode_error(resp.status, &resp.body);
                    assert!(
                        matches!(e, StateError::Overloaded { .. }) && e.is_retryable(),
                        "{e:?}"
                    );
                }
                other => panic!("unexpected status {other}"),
            }
        }
        assert!(ok > 0, "some requests must be served");
        // Shedding is load-dependent; with depth 1 and 24 parallel
        // clients it is effectively guaranteed, but don't flake if the
        // machine serializes the flood.
        let _ = shed;
        server.shutdown();
    }

    #[test]
    fn gather_window_coalesces_staggered_writes_and_stays_bounded() {
        let clock = SimClock::new();
        let storage = StorageService::single_dc("dc1", clock.clone());
        let obs = Obs::new();
        let mut server = ApiServer::start_with_config(
            storage,
            ServerConfig {
                workers: 1,
                write_coalesce: 8,
                write_coalesce_max_delay: Duration::from_millis(500),
                ..ServerConfig::default()
            },
            Some(obs.clone()),
        )
        .unwrap();
        let addr = server.addr();

        // Two near-simultaneous writes on a single worker: whichever is
        // popped first opens a gather window, and the other joins its
        // batch inside it instead of waiting for a second storage trip.
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let clock = clock.clone();
                std::thread::spawn(move || {
                    let client = ApiClient::new(addr);
                    client
                        .write(
                            &Pool::Observed,
                            &[fw_row(&format!("agg-1-{}", i + 1), "6.0", clock.now())],
                        )
                        .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            obs.registry.counter("httpapi_write_batches_total").get(),
            1,
            "the two writes commit as one storage batch"
        );
        assert_eq!(
            obs.registry.counter("httpapi_writes_coalesced_total").get(),
            1
        );

        // A lone write's window is bounded: it commits after at most the
        // configured delay, not an open-ended wait for company.
        let started = Instant::now();
        ApiClient::new(addr)
            .write(&Pool::Observed, &[fw_row("agg-1-3", "7.0", clock.now())])
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "lone write answered within the bounded window"
        );
        server.shutdown();
    }

    #[test]
    fn connection_limit_sheds_new_connects() {
        let (mut server, client, _clock) = server_with(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        });
        // Occupy the single slot with an open keep-alive connection.
        let _held = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let resp = client.raw_request("GET", "/v1/health", &[]).unwrap();
        assert_eq!(resp.status, 429);
        assert!(resp.retry_after().is_some());
        server.shutdown();
    }

    #[test]
    fn max_requests_per_conn_rotates_the_connection() {
        use std::io::{BufReader, Write};
        let (mut server, _client, _clock) = server_with(ServerConfig {
            max_requests_per_conn: 2,
            ..ServerConfig::default()
        });
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer
            .write_all(b"GET /v1/health HTTP/1.1\r\n\r\n")
            .unwrap();
        let r1 = crate::http::read_response_buffered(&mut reader).unwrap();
        assert!(!r1.connection_close(), "first request keeps the conn");
        writer
            .write_all(b"GET /v1/health HTTP/1.1\r\n\r\n")
            .unwrap();
        let r2 = crate::http::read_response_buffered(&mut reader).unwrap();
        assert!(r2.connection_close(), "budget exhausted closes");
        server.shutdown();
    }

    #[test]
    fn receipts_paginate_with_a_stable_cursor() {
        use statesman_types::{SimDuration, StateKey, Value, WriteOutcome};
        let clock = SimClock::new();
        let storage = StorageService::single_dc("dc1", clock.clone());
        let dc = DatacenterId::new("dc1");
        let app = AppId::new("switch-upgrade");
        // Post three checker receipts (the server pages in decided_at
        // order, so stagger the clock).
        for dev in ["agg-1-1", "agg-1-2", "agg-1-3"] {
            storage
                .post_receipts(
                    &dc,
                    vec![WriteReceipt {
                        app: app.clone(),
                        key: StateKey::new(
                            EntityName::device("dc1", dev),
                            Attribute::DeviceFirmwareVersion,
                        ),
                        proposed: Value::text("7.0"),
                        outcome: WriteOutcome::Accepted,
                        decided_at: clock.now(),
                    }],
                )
                .unwrap();
            clock.advance(SimDuration::from_secs(1));
        }
        let mut server = ApiServer::start(storage.clone()).unwrap();
        let client = ApiClient::new(server.addr());
        let writer = ApiClient::new(server.addr()).with_app(app.clone());

        // Page of 2: cursor header, receipts NOT consumed until acked.
        let p1 = client
            .raw_request("GET", "/v1/receipts?App=switch-upgrade&limit=2", &[])
            .unwrap();
        assert_eq!(p1.status, 200);
        let cursor1 = p1.cursor().expect("paginated reply carries a cursor");
        let page1: Vec<WriteReceipt> = serde_json::from_slice(&p1.body).unwrap();
        assert_eq!(page1.len(), 2);

        // Re-reading WITHOUT acking replays the same page (crash-safe).
        let p1b = client
            .raw_request("GET", "/v1/receipts?App=switch-upgrade&limit=2", &[])
            .unwrap();
        let page1b: Vec<WriteReceipt> = serde_json::from_slice(&p1b.body).unwrap();
        assert_eq!(page1, page1b, "unacked page is stable across reads");

        // Acking with the cursor advances to the remaining receipt.
        let p2 = client
            .raw_request(
                "GET",
                &format!("/v1/receipts?App=switch-upgrade&limit=2&after={cursor1}"),
                &[],
            )
            .unwrap();
        let page2: Vec<WriteReceipt> = serde_json::from_slice(&p2.body).unwrap();
        assert_eq!(page2.len(), 1);
        let cursor2 = p2.cursor().unwrap();
        assert!(cursor2 > cursor1);

        // Final ack drains; an empty page comes back.
        let p3 = client
            .raw_request(
                "GET",
                &format!("/v1/receipts?App=switch-upgrade&limit=2&after={cursor2}"),
                &[],
            )
            .unwrap();
        let page3: Vec<WriteReceipt> = serde_json::from_slice(&p3.body).unwrap();
        assert!(page3.is_empty());

        // And the client-side pager walks all pages transparently.
        storage
            .post_receipts(
                &dc,
                vec![WriteReceipt {
                    app: app.clone(),
                    key: StateKey::new(
                        EntityName::device("dc1", "agg-1-1"),
                        Attribute::DeviceFirmwareVersion,
                    ),
                    proposed: Value::text("8.0"),
                    outcome: WriteOutcome::Accepted,
                    decided_at: clock.now(),
                }],
            )
            .unwrap();
        let receipts = writer.take_receipts().unwrap();
        assert_eq!(receipts.len(), 1);
        // Drained: the pager acked everything.
        assert!(writer.take_receipts().unwrap().is_empty());
        let _ = client;
        server.shutdown();
    }

    #[test]
    fn thread_count_is_bounded_by_the_pool() {
        let (mut server, _client, _clock) = server_with(ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        });
        assert_eq!(server.thread_count(), 5); // 3 workers + accept + reactor
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_stop_is_an_alias() {
        let (mut server, _client, _clock) = server();
        server.stop();
        server.shutdown();
        server.stop();
    }
}
