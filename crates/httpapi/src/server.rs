//! The API server: the versioned v1 API over a [`StorageService`],
//! with the Table-3 paths kept as deprecated aliases.
//!
//! Dispatch is a typed route table ([`RouteSpec`]): each entry binds a
//! method + path to a [`Route`], so an unknown path is a 404 while a
//! known path under the wrong verb is a 405 with an `allow` header.
//! Legacy aliases answer exactly like their v1 route but add a
//! `deprecation` header, a `link` to the successor, and bump
//! `httpapi_deprecated_total`.
//!
//! Thread-per-connection with `connection: close` semantics (each request
//! is one TCP exchange — matching the paper's stateless REST front end
//! that sits "behind a load balancer ... which enables high availability
//! and flexible capacity"). Shutdown is graceful: a flag is set and the
//! listener is woken with a self-connection.
//!
//! Every accepted socket gets read/write timeouts so a half-open or
//! glacially slow client cannot pin a worker thread forever (with
//! thread-per-connection, unbounded pinned workers is a resource-exhaustion
//! vector and would also wedge graceful shutdown's worker join).

use crate::error::error_response;
use crate::http::{read_request, HttpRequest, HttpResponse};
use serde::{Deserialize, Serialize};
use statesman_obs::{Obs, RoundTrace, StatusBoard};
use statesman_storage::{ReadRequest, StorageService, WriteRequest};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, StateError,
    StateResult, Version,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default per-socket read/write timeout for accepted connections.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Response header carrying the pool watermark on delta reads
/// (`GET /v1/read?since=...`). Clients feed its value back as the next
/// `since` to resume the changefeed.
pub const WATERMARK_HEADER: &str = "x-statesman-watermark";

/// The endpoints the server implements (each may be reachable through
/// several [`RouteSpec`] entries: the v1 path and deprecated aliases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /v1/read` — pool rows at a chosen freshness (Table 3a).
    /// With `since=<version>`, a [`statesman_types::StateDelta`] of
    /// changes past that watermark instead (the changefeed read; the
    /// reply carries the new watermark in [`WATERMARK_HEADER`]).
    Read,
    /// `POST /v1/write` — upsert rows into a pool (Table 3a).
    Write,
    /// `GET /v1/receipts` — drain an application's receipts.
    Receipts,
    /// `GET /v1/health` — liveness plus the server's simulated clock.
    Health,
    /// `GET /v1/metrics` — the metrics registry (text or JSON).
    Metrics,
    /// `GET /v1/status` — recent round traces and the status board.
    Status,
}

/// One row of the route table: a method + path bound to a [`Route`].
#[derive(Debug, Clone, Copy)]
pub struct RouteSpec {
    /// HTTP method.
    pub method: &'static str,
    /// Exact request path.
    pub path: &'static str,
    /// The endpoint this row reaches.
    pub route: Route,
    /// Deprecated alias? (Table-3 spelling; answers with a
    /// `deprecation` header and a `link` to `successor`.)
    pub deprecated: bool,
    /// The v1 path a deprecated alias forwards to (self for v1 rows).
    pub successor: &'static str,
}

/// The route table. Order is irrelevant: lookup is exact-match on path,
/// then on method.
pub const ROUTES: &[RouteSpec] = &[
    RouteSpec {
        method: "GET",
        path: "/v1/read",
        route: Route::Read,
        deprecated: false,
        successor: "/v1/read",
    },
    RouteSpec {
        method: "POST",
        path: "/v1/write",
        route: Route::Write,
        deprecated: false,
        successor: "/v1/write",
    },
    RouteSpec {
        method: "GET",
        path: "/v1/receipts",
        route: Route::Receipts,
        deprecated: false,
        successor: "/v1/receipts",
    },
    RouteSpec {
        method: "GET",
        path: "/v1/health",
        route: Route::Health,
        deprecated: false,
        successor: "/v1/health",
    },
    RouteSpec {
        method: "GET",
        path: "/v1/metrics",
        route: Route::Metrics,
        deprecated: false,
        successor: "/v1/metrics",
    },
    RouteSpec {
        method: "GET",
        path: "/v1/status",
        route: Route::Status,
        deprecated: false,
        successor: "/v1/status",
    },
    // Table-3 spellings, kept for one deprecation cycle.
    RouteSpec {
        method: "GET",
        path: "/NetworkState/Read",
        route: Route::Read,
        deprecated: true,
        successor: "/v1/read",
    },
    RouteSpec {
        method: "POST",
        path: "/NetworkState/Write",
        route: Route::Write,
        deprecated: true,
        successor: "/v1/write",
    },
    RouteSpec {
        method: "GET",
        path: "/NetworkState/Receipts",
        route: Route::Receipts,
        deprecated: true,
        successor: "/v1/receipts",
    },
    RouteSpec {
        method: "GET",
        path: "/healthz",
        route: Route::Health,
        deprecated: true,
        successor: "/v1/health",
    },
];

/// `GET /v1/health` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always true when the server answers.
    pub ok: bool,
    /// The server's simulated clock, milliseconds since scenario start
    /// (out-of-process clients stamp proposals with this).
    pub now_ms: u64,
}

/// `GET /v1/status` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusResponse {
    /// The live status board (quarantine set, open breakers, degraded
    /// partitions, last round index).
    pub status: StatusBoard,
    /// The most recent round traces, oldest first.
    pub traces: Vec<RoundTrace>,
}

/// Shared per-server state handed to every connection worker.
struct ServerContext {
    storage: StorageService,
    obs: Option<Obs>,
}

impl ServerContext {
    /// Count one served request in the shared registry, labeled by route
    /// path and status code, plus the byte/deprecation side counters.
    fn record(&self, spec: Option<&RouteSpec>, resp: &HttpResponse, bytes_in: usize) {
        let Some(obs) = &self.obs else { return };
        let r = &obs.registry;
        let route = spec.map(|s| s.path).unwrap_or("unmatched");
        let status = resp.status.to_string();
        r.counter_with(
            "httpapi_requests_total",
            &[("route", route), ("status", &status)],
        )
        .inc();
        r.counter("httpapi_bytes_received_total")
            .add(bytes_in as u64);
        r.counter("httpapi_bytes_sent_total")
            .add(resp.body.len() as u64);
        if spec.map(|s| s.deprecated).unwrap_or(false) {
            r.counter_with("httpapi_deprecated_total", &[("route", route)])
                .inc();
        }
    }

    fn record_io_timeout(&self) {
        if let Some(obs) = &self.obs {
            obs.registry.counter("httpapi_io_timeouts_total").inc();
        }
    }
}

/// The running API server.
pub struct ApiServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
}

impl ApiServer {
    /// Bind on 127.0.0.1 (ephemeral port) and start serving `storage`
    /// with the [`DEFAULT_IO_TIMEOUT`] on every accepted socket.
    pub fn start(storage: StorageService) -> StateResult<ApiServer> {
        Self::start_configured(storage, DEFAULT_IO_TIMEOUT, None)
    }

    /// Like [`ApiServer::start`] but additionally serving `obs` through
    /// `/v1/metrics` and `/v1/status`, and recording request metrics
    /// into its registry.
    pub fn start_with_obs(storage: StorageService, obs: Obs) -> StateResult<ApiServer> {
        Self::start_configured(storage, DEFAULT_IO_TIMEOUT, Some(obs))
    }

    /// Like [`ApiServer::start`] but with an explicit per-socket
    /// read/write timeout (tests use a short one to exercise the
    /// half-open-connection path quickly).
    pub fn start_with_io_timeout(
        storage: StorageService,
        io_timeout: Duration,
    ) -> StateResult<ApiServer> {
        Self::start_configured(storage, io_timeout, None)
    }

    /// Fully explicit constructor: socket timeout and optional
    /// observability handle.
    pub fn start_configured(
        storage: StorageService,
        io_timeout: Duration,
        obs: Option<Obs>,
    ) -> StateResult<ApiServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let ctx = Arc::new(ServerContext { storage, obs });
        let accept_stop = stop.clone();
        let accept_requests = requests.clone();
        let accept_thread = std::thread::Builder::new()
            .name("statesman-api-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // A zero Duration would mean "no timeout" to the OS;
                    // clamp so the protection can't be configured away by
                    // accident.
                    let t = io_timeout.max(Duration::from_millis(1));
                    let _ = stream.set_read_timeout(Some(t));
                    let _ = stream.set_write_timeout(Some(t));
                    let ctx = ctx.clone();
                    let requests = accept_requests.clone();
                    workers.push(
                        std::thread::Builder::new()
                            .name("statesman-api-conn".into())
                            .spawn(move || {
                                // Count before answering so a client that
                                // already has its response observes the
                                // increment.
                                requests.fetch_add(1, Ordering::Relaxed);
                                handle_connection(stream, &ctx);
                            })
                            .expect("spawn connection thread"),
                    );
                    // Opportunistically reap finished workers.
                    workers.retain(|w| !w.is_finished());
                }
                for w in workers {
                    let _ = w.join();
                }
            })
            .expect("spawn accept thread");
        Ok(ApiServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            requests,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &ServerContext) {
    let (spec, response, bytes_in) = match read_request(&mut stream) {
        Ok(req) => {
            let bytes = req.body.len();
            let (spec, resp) = dispatch(&req, ctx);
            (spec, resp, bytes)
        }
        // Socket-level failures are overwhelmingly the read timeout
        // firing on an idle/half-open connection; answer 408 (the write
        // fails harmlessly if the peer is truly gone). Parse failures on
        // data that did arrive stay 400.
        Err(StateError::Io { .. }) => {
            ctx.record_io_timeout();
            (
                None,
                HttpResponse::request_timeout("connection idled past the server's read timeout"),
                0,
            )
        }
        Err(e) => (None, HttpResponse::bad_request(e.to_string()), 0),
    };
    ctx.record(spec, &response, bytes_in);
    let _ = response.write_to(&mut stream);
}

/// Route-table dispatch: exact path match picks the row set; method
/// match picks the row. A known path under an unknown verb is 405 (with
/// `allow`), an unknown path is 404. Deprecated aliases answer like
/// their v1 route plus `deprecation`/`link` headers.
fn dispatch(req: &HttpRequest, ctx: &ServerContext) -> (Option<&'static RouteSpec>, HttpResponse) {
    let on_path: Vec<&'static RouteSpec> = ROUTES.iter().filter(|s| s.path == req.path).collect();
    if on_path.is_empty() {
        return (None, HttpResponse::not_found());
    }
    let Some(spec) = on_path.iter().find(|s| s.method == req.method) else {
        let allow = on_path
            .iter()
            .map(|s| s.method)
            .collect::<Vec<_>>()
            .join(", ");
        // Attribute the 405 to the path's first row so the metric lands
        // on a real route.
        return (Some(on_path[0]), HttpResponse::method_not_allowed(&allow));
    };
    let mut resp = match spec.route {
        Route::Read => handle_read(req, &ctx.storage),
        Route::Write => handle_write(req, &ctx.storage),
        Route::Receipts => handle_receipts(req, &ctx.storage),
        Route::Health => handle_health(ctx),
        Route::Metrics => handle_metrics(req, ctx),
        Route::Status => handle_status(req, ctx),
    };
    if spec.deprecated {
        resp = resp.with_header("deprecation", "true").with_header(
            "link",
            format!("<{}>; rel=\"successor-version\"", spec.successor),
        );
    }
    (Some(spec), resp)
}

fn storage_error(e: StateError) -> HttpResponse {
    error_response(e)
}

fn handle_read(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    if req.param("since").is_some() {
        return handle_read_since(req, storage);
    }
    let parse = || -> StateResult<ReadRequest> {
        let dc = DatacenterId::new(req.require("Datacenter")?);
        let pool = Pool::parse_wire_name(req.require("Pool")?)
            .ok_or_else(|| StateError::protocol("bad Pool"))?;
        let freshness = match req.param("Freshness") {
            Some(f) => Freshness::parse_wire_name(f)
                .ok_or_else(|| StateError::protocol("bad Freshness"))?,
            None => Freshness::UpToDate,
        };
        let entity = match req.param("Entity") {
            Some(e) => Some(
                EntityName::parse_wire_name(e).ok_or_else(|| StateError::protocol("bad Entity"))?,
            ),
            None => None,
        };
        let attribute = match req.param("Attribute") {
            Some(a) => Some(
                Attribute::parse_wire_name(a)
                    .ok_or_else(|| StateError::protocol("bad Attribute"))?,
            ),
            None => None,
        };
        Ok(ReadRequest {
            datacenter: dc,
            pool,
            freshness,
            entity,
            attribute,
        })
    };
    let request = match parse() {
        Ok(r) => r,
        Err(e) => return error_response(e),
    };
    match storage.read(request) {
        Ok(mut rows) => {
            rows.sort_by_key(|a| a.key());
            match serde_json::to_vec(&rows) {
                Ok(json) => HttpResponse::ok_json(json),
                Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
            }
        }
        Err(e) => storage_error(e),
    }
}

/// `GET /v1/read?since=<version>`: the changefeed read. Always a leader
/// read; the reply body is a [`statesman_types::StateDelta`] and the new
/// watermark rides in [`WATERMARK_HEADER`].
fn handle_read_since(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    let parse = || -> StateResult<(DatacenterId, Pool, Version)> {
        let dc = DatacenterId::new(req.require("Datacenter")?);
        let pool = Pool::parse_wire_name(req.require("Pool")?)
            .ok_or_else(|| StateError::protocol("bad Pool"))?;
        let since = req
            .param("since")
            .expect("checked by caller")
            .parse::<u64>()
            .map_err(|_| StateError::protocol("since must be a non-negative integer version"))?;
        // A delta is the whole pool's change set: row filters and
        // staleness bounds don't compose with it.
        for incompatible in ["Entity", "Attribute", "Freshness"] {
            if req.param(incompatible).is_some() {
                return Err(StateError::protocol(format!(
                    "{incompatible} cannot be combined with since"
                )));
            }
        }
        Ok((dc, pool, Version(since)))
    };
    let (dc, pool, since) = match parse() {
        Ok(p) => p,
        Err(e) => return error_response(e),
    };
    match storage.read_since(&dc, &pool, since) {
        Ok(delta) => {
            let watermark = delta.watermark.0.to_string();
            match serde_json::to_vec(&delta) {
                Ok(json) => HttpResponse::ok_json(json).with_header(WATERMARK_HEADER, watermark),
                Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
            }
        }
        Err(e) => storage_error(e),
    }
}

fn handle_write(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    let pool = match req
        .require("Pool")
        .and_then(|p| Pool::parse_wire_name(p).ok_or_else(|| StateError::protocol("bad Pool")))
    {
        Ok(p) => p,
        Err(e) => return error_response(e),
    };
    let rows: Vec<NetworkState> = match serde_json::from_slice(&req.body) {
        Ok(r) => r,
        Err(e) => return error_response(StateError::protocol(format!("body: {e}"))),
    };
    match storage.write(WriteRequest { pool, rows }) {
        Ok(()) => HttpResponse::no_content(),
        Err(e) => storage_error(e),
    }
}

fn handle_receipts(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    let app = match req.require("App") {
        Ok(a) => AppId::new(a),
        Err(e) => return error_response(e),
    };
    let mut all = Vec::new();
    for dc in storage.partitions() {
        match storage.take_receipts(&dc, &app) {
            Ok(r) => all.extend(r),
            Err(e) => return storage_error(e),
        }
    }
    match serde_json::to_vec(&all) {
        Ok(json) => HttpResponse::ok_json(json),
        Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
    }
}

fn handle_health(ctx: &ServerContext) -> HttpResponse {
    let body = HealthResponse {
        ok: true,
        now_ms: ctx.storage.clock().now().as_millis(),
    };
    match serde_json::to_vec(&body) {
        Ok(json) => HttpResponse::ok_json(json),
        Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
    }
}

fn handle_metrics(req: &HttpRequest, ctx: &ServerContext) -> HttpResponse {
    let Some(obs) = &ctx.obs else {
        return error_response(StateError::invalid(
            "observability is not enabled on this server (start it with start_with_obs)",
        ));
    };
    match req.param("format") {
        Some("json") => HttpResponse::ok_json(obs.registry.render_json().into_bytes()),
        None | Some("text") => HttpResponse::ok_text(obs.registry.render_text().into_bytes()),
        Some(other) => error_response(StateError::invalid(format!(
            "unknown metrics format {other:?} (use \"text\" or \"json\")"
        ))),
    }
}

fn handle_status(req: &HttpRequest, ctx: &ServerContext) -> HttpResponse {
    let Some(obs) = &ctx.obs else {
        return error_response(StateError::invalid(
            "observability is not enabled on this server (start it with start_with_obs)",
        ));
    };
    let rounds = match req.param("rounds") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return error_response(StateError::invalid(format!(
                    "rounds must be a non-negative integer, got {n:?}"
                )))
            }
        },
        None => 1,
    };
    let body = StatusResponse {
        status: obs.status(),
        traces: obs.traces.recent(rounds),
    };
    match serde_json::to_vec(&body) {
        Ok(json) => HttpResponse::ok_json(json),
        Err(e) => error_response(StateError::protocol(format!("serialize: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ApiClient;
    use statesman_net::SimClock;
    use statesman_types::{SimTime, Value};

    fn server() -> (ApiServer, ApiClient, SimClock) {
        let clock = SimClock::new();
        let storage = StorageService::single_dc("dc1", clock.clone());
        let server = ApiServer::start(storage).unwrap();
        let client = ApiClient::new(server.addr());
        (server, client, clock)
    }

    fn fw_row(dev: &str, v: &str, at: SimTime) -> NetworkState {
        NetworkState::new(
            EntityName::device("dc1", dev),
            Attribute::DeviceFirmwareVersion,
            Value::text(v),
            at,
            AppId::monitor(),
        )
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut server, client, clock) = server();
        client
            .write(&Pool::Observed, &[fw_row("agg-1-1", "6.0", clock.now())])
            .unwrap();
        let rows = client
            .read(
                &DatacenterId::new("dc1"),
                &Pool::Observed,
                Freshness::UpToDate,
                None,
                None,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, Value::text("6.0"));
        assert!(server.request_count() >= 2);
        server.shutdown();
    }

    #[test]
    fn read_filters_by_entity_and_attribute() {
        let (mut server, client, clock) = server();
        client
            .write(
                &Pool::Observed,
                &[
                    fw_row("agg-1-1", "6.0", clock.now()),
                    fw_row("agg-1-2", "6.0", clock.now()),
                ],
            )
            .unwrap();
        let rows = client
            .read(
                &DatacenterId::new("dc1"),
                &Pool::Observed,
                Freshness::UpToDate,
                Some(&EntityName::device("dc1", "agg-1-2")),
                Some(Attribute::DeviceFirmwareVersion),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].entity, EntityName::device("dc1", "agg-1-2"));
        server.shutdown();
    }

    #[test]
    fn read_since_serves_the_changefeed_over_the_wire() {
        let (mut server, client, clock) = server();
        let dc = DatacenterId::new("dc1");
        client
            .write(
                &Pool::Observed,
                &[
                    fw_row("agg-1-1", "6.0", clock.now()),
                    fw_row("agg-1-2", "6.0", clock.now()),
                ],
            )
            .unwrap();

        // From genesis: both rows arrive as one delta, watermark echoed
        // in the header (checked inside read_since).
        let d0 = client
            .read_os_since(&dc, statesman_types::Version::GENESIS)
            .unwrap();
        assert_eq!(d0.upserts.len(), 2);
        assert!(d0.deletes.is_empty());

        // Caught up: empty delta at the same watermark.
        let d1 = client.read_os_since(&dc, d0.watermark).unwrap();
        assert!(d1.is_empty());
        assert_eq!(d1.watermark, d0.watermark);

        // One change: exactly one upsert rides the feed.
        client
            .write(&Pool::Observed, &[fw_row("agg-1-1", "7.0", clock.now())])
            .unwrap();
        let d2 = client.read_os_since(&dc, d1.watermark).unwrap();
        assert_eq!(d2.upserts.len(), 1);
        assert_eq!(d2.upserts[0].value, Value::text("7.0"));
        assert!(!d2.snapshot);

        // The raw reply really carries the watermark header.
        let (status, headers, _) = client
            .raw_request("GET", "/v1/read?Datacenter=dc1&Pool=OS&since=0", &[])
            .unwrap();
        assert_eq!(status, 200);
        assert!(
            headers.iter().any(|(n, _)| n == WATERMARK_HEADER),
            "{headers:?}"
        );
        server.shutdown();
    }

    #[test]
    fn read_since_rejects_bad_and_incompatible_params() {
        let (mut server, client, _clock) = server();
        for target in [
            "/v1/read?Datacenter=dc1&Pool=OS&since=banana",
            "/v1/read?Datacenter=dc1&Pool=OS&since=-1",
            "/v1/read?Datacenter=dc1&Pool=OS&since=0&Entity=device:dc1:agg-1-1",
            "/v1/read?Datacenter=dc1&Pool=OS&since=0&Attribute=DeviceFirmwareVersion",
            "/v1/read?Datacenter=dc1&Pool=OS&since=0&Freshness=UpToDate",
        ] {
            let err = client.raw_get(target).unwrap_err();
            assert!(
                matches!(err, StateError::Protocol { .. }),
                "{target}: {err:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn bad_requests_are_typed_4xx() {
        let (mut server, client, _clock) = server();
        let err = client.raw_get("/v1/read?Pool=OS").unwrap_err();
        assert!(
            matches!(err, StateError::Protocol { .. }),
            "missing Datacenter is a protocol error: {err}"
        );
        let err = client.raw_get("/nope").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        server.shutdown();
    }

    #[test]
    fn known_path_wrong_verb_is_405_with_allow() {
        let (mut server, client, _clock) = server();
        let (status, headers, _) = client.raw_request("POST", "/v1/read", &[]).unwrap();
        assert_eq!(status, 405);
        let allow = headers.iter().find(|(n, _)| n == "allow").cloned();
        assert_eq!(allow, Some(("allow".to_string(), "GET".to_string())));
        // Unknown path stays 404 even with a known verb.
        let (status, _, _) = client.raw_request("GET", "/v2/read", &[]).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn health_endpoint_reports_sim_time() {
        let (mut server, client, clock) = server();
        clock.advance(statesman_types::SimDuration::from_mins(3));
        let body = client.raw_get("/v1/health").unwrap();
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"ok\":true"), "{text}");
        assert!(
            text.contains(&format!("\"now_ms\":{}", 3 * 60_000)),
            "{text}"
        );
        server.shutdown();
    }

    #[test]
    fn legacy_aliases_answer_with_deprecation_headers() {
        let (mut server, client, clock) = server();
        client
            .write(&Pool::Observed, &[fw_row("agg-1-1", "6.0", clock.now())])
            .unwrap();
        for (method, path) in [
            ("GET", "/NetworkState/Read?Datacenter=dc1&Pool=OS"),
            ("GET", "/NetworkState/Receipts?App=switch-upgrade"),
            ("GET", "/healthz"),
        ] {
            let (status, headers, _) = client.raw_request(method, path, &[]).unwrap();
            assert_eq!(status, 200, "{path}");
            assert!(
                headers
                    .iter()
                    .any(|(n, v)| n == "deprecation" && v == "true"),
                "{path} must carry a deprecation header: {headers:?}"
            );
            assert!(
                headers
                    .iter()
                    .any(|(n, v)| n == "link" && v.contains("successor-version")),
                "{path} must link its successor: {headers:?}"
            );
        }
        // The v1 spelling answers without them.
        let (status, headers, _) = client.raw_request("GET", "/v1/health", &[]).unwrap();
        assert_eq!(status, 200);
        assert!(!headers.iter().any(|(n, _)| n == "deprecation"));
        server.shutdown();
    }

    #[test]
    fn unroutable_write_is_typed_4xx() {
        let (mut server, client, clock) = server();
        let row = NetworkState::new(
            EntityName::device("dc-unknown", "x"),
            Attribute::DeviceFirmwareVersion,
            Value::text("1"),
            clock.now(),
            AppId::monitor(),
        );
        let err = client.write(&Pool::Observed, &[row]).unwrap_err();
        assert!(
            matches!(err, StateError::UnroutableEntity { .. }),
            "client decodes the typed error: {err:?}"
        );
        server.shutdown();
    }

    #[test]
    fn metrics_and_status_require_obs() {
        let (mut server, client, _clock) = server();
        let err = client.raw_get("/v1/metrics").unwrap_err();
        assert!(matches!(err, StateError::InvalidRequest { .. }), "{err:?}");
        server.shutdown();
    }

    #[test]
    fn half_open_connections_time_out_and_do_not_wedge_the_server() {
        use std::io::Read;
        let clock = SimClock::new();
        let storage = StorageService::single_dc("dc1", clock);
        let mut server =
            ApiServer::start_with_io_timeout(storage, Duration::from_millis(100)).unwrap();
        let client = ApiClient::new(server.addr());

        // A client connects and never sends a byte (half-open)...
        let mut idle = TcpStream::connect(server.addr()).unwrap();

        // ...other clients are still served meanwhile...
        let body = client.raw_get("/v1/health").unwrap();
        assert!(String::from_utf8_lossy(&body).contains("\"ok\":true"));

        // ...and once the read timeout fires, the idle connection is
        // answered with 408 and closed rather than pinning its worker.
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        idle.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");

        // Shutdown joins all workers promptly (no wedged thread).
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (mut server, _client, _clock) = server();
        server.shutdown();
        server.shutdown();
    }
}
