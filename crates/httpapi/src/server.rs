//! The API server: Table-3 endpoints over a [`StorageService`].
//!
//! Thread-per-connection with `connection: close` semantics (each request
//! is one TCP exchange — matching the paper's stateless REST front end
//! that sits "behind a load balancer ... which enables high availability
//! and flexible capacity"). Shutdown is graceful: a flag is set and the
//! listener is woken with a self-connection.
//!
//! Every accepted socket gets read/write timeouts so a half-open or
//! glacially slow client cannot pin a worker thread forever (with
//! thread-per-connection, unbounded pinned workers is a resource-exhaustion
//! vector and would also wedge graceful shutdown's worker join).

use crate::http::{read_request, HttpRequest, HttpResponse};
use statesman_storage::{ReadRequest, StorageService, WriteRequest};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, StateError,
    StateResult,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default per-socket read/write timeout for accepted connections.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// The running API server.
pub struct ApiServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
}

impl ApiServer {
    /// Bind on 127.0.0.1 (ephemeral port) and start serving `storage`
    /// with the [`DEFAULT_IO_TIMEOUT`] on every accepted socket.
    pub fn start(storage: StorageService) -> StateResult<ApiServer> {
        Self::start_with_io_timeout(storage, DEFAULT_IO_TIMEOUT)
    }

    /// Like [`ApiServer::start`] but with an explicit per-socket
    /// read/write timeout (tests use a short one to exercise the
    /// half-open-connection path quickly).
    pub fn start_with_io_timeout(
        storage: StorageService,
        io_timeout: Duration,
    ) -> StateResult<ApiServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let accept_stop = stop.clone();
        let accept_requests = requests.clone();
        let accept_thread = std::thread::Builder::new()
            .name("statesman-api-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // A zero Duration would mean "no timeout" to the OS;
                    // clamp so the protection can't be configured away by
                    // accident.
                    let t = io_timeout.max(Duration::from_millis(1));
                    let _ = stream.set_read_timeout(Some(t));
                    let _ = stream.set_write_timeout(Some(t));
                    let storage = storage.clone();
                    let requests = accept_requests.clone();
                    workers.push(
                        std::thread::Builder::new()
                            .name("statesman-api-conn".into())
                            .spawn(move || {
                                handle_connection(stream, &storage);
                                requests.fetch_add(1, Ordering::Relaxed);
                            })
                            .expect("spawn connection thread"),
                    );
                    // Opportunistically reap finished workers.
                    workers.retain(|w| !w.is_finished());
                }
                for w in workers {
                    let _ = w.join();
                }
            })
            .expect("spawn accept thread");
        Ok(ApiServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            requests,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, storage: &StorageService) {
    let response = match read_request(&mut stream) {
        Ok(req) => dispatch(&req, storage),
        // Socket-level failures are overwhelmingly the read timeout
        // firing on an idle/half-open connection; answer 408 (the write
        // fails harmlessly if the peer is truly gone). Parse failures on
        // data that did arrive stay 400.
        Err(StateError::Io { .. }) => {
            HttpResponse::request_timeout("connection idled past the server's read timeout")
        }
        Err(e) => HttpResponse::bad_request(e.to_string()),
    };
    let _ = response.write_to(&mut stream);
}

fn dispatch(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/NetworkState/Read") => handle_read(req, storage),
        ("POST", "/NetworkState/Write") => handle_write(req, storage),
        ("GET", "/NetworkState/Receipts") => handle_receipts(req, storage),
        ("GET", "/healthz") => HttpResponse::ok_json(b"{\"ok\":true}".to_vec()),
        _ => HttpResponse::not_found(),
    }
}

fn storage_error(e: StateError) -> HttpResponse {
    match e {
        StateError::StorageUnavailable { .. } => HttpResponse::unavailable(e.to_string()),
        other => HttpResponse::bad_request(other.to_string()),
    }
}

fn handle_read(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    let parse = || -> StateResult<ReadRequest> {
        let dc = DatacenterId::new(req.require("Datacenter")?);
        let pool = Pool::parse_wire_name(req.require("Pool")?)
            .ok_or_else(|| StateError::protocol("bad Pool"))?;
        let freshness = match req.param("Freshness") {
            Some(f) => Freshness::parse_wire_name(f)
                .ok_or_else(|| StateError::protocol("bad Freshness"))?,
            None => Freshness::UpToDate,
        };
        let entity = match req.param("Entity") {
            Some(e) => Some(
                EntityName::parse_wire_name(e).ok_or_else(|| StateError::protocol("bad Entity"))?,
            ),
            None => None,
        };
        let attribute = match req.param("Attribute") {
            Some(a) => Some(
                Attribute::parse_wire_name(a)
                    .ok_or_else(|| StateError::protocol("bad Attribute"))?,
            ),
            None => None,
        };
        Ok(ReadRequest {
            datacenter: dc,
            pool,
            freshness,
            entity,
            attribute,
        })
    };
    let request = match parse() {
        Ok(r) => r,
        Err(e) => return HttpResponse::bad_request(e.to_string()),
    };
    match storage.read(request) {
        Ok(mut rows) => {
            rows.sort_by_key(|a| a.key());
            match serde_json::to_vec(&rows) {
                Ok(json) => HttpResponse::ok_json(json),
                Err(e) => HttpResponse::bad_request(format!("serialize: {e}")),
            }
        }
        Err(e) => storage_error(e),
    }
}

fn handle_write(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    let pool = match req
        .require("Pool")
        .and_then(|p| Pool::parse_wire_name(p).ok_or_else(|| StateError::protocol("bad Pool")))
    {
        Ok(p) => p,
        Err(e) => return HttpResponse::bad_request(e.to_string()),
    };
    let rows: Vec<NetworkState> = match serde_json::from_slice(&req.body) {
        Ok(r) => r,
        Err(e) => return HttpResponse::bad_request(format!("body: {e}")),
    };
    match storage.write(WriteRequest { pool, rows }) {
        Ok(()) => HttpResponse::no_content(),
        Err(e) => storage_error(e),
    }
}

fn handle_receipts(req: &HttpRequest, storage: &StorageService) -> HttpResponse {
    let app = match req.require("App") {
        Ok(a) => AppId::new(a),
        Err(e) => return HttpResponse::bad_request(e.to_string()),
    };
    let mut all = Vec::new();
    for dc in storage.partitions() {
        match storage.take_receipts(&dc, &app) {
            Ok(r) => all.extend(r),
            Err(e) => return storage_error(e),
        }
    }
    match serde_json::to_vec(&all) {
        Ok(json) => HttpResponse::ok_json(json),
        Err(e) => HttpResponse::bad_request(format!("serialize: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ApiClient;
    use statesman_net::SimClock;
    use statesman_types::{SimTime, Value};

    fn server() -> (ApiServer, ApiClient, SimClock) {
        let clock = SimClock::new();
        let storage = StorageService::single_dc("dc1", clock.clone());
        let server = ApiServer::start(storage).unwrap();
        let client = ApiClient::new(server.addr());
        (server, client, clock)
    }

    fn fw_row(dev: &str, v: &str, at: SimTime) -> NetworkState {
        NetworkState::new(
            EntityName::device("dc1", dev),
            Attribute::DeviceFirmwareVersion,
            Value::text(v),
            at,
            AppId::monitor(),
        )
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut server, client, clock) = server();
        client
            .write(&Pool::Observed, &[fw_row("agg-1-1", "6.0", clock.now())])
            .unwrap();
        let rows = client
            .read(
                &DatacenterId::new("dc1"),
                &Pool::Observed,
                Freshness::UpToDate,
                None,
                None,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, Value::text("6.0"));
        assert!(server.request_count() >= 2);
        server.shutdown();
    }

    #[test]
    fn read_filters_by_entity_and_attribute() {
        let (mut server, client, clock) = server();
        client
            .write(
                &Pool::Observed,
                &[
                    fw_row("agg-1-1", "6.0", clock.now()),
                    fw_row("agg-1-2", "6.0", clock.now()),
                ],
            )
            .unwrap();
        let rows = client
            .read(
                &DatacenterId::new("dc1"),
                &Pool::Observed,
                Freshness::UpToDate,
                Some(&EntityName::device("dc1", "agg-1-2")),
                Some(Attribute::DeviceFirmwareVersion),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].entity, EntityName::device("dc1", "agg-1-2"));
        server.shutdown();
    }

    #[test]
    fn bad_requests_are_4xx() {
        let (mut server, client, _clock) = server();
        let err = client.raw_get("/NetworkState/Read?Pool=OS").unwrap_err();
        assert!(err.to_string().contains("400"), "{err}");
        let err = client.raw_get("/nope").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        server.shutdown();
    }

    #[test]
    fn health_endpoint() {
        let (mut server, client, _clock) = server();
        let body = client.raw_get("/healthz").unwrap();
        assert_eq!(body, b"{\"ok\":true}");
        server.shutdown();
    }

    #[test]
    fn unroutable_write_is_4xx() {
        let (mut server, client, clock) = server();
        let row = NetworkState::new(
            EntityName::device("dc-unknown", "x"),
            Attribute::DeviceFirmwareVersion,
            Value::text("1"),
            clock.now(),
            AppId::monitor(),
        );
        let err = client.write(&Pool::Observed, &[row]).unwrap_err();
        assert!(err.to_string().contains("400"), "{err}");
        server.shutdown();
    }

    #[test]
    fn half_open_connections_time_out_and_do_not_wedge_the_server() {
        use std::io::Read;
        let clock = SimClock::new();
        let storage = StorageService::single_dc("dc1", clock);
        let mut server =
            ApiServer::start_with_io_timeout(storage, Duration::from_millis(100)).unwrap();
        let client = ApiClient::new(server.addr());

        // A client connects and never sends a byte (half-open)...
        let mut idle = TcpStream::connect(server.addr()).unwrap();

        // ...other clients are still served meanwhile...
        let body = client.raw_get("/healthz").unwrap();
        assert_eq!(body, b"{\"ok\":true}");

        // ...and once the read timeout fires, the idle connection is
        // answered with 408 and closed rather than pinning its worker.
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        idle.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");

        // Shutdown joins all workers promptly (no wedged thread).
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (mut server, _client, _clock) = server();
        server.shutdown();
        server.shutdown();
    }
}
