//! A blocking HTTP client for the v1 API.
//!
//! One TCP connection per request (`connection: close`), mirroring the
//! stateless front end. Out-of-process applications use this client the
//! way in-process ones use `StatesmanClient` — and with
//! [`ApiClient::with_app`] the surface matches: `read_os`, `propose`,
//! `take_receipts` work over the wire with the same signatures' intent,
//! so swapping transports is a one-line change.
//!
//! Errors round-trip: a non-2xx v1 response carries the unified
//! `{code, message, retryable, source}` body, and the client hands back
//! the same typed [`StateError`] the server raised — an out-of-process
//! caller can match on `StateError::StorageUnavailable` exactly like an
//! in-process one.

use crate::error::decode_error;
use crate::http::{encode_component, read_response_full, RawResponse};
use crate::server::{HealthResponse, WATERMARK_HEADER};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, SimTime, StateDelta,
    StateError, StateResult, Value, Version, WriteReceipt,
};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};

/// Client handle (cheap; holds the server address and an optional bound
/// application identity for the `StatesmanClient`-shaped helpers).
#[derive(Debug, Clone)]
pub struct ApiClient {
    addr: SocketAddr,
    app: Option<AppId>,
}

impl ApiClient {
    /// Point at a server.
    pub fn new(addr: SocketAddr) -> Self {
        ApiClient { addr, app: None }
    }

    /// Bind an application identity, enabling [`ApiClient::propose`] and
    /// [`ApiClient::take_receipts`] (the `StatesmanClient` ergonomics).
    pub fn with_app(mut self, app: impl Into<AppId>) -> Self {
        self.app = Some(app.into());
        self
    }

    /// The bound application identity, if any.
    pub fn app(&self) -> Option<&AppId> {
        self.app.as_ref()
    }

    fn request(&self, method: &str, target: &str, body: &[u8]) -> StateResult<(u16, Vec<u8>)> {
        let (status, _headers, body) = self.raw_request(method, target, body)?;
        Ok((status, body))
    }

    /// Issue one request and return the raw (status, headers, body)
    /// triple. Header names are lowercased. For diagnostics, tests, and
    /// endpoints without a typed wrapper.
    pub fn raw_request(&self, method: &str, target: &str, body: &[u8]) -> StateResult<RawResponse> {
        let mut stream = TcpStream::connect(self.addr)?;
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: statesman\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        if !body.is_empty() {
            stream.write_all(body)?;
        }
        read_response_full(&mut stream)
    }

    /// On 2xx return the body; otherwise decode the unified error body
    /// back into the typed [`StateError`] the server raised.
    fn expect_2xx(&self, (status, body): (u16, Vec<u8>)) -> StateResult<Vec<u8>> {
        if (200..300).contains(&status) {
            Ok(body)
        } else {
            Err(decode_error(status, &body))
        }
    }

    /// `GET /v1/read` (Table 3a).
    pub fn read(
        &self,
        datacenter: &DatacenterId,
        pool: &Pool,
        freshness: Freshness,
        entity: Option<&EntityName>,
        attribute: Option<Attribute>,
    ) -> StateResult<Vec<NetworkState>> {
        let mut target = format!(
            "/v1/read?Datacenter={}&Pool={}&Freshness={}",
            encode_component(datacenter.as_str()),
            encode_component(&pool.wire_name()),
            encode_component(freshness.wire_name()),
        );
        if let Some(e) = entity {
            target.push_str(&format!("&Entity={}", encode_component(&e.wire_name())));
        }
        if let Some(a) = attribute {
            target.push_str(&format!("&Attribute={}", encode_component(a.wire_name())));
        }
        let body = self.expect_2xx(self.request("GET", &target, &[])?)?;
        serde_json::from_slice(&body)
            .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))
    }

    /// `GET /v1/read?since=<version>`: the changefeed read. Returns the
    /// pool's changes past `since` as a [`StateDelta`] (or a full
    /// snapshot when the change index no longer covers `since`), and
    /// verifies the body against the `x-statesman-watermark` header the
    /// server stamps on every delta reply.
    pub fn read_since(
        &self,
        datacenter: &DatacenterId,
        pool: &Pool,
        since: Version,
    ) -> StateResult<StateDelta> {
        let target = format!(
            "/v1/read?Datacenter={}&Pool={}&since={}",
            encode_component(datacenter.as_str()),
            encode_component(&pool.wire_name()),
            since.0,
        );
        let (status, headers, body) = self.raw_request("GET", &target, &[])?;
        if !(200..300).contains(&status) {
            return Err(decode_error(status, &body));
        }
        let delta: StateDelta = serde_json::from_slice(&body)
            .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))?;
        let header = headers
            .iter()
            .find(|(n, _)| n == WATERMARK_HEADER)
            .ok_or_else(|| StateError::protocol("delta reply missing watermark header"))?;
        if header.1 != delta.watermark.0.to_string() {
            return Err(StateError::protocol(format!(
                "watermark header {} disagrees with body {}",
                header.1, delta.watermark.0
            )));
        }
        Ok(delta)
    }

    /// Read the observed-state changes of one datacenter since a prior
    /// watermark (mirrors `StatesmanClient::read_os_since`).
    pub fn read_os_since(&self, dc: &DatacenterId, since: Version) -> StateResult<StateDelta> {
        self.read_since(dc, &Pool::Observed, since)
    }

    /// `POST /v1/write` (Table 3a): body is a JSON list of NetworkState
    /// objects.
    pub fn write(&self, pool: &Pool, rows: &[NetworkState]) -> StateResult<()> {
        let target = format!("/v1/write?Pool={}", encode_component(&pool.wire_name()));
        let body = serde_json::to_vec(rows)
            .map_err(|e| StateError::protocol(format!("serialize: {e}")))?;
        self.expect_2xx(self.request("POST", &target, &body)?)?;
        Ok(())
    }

    /// Drain an application's receipts (`GET /v1/receipts`).
    pub fn receipts(&self, app: &AppId) -> StateResult<Vec<WriteReceipt>> {
        let target = format!("/v1/receipts?App={}", encode_component(app.as_str()));
        let body = self.expect_2xx(self.request("GET", &target, &[])?)?;
        serde_json::from_slice(&body)
            .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))
    }

    /// The server's simulated clock (`GET /v1/health`). Out-of-process
    /// applications stamp proposals with this, like in-process ones use
    /// `StatesmanClient::now`.
    pub fn server_now(&self) -> StateResult<SimTime> {
        let body = self.expect_2xx(self.request("GET", "/v1/health", &[])?)?;
        let health: HealthResponse = serde_json::from_slice(&body)
            .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))?;
        Ok(SimTime::from_millis(health.now_ms))
    }

    fn bound_app(&self) -> StateResult<&AppId> {
        self.app.as_ref().ok_or_else(|| {
            StateError::invalid("no application identity bound (use ApiClient::with_app)")
        })
    }

    /// Read the full observed state of one datacenter at the chosen
    /// freshness (mirrors `StatesmanClient::read_os`).
    pub fn read_os(
        &self,
        dc: &DatacenterId,
        freshness: Freshness,
    ) -> StateResult<Vec<NetworkState>> {
        self.read(dc, &Pool::Observed, freshness, None, None)
    }

    /// Propose values under the bound application identity (mirrors
    /// `StatesmanClient::propose`): one PS write, rows stamped with the
    /// server's simulated time and this client's identity.
    pub fn propose(
        &self,
        changes: impl IntoIterator<Item = (EntityName, Attribute, Value)>,
    ) -> StateResult<()> {
        let app = self.bound_app()?.clone();
        let rows: Vec<(EntityName, Attribute, Value)> = changes.into_iter().collect();
        if rows.is_empty() {
            return Ok(());
        }
        let now = self.server_now()?;
        let rows: Vec<NetworkState> = rows
            .into_iter()
            .map(|(e, a, v)| NetworkState::new(e, a, v, now, app.clone()))
            .collect();
        self.write(&Pool::Proposed(app), &rows)
    }

    /// Poll (and consume) the bound application's receipts (mirrors
    /// `StatesmanClient::take_receipts`).
    pub fn take_receipts(&self) -> StateResult<Vec<WriteReceipt>> {
        let app = self.bound_app()?.clone();
        let mut all = self.receipts(&app)?;
        all.sort_by(|a, b| {
            a.decided_at
                .cmp(&b.decided_at)
                .then_with(|| a.key.cmp(&b.key))
        });
        Ok(all)
    }

    /// Raw GET for diagnostics/tests: 2xx body or the decoded error.
    pub fn raw_get(&self, target: &str) -> StateResult<Vec<u8>> {
        self.expect_2xx(self.request("GET", target, &[])?)
    }
}
