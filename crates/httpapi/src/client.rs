//! A blocking HTTP client for the v1 API.
//!
//! **Keep-alive by default**: the client holds one persistent TCP
//! connection and pipelines requests over it sequentially, reconnecting
//! transparently when a pooled connection has gone stale (the server
//! rotated it, an idle timeout closed it, or the process restarted).
//! Out-of-process applications use this client the way in-process ones
//! use `StatesmanClient` — and with [`ApiClient::with_app`] the surface
//! matches: `read_os`, `propose`, `take_receipts` work over the wire
//! with the same signatures' intent, so swapping transports is a
//! one-line change.
//!
//! Errors round-trip: a non-2xx v1 response carries the unified
//! `{code, message, retryable, source}` body, and the client hands back
//! the same typed [`StateError`] the server raised — an out-of-process
//! caller can match on `StateError::StorageUnavailable` (or a 429
//! shed's `StateError::Overloaded`) exactly like an in-process one.
//!
//! Every response surfaces the v1.1 header contract through
//! [`RawResponse`]: `x-statesman-watermark`, `x-statesman-cursor`,
//! `x-statesman-server`, and `retry-after` have typed accessors.

use crate::error::decode_error;
use crate::http::{encode_component, read_response_buffered, RawResponse};
use crate::server::{HealthResponse, WATERMARK_HEADER};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, SimTime, StateDelta,
    StateError, StateResult, Value, Version, WriteReceipt,
};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

/// Receipts pulled per page by the transparent pagination in
/// [`ApiClient::receipts`].
const RECEIPT_PAGE: usize = 512;

/// One pooled keep-alive connection: the write half plus a persistent
/// buffered reader (buffered bytes survive across responses).
#[derive(Debug)]
struct ClientConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ClientConn {
    fn open(addr: SocketAddr) -> StateResult<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ClientConn { stream, reader })
    }
}

/// Client handle: the server address, an optional bound application
/// identity for the `StatesmanClient`-shaped helpers, and the pooled
/// keep-alive connection. Cloning shares the connection; requests on it
/// are serialized.
#[derive(Debug, Clone)]
pub struct ApiClient {
    addr: SocketAddr,
    app: Option<AppId>,
    conn: Arc<Mutex<Option<ClientConn>>>,
}

impl ApiClient {
    /// Point at a server.
    pub fn new(addr: SocketAddr) -> Self {
        ApiClient {
            addr,
            app: None,
            conn: Arc::new(Mutex::new(None)),
        }
    }

    /// Bind an application identity, enabling [`ApiClient::propose`] and
    /// [`ApiClient::take_receipts`] (the `StatesmanClient` ergonomics).
    /// Requests carry it as `x-statesman-app`, which the server's fair
    /// queue uses for per-app scheduling. The pooled connection is NOT
    /// shared with the unbound handle.
    pub fn with_app(mut self, app: impl Into<AppId>) -> Self {
        self.app = Some(app.into());
        self.conn = Arc::new(Mutex::new(None));
        self
    }

    /// The bound application identity, if any.
    pub fn app(&self) -> Option<&AppId> {
        self.app.as_ref()
    }

    /// Drop the pooled connection; the next request reconnects.
    pub fn close(&self) {
        *self.guard() = None;
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, Option<ClientConn>> {
        self.conn.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Write one request and read its response on the pooled connection.
    fn round_trip(
        conn: &mut ClientConn,
        method: &str,
        target: &str,
        app: Option<&AppId>,
        body: &[u8],
    ) -> StateResult<RawResponse> {
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nhost: statesman\r\ncontent-length: {}\r\n",
            body.len()
        );
        if let Some(app) = app {
            head.push_str(&format!("x-statesman-app: {}\r\n", app.as_str()));
        }
        head.push_str("\r\n");
        conn.stream.write_all(head.as_bytes())?;
        if !body.is_empty() {
            conn.stream.write_all(body)?;
        }
        read_response_buffered(&mut conn.reader)
    }

    fn request(&self, method: &str, target: &str, body: &[u8]) -> StateResult<(u16, Vec<u8>)> {
        let r = self.raw_request(method, target, body)?;
        Ok((r.status, r.body))
    }

    /// Issue one request over the pooled keep-alive connection and
    /// return the raw response. A request that fails on a **reused**
    /// connection is retried once on a fresh one (the stale-keep-alive
    /// race: the server closed between our requests); a failure on a
    /// fresh connection is the caller's error. For diagnostics, tests,
    /// and endpoints without a typed wrapper.
    pub fn raw_request(&self, method: &str, target: &str, body: &[u8]) -> StateResult<RawResponse> {
        let mut guard = self.guard();
        let reused = guard.is_some();
        if guard.is_none() {
            *guard = Some(ClientConn::open(self.addr)?);
        }
        let conn = guard.as_mut().expect("just ensured");
        let result = Self::round_trip(conn, method, target, self.app.as_ref(), body);
        let resp = match result {
            Ok(resp) => resp,
            Err(_) if reused => {
                // Stale pooled connection; reconnect once and replay.
                *guard = Some(ClientConn::open(self.addr)?);
                let conn = guard.as_mut().expect("just replaced");
                match Self::round_trip(conn, method, target, self.app.as_ref(), body) {
                    Ok(resp) => resp,
                    Err(e) => {
                        *guard = None;
                        return Err(e);
                    }
                }
            }
            Err(e) => {
                *guard = None;
                return Err(e);
            }
        };
        if resp.connection_close() {
            *guard = None;
        }
        Ok(resp)
    }

    /// On 2xx return the body; otherwise decode the unified error body
    /// back into the typed [`StateError`] the server raised.
    fn expect_2xx(&self, (status, body): (u16, Vec<u8>)) -> StateResult<Vec<u8>> {
        if (200..300).contains(&status) {
            Ok(body)
        } else {
            Err(decode_error(status, &body))
        }
    }

    /// `GET /v1/read` (Table 3a).
    pub fn read(
        &self,
        datacenter: &DatacenterId,
        pool: &Pool,
        freshness: Freshness,
        entity: Option<&EntityName>,
        attribute: Option<Attribute>,
    ) -> StateResult<Vec<NetworkState>> {
        let mut target = format!(
            "/v1/read?Datacenter={}&Pool={}&Freshness={}",
            encode_component(datacenter.as_str()),
            encode_component(&pool.wire_name()),
            encode_component(freshness.wire_name()),
        );
        if let Some(e) = entity {
            target.push_str(&format!("&Entity={}", encode_component(&e.wire_name())));
        }
        if let Some(a) = attribute {
            target.push_str(&format!("&Attribute={}", encode_component(a.wire_name())));
        }
        let body = self.expect_2xx(self.request("GET", &target, &[])?)?;
        serde_json::from_slice(&body)
            .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))
    }

    /// `GET /v1/read?since=<version>`: the changefeed read. Returns the
    /// pool's changes past `since` as a [`StateDelta`] (or a full
    /// snapshot when the change index no longer covers `since`), and
    /// verifies the body against the `x-statesman-watermark` header the
    /// server stamps on every delta reply.
    pub fn read_since(
        &self,
        datacenter: &DatacenterId,
        pool: &Pool,
        since: Version,
    ) -> StateResult<StateDelta> {
        let target = format!(
            "/v1/read?Datacenter={}&Pool={}&since={}",
            encode_component(datacenter.as_str()),
            encode_component(&pool.wire_name()),
            since.0,
        );
        let resp = self.raw_request("GET", &target, &[])?;
        if !(200..300).contains(&resp.status) {
            return Err(decode_error(resp.status, &resp.body));
        }
        let delta: StateDelta = serde_json::from_slice(&resp.body)
            .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))?;
        let header = resp
            .header(WATERMARK_HEADER)
            .ok_or_else(|| StateError::protocol("delta reply missing watermark header"))?;
        if header != delta.watermark.0.to_string() {
            return Err(StateError::protocol(format!(
                "watermark header {} disagrees with body {}",
                header, delta.watermark.0
            )));
        }
        Ok(delta)
    }

    /// Read the observed-state changes of one datacenter since a prior
    /// watermark (mirrors `StatesmanClient::read_os_since`).
    pub fn read_os_since(&self, dc: &DatacenterId, since: Version) -> StateResult<StateDelta> {
        self.read_since(dc, &Pool::Observed, since)
    }

    /// `POST /v1/write` (Table 3a): body is a JSON list of NetworkState
    /// objects.
    pub fn write(&self, pool: &Pool, rows: &[NetworkState]) -> StateResult<()> {
        let target = format!("/v1/write?Pool={}", encode_component(&pool.wire_name()));
        let body = serde_json::to_vec(rows)
            .map_err(|e| StateError::protocol(format!("serialize: {e}")))?;
        self.expect_2xx(self.request("POST", &target, &body)?)?;
        Ok(())
    }

    /// Drain an application's receipts (`GET /v1/receipts`), walking the
    /// cursor pages transparently: 512-receipt pages are pulled with
    /// `limit=`, each page is acknowledged by feeding its cursor
    /// back as `after=`, and the final empty page acks the last batch.
    /// A crash mid-drain never loses receipts — unacked pages replay.
    pub fn receipts(&self, app: &AppId) -> StateResult<Vec<WriteReceipt>> {
        let mut all = Vec::new();
        let mut after: Option<u64> = None;
        loop {
            let mut target = format!(
                "/v1/receipts?App={}&limit={RECEIPT_PAGE}",
                encode_component(app.as_str())
            );
            if let Some(c) = after {
                target.push_str(&format!("&after={c}"));
            }
            let resp = self.raw_request("GET", &target, &[])?;
            if !(200..300).contains(&resp.status) {
                return Err(decode_error(resp.status, &resp.body));
            }
            let page: Vec<WriteReceipt> = serde_json::from_slice(&resp.body)
                .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))?;
            if page.is_empty() {
                return Ok(all);
            }
            all.extend(page);
            match resp.cursor() {
                Some(c) => after = Some(c),
                // A server without a cursor (shouldn't happen on a
                // paginated read) already drained; don't loop forever.
                None => return Ok(all),
            }
        }
    }

    /// The server's simulated clock (`GET /v1/health`). Out-of-process
    /// applications stamp proposals with this, like in-process ones use
    /// `StatesmanClient::now`.
    pub fn server_now(&self) -> StateResult<SimTime> {
        let body = self.expect_2xx(self.request("GET", "/v1/health", &[])?)?;
        let health: HealthResponse = serde_json::from_slice(&body)
            .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))?;
        Ok(SimTime::from_millis(health.now_ms))
    }

    fn bound_app(&self) -> StateResult<&AppId> {
        self.app.as_ref().ok_or_else(|| {
            StateError::invalid("no application identity bound (use ApiClient::with_app)")
        })
    }

    /// Read the full observed state of one datacenter at the chosen
    /// freshness (mirrors `StatesmanClient::read_os`).
    pub fn read_os(
        &self,
        dc: &DatacenterId,
        freshness: Freshness,
    ) -> StateResult<Vec<NetworkState>> {
        self.read(dc, &Pool::Observed, freshness, None, None)
    }

    /// Propose values under the bound application identity (mirrors
    /// `StatesmanClient::propose`): one PS write, rows stamped with the
    /// server's simulated time and this client's identity.
    pub fn propose(
        &self,
        changes: impl IntoIterator<Item = (EntityName, Attribute, Value)>,
    ) -> StateResult<()> {
        let app = self.bound_app()?.clone();
        let rows: Vec<(EntityName, Attribute, Value)> = changes.into_iter().collect();
        if rows.is_empty() {
            return Ok(());
        }
        let now = self.server_now()?;
        let rows: Vec<NetworkState> = rows
            .into_iter()
            .map(|(e, a, v)| NetworkState::new(e, a, v, now, app.clone()))
            .collect();
        self.write(&Pool::Proposed(app), &rows)
    }

    /// Poll (and consume) the bound application's receipts (mirrors
    /// `StatesmanClient::take_receipts`).
    pub fn take_receipts(&self) -> StateResult<Vec<WriteReceipt>> {
        let app = self.bound_app()?.clone();
        let mut all = self.receipts(&app)?;
        all.sort_by(|a, b| {
            a.decided_at
                .cmp(&b.decided_at)
                .then_with(|| a.key.cmp(&b.key))
        });
        Ok(all)
    }

    /// Raw GET for diagnostics/tests: 2xx body or the decoded error.
    pub fn raw_get(&self, target: &str) -> StateResult<Vec<u8>> {
        self.expect_2xx(self.request("GET", target, &[])?)
    }
}
