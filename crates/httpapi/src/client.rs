//! A blocking HTTP client for the Table-3 API.
//!
//! One TCP connection per request (`connection: close`), mirroring the
//! stateless front end. Out-of-process applications use this client the
//! way in-process ones use `StatesmanClient`.

use crate::http::{encode_component, read_response};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, StateError,
    StateResult, WriteReceipt,
};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};

/// Client handle (cheap; holds only the server address).
#[derive(Debug, Clone)]
pub struct ApiClient {
    addr: SocketAddr,
}

impl ApiClient {
    /// Point at a server.
    pub fn new(addr: SocketAddr) -> Self {
        ApiClient { addr }
    }

    fn request(&self, method: &str, target: &str, body: &[u8]) -> StateResult<(u16, Vec<u8>)> {
        let mut stream = TcpStream::connect(self.addr)?;
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: statesman\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        if !body.is_empty() {
            stream.write_all(body)?;
        }
        read_response(&mut stream)
    }

    fn expect_2xx(&self, (status, body): (u16, Vec<u8>)) -> StateResult<Vec<u8>> {
        if (200..300).contains(&status) {
            Ok(body)
        } else {
            Err(StateError::protocol(format!(
                "HTTP {status}: {}",
                String::from_utf8_lossy(&body)
            )))
        }
    }

    /// `GET NetworkState/Read` (Table 3a).
    pub fn read(
        &self,
        datacenter: &DatacenterId,
        pool: &Pool,
        freshness: Freshness,
        entity: Option<&EntityName>,
        attribute: Option<Attribute>,
    ) -> StateResult<Vec<NetworkState>> {
        let mut target = format!(
            "/NetworkState/Read?Datacenter={}&Pool={}&Freshness={}",
            encode_component(datacenter.as_str()),
            encode_component(&pool.wire_name()),
            encode_component(freshness.wire_name()),
        );
        if let Some(e) = entity {
            target.push_str(&format!("&Entity={}", encode_component(&e.wire_name())));
        }
        if let Some(a) = attribute {
            target.push_str(&format!("&Attribute={}", encode_component(a.wire_name())));
        }
        let body = self.expect_2xx(self.request("GET", &target, &[])?)?;
        serde_json::from_slice(&body)
            .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))
    }

    /// `POST NetworkState/Write` (Table 3a): body is a JSON list of
    /// NetworkState objects.
    pub fn write(&self, pool: &Pool, rows: &[NetworkState]) -> StateResult<()> {
        let target = format!(
            "/NetworkState/Write?Pool={}",
            encode_component(&pool.wire_name())
        );
        let body = serde_json::to_vec(rows)
            .map_err(|e| StateError::protocol(format!("serialize: {e}")))?;
        self.expect_2xx(self.request("POST", &target, &body)?)?;
        Ok(())
    }

    /// Drain an application's receipts.
    pub fn receipts(&self, app: &AppId) -> StateResult<Vec<WriteReceipt>> {
        let target = format!(
            "/NetworkState/Receipts?App={}",
            encode_component(app.as_str())
        );
        let body = self.expect_2xx(self.request("GET", &target, &[])?)?;
        serde_json::from_slice(&body)
            .map_err(|e| StateError::protocol(format!("bad response JSON: {e}")))
    }

    /// Raw GET for diagnostics/tests.
    pub fn raw_get(&self, target: &str) -> StateResult<Vec<u8>> {
        self.expect_2xx(self.request("GET", target, &[])?)
    }
}
