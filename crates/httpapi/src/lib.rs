#![warn(missing_docs)]

//! # statesman-httpapi
//!
//! The read–write HTTP interface of Table 3, on real TCP sockets:
//!
//! ```text
//! GET  /NetworkState/Read?Datacenter={dc}&Pool={p}&Freshness={c}&Entity={e}&Attribute={a}
//! POST /NetworkState/Write?Pool={p}          (body: JSON list of NetworkState)
//! GET  /NetworkState/Receipts?App={app}      (drain an application's receipts)
//! GET  /healthz
//! ```
//!
//! The paper's storage front end "is implemented as a HTTP web service
//! with RESTful APIs" (§6.4); applications, monitors, updaters, and
//! checkers all go through it. Here the in-process components use the
//! native [`StorageService`](statesman_storage::StorageService) API for
//! speed, and this crate exposes the same service over the wire so
//! out-of-process applications (see `examples/http_service.rs`) interact
//! exactly as the paper describes — including the `Freshness` parameter
//! choosing between up-to-date and bounded-stale reads.
//!
//! The HTTP/1.1 implementation is deliberately small: request-line +
//! headers + `Content-Length` bodies, thread-per-connection, graceful
//! shutdown. No external HTTP dependency — `bytes` for buffers, `serde_json`
//! for payloads.

pub mod client;
pub mod http;
pub mod server;

pub use client::ApiClient;
pub use http::{HttpRequest, HttpResponse};
pub use server::ApiServer;
