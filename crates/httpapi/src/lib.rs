#![warn(missing_docs)]

//! # statesman-httpapi
//!
//! The versioned v1 HTTP interface over real TCP sockets:
//!
//! ```text
//! GET  /v1/read?Datacenter={dc}&Pool={p}&Freshness={c}&Entity={e}&Attribute={a}
//! POST /v1/write?Pool={p}            (body: JSON list of NetworkState)
//! GET  /v1/receipts?App={app}        (drain an application's receipts)
//! GET  /v1/health                    ({ok, now_ms}: liveness + simulated clock)
//! GET  /v1/metrics[?format=json]     (the metrics registry; text by default)
//! GET  /v1/status[?rounds=N]         (status board + last N round traces)
//! ```
//!
//! The Table-3 spellings (`/NetworkState/Read`, `/NetworkState/Write`,
//! `/NetworkState/Receipts`, `/healthz`) remain as deprecated aliases:
//! they answer identically plus a `deprecation: true` header and a
//! `link: </v1/...>; rel="successor-version"` pointer, and each hit bumps
//! `httpapi_deprecated_total` so operators can watch stragglers drain.
//!
//! The paper's storage front end "is implemented as a HTTP web service
//! with RESTful APIs" (§6.4); applications, monitors, updaters, and
//! checkers all go through it. Here the in-process components use the
//! native [`StorageService`](statesman_storage::StorageService) API for
//! speed, and this crate exposes the same service over the wire so
//! out-of-process applications (see `examples/http_service.rs`) interact
//! exactly as the paper describes — including the `Freshness` parameter
//! choosing between up-to-date and bounded-stale reads.
//!
//! Dispatch is a typed route table ([`server::ROUTES`]): unknown paths
//! are 404, known paths under the wrong verb are 405 with an `allow`
//! header. Every v1 error is the unified JSON body
//! `{code, message, retryable, source}` ([`error::ApiErrorBody`]), and
//! [`ApiClient`] decodes it back into the exact typed
//! [`StateError`](statesman_types::StateError) the server raised.
//!
//! The HTTP/1.1 implementation is deliberately small: request-line +
//! headers + `Content-Length` bodies, thread-per-connection, graceful
//! shutdown. No external HTTP dependency — `bytes` for buffers, `serde_json`
//! for payloads.

pub mod client;
pub mod error;
pub mod http;
pub mod server;

pub use client::ApiClient;
pub use error::ApiErrorBody;
pub use http::{HttpRequest, HttpResponse};
pub use server::{ApiServer, HealthResponse, StatusResponse};
