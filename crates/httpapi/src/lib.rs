#![warn(missing_docs)]

//! # statesman-httpapi
//!
//! The versioned v1 HTTP interface over real TCP sockets:
//!
//! ```text
//! GET  /v1/read?Datacenter={dc}&Pool={p}&Freshness={c}&Entity={e}&Attribute={a}
//! GET  /v1/read?Datacenter={dc}&Pool={p}&since={v}   (changefeed delta)
//! POST /v1/write?Pool={p}            (body: JSON list of NetworkState)
//! GET  /v1/receipts?App={app}[&limit=N&after=C]      (drain or paginate receipts)
//! GET  /v1/health                    ({ok, now_ms}: liveness + simulated clock)
//! GET  /v1/metrics[?format=json]     (the metrics registry; text by default)
//! GET  /v1/status[?rounds=N]         (status board + last N round traces)
//! ```
//!
//! ## The front end
//!
//! The server ([`ApiServer`]) is a **fixed worker thread-pool** behind a
//! readiness-driven reactor: an accept thread feeds connections to one
//! reactor that owns them nonblockingly (`poll(2)`), parses requests
//! incrementally, and queues complete requests into a bounded
//! **per-app-fair** ready queue drained by the workers. Thread count is
//! `workers + 2` no matter how many thousands of keep-alive connections
//! are open. Admission control is explicit: past
//! [`ServerConfig::max_connections`] or a full ready queue the server
//! sheds with `429` + `retry-after` + the typed JSON error body — load
//! is signalled to callers, not absorbed silently by the OS accept
//! backlog. Workers drain pipelined requests (budget-capped) and
//! coalesce queued same-pool `/v1/write` bodies into one storage batch.
//!
//! Every response carries `x-statesman-server`; every retryable error
//! carries `retry-after`; delta and pool reads carry
//! `x-statesman-watermark`; paginated receipts carry
//! `x-statesman-cursor`. [`ApiClient`] keeps one persistent keep-alive
//! connection (reconnecting transparently when it goes stale) and
//! exposes the header contract on [`RawResponse`].
//!
//! The Table-3 spellings (`/NetworkState/Read`, `/NetworkState/Write`,
//! `/NetworkState/Receipts`, `/healthz`) are **sunset**: by default they
//! answer `410 Gone` with a `link: </v1/...>; rel="successor-version"`
//! pointer; [`ServerConfig::legacy_aliases`] restores them for one more
//! deprecation cycle (with `deprecation: true` headers, each hit bumping
//! `httpapi_deprecated_total`). They live in a cold table outside the
//! hot dispatch path either way.
//!
//! The paper's storage front end "is implemented as a HTTP web service
//! with RESTful APIs" (§6.4); applications, monitors, updaters, and
//! checkers all go through it. Here the in-process components use the
//! native [`StorageService`](statesman_storage::StorageService) API for
//! speed, and this crate exposes the same service over the wire so
//! out-of-process applications (see `examples/http_service.rs`) interact
//! exactly as the paper describes — including the `Freshness` parameter
//! choosing between up-to-date and bounded-stale reads.
//!
//! Dispatch is a typed route table ([`server::ROUTES`]): unknown paths
//! are 404, known paths under the wrong verb are 405 with an `allow`
//! header. Every v1 error is the unified JSON body
//! `{code, message, retryable, source}` ([`error::ApiErrorBody`]), and
//! [`ApiClient`] decodes it back into the exact typed
//! [`StateError`](statesman_types::StateError) the server raised — a
//! `429` shed round-trips into a retryable `StateError::Overloaded`.
//!
//! The HTTP/1.1 implementation is deliberately small: request-line +
//! headers + `Content-Length` bodies, keep-alive with pipelining,
//! graceful drain-then-join shutdown. No external HTTP dependency —
//! `bytes` for buffers, `serde_json` for payloads.

pub mod client;
pub mod error;
pub mod http;
pub mod server;

pub use client::ApiClient;
pub use error::ApiErrorBody;
pub use http::{HttpRequest, HttpResponse, RawResponse};
pub use server::{ApiServer, HealthResponse, ServerConfig, StatusResponse};
