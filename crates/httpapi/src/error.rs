//! The v1 API's unified JSON error body.
//!
//! Every non-2xx v1 response carries `{code, message, retryable, source}`:
//! a stable machine-readable `code`, the human-readable `message`,
//! whether retrying the same request may succeed, and the full typed
//! [`StateError`] so [`crate::ApiClient`] can hand callers exactly the
//! error an in-process `StatesmanClient` would have seen. HTTP status is
//! derived from the error class (404 missing, 4xx caller bugs, 5xx
//! service-side failures).

use crate::http::HttpResponse;
use serde::{Deserialize, Serialize};
use statesman_types::StateError;

/// The wire shape of a v1 error response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiErrorBody {
    /// Stable machine-readable error code (snake_case).
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Whether reissuing the same request after a backoff may succeed.
    pub retryable: bool,
    /// The typed error, round-trippable into a [`StateError`].
    pub source: StateError,
}

/// The stable wire code for an error class.
pub fn error_code(e: &StateError) -> &'static str {
    match e {
        StateError::NotFound { .. } => "not_found",
        StateError::StorageUnavailable { .. } => "storage_unavailable",
        StateError::UnroutableEntity { .. } => "unroutable_entity",
        StateError::DeviceTimeout { .. } => "device_timeout",
        StateError::CommandFailed { .. } => "command_failed",
        StateError::NoCommandTemplate { .. } => "no_command_template",
        StateError::InvalidRequest { .. } => "invalid_request",
        StateError::Protocol { .. } => "protocol_error",
        StateError::Io { .. } => "io_error",
        StateError::Overloaded { .. } => "overloaded",
    }
}

/// The HTTP status an error class maps to.
pub fn error_status(e: &StateError) -> u16 {
    match e {
        StateError::NotFound { .. } => 404,
        StateError::StorageUnavailable { .. } => 503,
        StateError::UnroutableEntity { .. } => 400,
        StateError::DeviceTimeout { .. } => 504,
        StateError::CommandFailed { .. } => 502,
        StateError::NoCommandTemplate { .. } => 400,
        StateError::InvalidRequest { .. } => 400,
        StateError::Protocol { .. } => 400,
        StateError::Io { .. } => 500,
        StateError::Overloaded { .. } => 429,
    }
}

/// The reason phrase for a status code.
pub fn reason(status: u16) -> &'static str {
    match status {
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

/// The `retry-after` value (whole seconds, rounded up) an error advises,
/// if it is retryable at all. Overload sheds carry their configured
/// backoff; other retryable classes get a conventional 1 s.
fn retry_after_secs(e: &StateError) -> Option<u64> {
    if !e.is_retryable() {
        return None;
    }
    Some(match e {
        StateError::Overloaded { retry_after_ms } => retry_after_ms.div_ceil(1000).max(1),
        _ => 1,
    })
}

/// Render a typed error as the unified v1 error response. Every
/// retryable error carries a `retry-after` header (seconds) so clients
/// never need to invent a backoff.
pub fn error_response(e: StateError) -> HttpResponse {
    let status = error_status(&e);
    let retry_after = retry_after_secs(&e);
    let body = ApiErrorBody {
        code: error_code(&e).to_string(),
        message: e.to_string(),
        retryable: e.is_retryable(),
        source: e,
    };
    let json = serde_json::to_vec(&body).unwrap_or_else(|_| b"{}".to_vec());
    let mut resp = HttpResponse {
        status,
        reason: reason(status),
        body: json,
        content_type: "application/json",
        headers: Vec::new(),
    };
    if let Some(secs) = retry_after {
        resp = resp.with_header("retry-after", secs.to_string());
    }
    resp
}

/// Decode a non-2xx response body back into the typed error the server
/// raised. Falls back to a [`StateError::Protocol`] carrying the status
/// and raw body when the body is not a v1 error (legacy endpoints,
/// proxies, truncation).
pub fn decode_error(status: u16, body: &[u8]) -> StateError {
    match serde_json::from_slice::<ApiErrorBody>(body) {
        Ok(parsed) => parsed.source,
        Err(_) => StateError::protocol(format!("HTTP {status}: {}", String::from_utf8_lossy(body))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_types::{Attribute, EntityName, Pool, StateKey};

    #[test]
    fn every_class_round_trips_through_the_wire_body() {
        let cases = vec![
            StateError::NotFound {
                key: StateKey::new(
                    EntityName::device("dc1", "tor-1-1"),
                    Attribute::DeviceAdminPower,
                ),
                pool: Pool::Observed,
            },
            StateError::StorageUnavailable {
                partition: "dc1".into(),
                reason: "no quorum".into(),
            },
            StateError::UnroutableEntity {
                entity: EntityName::device("dc9", "x"),
            },
            StateError::DeviceTimeout {
                device: "agg-1-1".into(),
                operation: "snmp-get".into(),
            },
            StateError::CommandFailed {
                device: "agg-1-1".into(),
                command: "reload".into(),
                code: "E-1".into(),
            },
            StateError::NoCommandTemplate {
                model: "vendorX-9k".into(),
                attribute: "DeviceFirmwareVersion".into(),
            },
            StateError::invalid("bad pool"),
            StateError::protocol("bad wire name"),
            StateError::Io {
                reason: "peer gone".into(),
            },
            StateError::Overloaded {
                retry_after_ms: 1500,
            },
        ];
        for e in cases {
            let resp = error_response(e.clone());
            assert_eq!(resp.status, error_status(&e));
            let decoded = decode_error(resp.status, &resp.body);
            assert_eq!(decoded, e, "decoded error must equal the original");
            assert_eq!(decoded.is_retryable(), e.is_retryable());
            let retry_header = resp
                .headers
                .iter()
                .find(|(n, _)| n == "retry-after")
                .map(|(_, v)| v.as_str());
            assert_eq!(
                retry_header.is_some(),
                e.is_retryable(),
                "retry-after iff retryable: {e}"
            );
        }
    }

    #[test]
    fn overload_sheds_advise_their_backoff_rounded_up() {
        let resp = error_response(StateError::Overloaded {
            retry_after_ms: 1500,
        });
        assert_eq!(resp.status, 429);
        assert_eq!(resp.reason, "Too Many Requests");
        let retry = resp
            .headers
            .iter()
            .find(|(n, _)| n == "retry-after")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_eq!(retry, "2", "1500ms rounds up to 2s");
        let decoded = decode_error(resp.status, &resp.body);
        assert!(decoded.is_retryable());
    }

    #[test]
    fn status_mapping_separates_caller_and_service_faults() {
        assert_eq!(error_status(&StateError::invalid("x")), 400);
        assert_eq!(
            error_status(&StateError::StorageUnavailable {
                partition: "dc1".into(),
                reason: "quorum".into()
            }),
            503
        );
    }

    #[test]
    fn non_v1_bodies_fall_back_to_protocol_errors() {
        let e = decode_error(500, b"Internal Server Error");
        assert!(matches!(e, StateError::Protocol { .. }));
        assert!(e.to_string().contains("500"));
    }
}
