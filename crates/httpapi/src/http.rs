//! A deliberately small HTTP/1.1 codec: request-line + headers +
//! `Content-Length` bodies, parsed **incrementally** from a byte buffer
//! so the server's reactor can feed connections nonblockingly and only
//! hand complete requests to the worker pool.
//!
//! Query values are percent-encoded because entity wire names contain
//! `/` and `~` (e.g. `dc1/link/agg-1-1~tor-1-1`).

use bytes::{BufMut, BytesMut};
use statesman_types::{StateError, StateResult};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRequest {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string, e.g. `/v1/read`.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Request headers, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A query parameter, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(|s| s.as_str())
    }

    /// A required query parameter, or a protocol error naming it.
    pub fn require(&self, key: &str) -> StateResult<&str> {
        self.param(key)
            .ok_or_else(|| StateError::protocol(format!("missing query parameter {key}")))
    }

    /// A request header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for this connection to close after the
    /// response (`connection: close`). HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }

    /// The application identity the request rides under, if the client
    /// stamped one (`x-statesman-app`); used for per-app fairness.
    pub fn app_label(&self) -> &str {
        self.header("x-statesman-app").unwrap_or("")
    }
}

/// Size limits the incremental parser enforces. Violations map to
/// distinct HTTP statuses (431 for headers, 413 for bodies) so a client
/// can tell "shrink your header block" from "shrink your payload".
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request-line + headers (terminator included).
    pub max_header_bytes: usize,
    /// Maximum accepted `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            // Generous for a query-string API; a legitimate request head
            // is a few hundred bytes.
            max_header_bytes: 16 << 10,
            // A monitor round for a large DC is a few MB of JSON; anything
            // beyond 64 MB is abuse, not a workload.
            max_body_bytes: 64 << 20,
        }
    }
}

/// Why a buffered byte sequence cannot become a request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The header block exceeded [`HttpLimits::max_header_bytes`] without
    /// terminating (answer 431).
    HeadersTooLarge,
    /// The declared `Content-Length` exceeded
    /// [`HttpLimits::max_body_bytes`] (answer 413).
    BodyTooLarge,
    /// The bytes that did arrive are not HTTP (answer 400).
    Malformed(StateError),
}

/// The parsed head of an in-flight request: everything but the body,
/// plus how many bytes the head consumed and how many the body needs.
/// Cached by the connection so completeness checks after the head has
/// parsed are O(1) instead of re-scanning the buffer.
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// Parsed request minus the body.
    pub request: HttpRequest,
    /// Bytes of the buffer the head consumed (terminator included).
    pub head_len: usize,
    /// Declared `Content-Length`.
    pub content_length: usize,
}

impl RequestHead {
    /// Total buffered bytes needed for the full request.
    pub fn total_len(&self) -> usize {
        self.head_len + self.content_length
    }
}

/// Locate the end of the header block: byte length through the
/// `\r\n\r\n` (or bare `\n\n`) terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // "\n\r\n" or "\n\n" both end the block.
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Try to parse a request head out of `buf`. `Ok(None)` means the head
/// is still incomplete — read more bytes and try again.
pub fn parse_head(buf: &[u8], limits: &HttpLimits) -> Result<Option<RequestHead>, RequestError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > limits.max_header_bytes {
            return Err(RequestError::HeadersTooLarge);
        }
        return Ok(None);
    };
    if head_len > limits.max_header_bytes {
        return Err(RequestError::HeadersTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| RequestError::Malformed(StateError::protocol("request head is not UTF-8")))?;
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let line = lines
        .next()
        .ok_or_else(|| RequestError::Malformed(StateError::protocol("empty request line")))?;
    let mut parts = line.split_whitespace();
    let malformed = |what: &str| RequestError::Malformed(StateError::protocol(what.to_string()));
    let method = parts
        .next()
        .ok_or_else(|| malformed("empty request line"))?;
    let target = parts
        .next()
        .ok_or_else(|| malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(StateError::protocol(format!(
            "unsupported version {version}"
        ))));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (
            p.to_string(),
            parse_query(q).map_err(RequestError::Malformed)?,
        ),
        None => (target.to_string(), BTreeMap::new()),
    };
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for h in lines {
        if h.is_empty() {
            continue;
        }
        if let Some((name, value)) = h.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    RequestError::Malformed(StateError::protocol("bad content-length"))
                })?;
            }
            headers.push((name, value));
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(RequestError::BodyTooLarge);
    }
    Ok(Some(RequestHead {
        request: HttpRequest {
            method: method.to_string(),
            path,
            query,
            headers,
            body: Vec::new(),
        },
        head_len,
        content_length,
    }))
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Body bytes (JSON for API responses).
    pub body: Vec<u8>,
    /// Content type.
    pub content_type: &'static str,
    /// Extra response headers (name, value) beyond the standard set.
    pub headers: Vec<(String, String)>,
}

impl HttpResponse {
    fn new(status: u16, reason: &'static str, body: Vec<u8>, content_type: &'static str) -> Self {
        HttpResponse {
            status,
            reason,
            body,
            content_type,
            headers: Vec::new(),
        }
    }

    /// 200 with a JSON body.
    pub fn ok_json(body: impl Into<Vec<u8>>) -> Self {
        HttpResponse::new(200, "OK", body.into(), "application/json")
    }

    /// 200 with a plain-text body (the Prometheus-style metrics export).
    pub fn ok_text(body: impl Into<Vec<u8>>) -> Self {
        HttpResponse::new(200, "OK", body.into(), "text/plain")
    }

    /// 204 (accepted writes).
    pub fn no_content() -> Self {
        HttpResponse::new(204, "No Content", Vec::new(), "text/plain")
    }

    /// 400 with a plain-text reason.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        HttpResponse::new(400, "Bad Request", msg.into().into_bytes(), "text/plain")
    }

    /// 408 (the connection idled past the server's read timeout before a
    /// full request arrived — half-open sockets and slow-loris clients).
    pub fn request_timeout(msg: impl Into<String>) -> Self {
        HttpResponse::new(
            408,
            "Request Timeout",
            msg.into().into_bytes(),
            "text/plain",
        )
    }

    /// 404.
    pub fn not_found() -> Self {
        HttpResponse::new(404, "Not Found", b"no such endpoint".to_vec(), "text/plain")
    }

    /// 405: the path exists but not under this verb. `allow` lists the
    /// verbs that do work, per RFC 9110 §15.5.6.
    pub fn method_not_allowed(allow: &str) -> Self {
        HttpResponse::new(
            405,
            "Method Not Allowed",
            b"method not allowed on this path".to_vec(),
            "text/plain",
        )
        .with_header("allow", allow)
    }

    /// 503 (storage unavailable).
    pub fn unavailable(msg: impl Into<String>) -> Self {
        HttpResponse::new(
            503,
            "Service Unavailable",
            msg.into().into_bytes(),
            "text/plain",
        )
    }

    /// Attach an extra response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize onto the wire. `keep_alive` chooses the `connection`
    /// header; pass `false` when the server will close after this
    /// response (shutdown, errors, budget exhausted, client asked).
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut buf = BytesMut::with_capacity(160 + self.body.len());
        buf.put_slice(
            format!(
                "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
                self.status,
                self.reason,
                self.content_type,
                self.body.len(),
                if keep_alive { "keep-alive" } else { "close" },
            )
            .as_bytes(),
        );
        for (name, value) in &self.headers {
            buf.put_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        buf.put_slice(b"\r\n");
        buf.put_slice(&self.body);
        stream.write_all(&buf)
    }
}

/// Percent-encode a query value (RFC 3986 unreserved set passes through).
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'*' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-decode a query value.
pub fn decode_component(s: &str) -> StateResult<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if i + 2 > bytes.len() {
                    return Err(StateError::protocol("truncated percent escape"));
                }
                let hex = s
                    .get(i + 1..i + 3)
                    .ok_or_else(|| StateError::protocol("truncated percent escape"))?;
                let v = u8::from_str_radix(hex, 16)
                    .map_err(|_| StateError::protocol(format!("bad percent escape %{hex}")))?;
                out.push(v);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| StateError::protocol("query is not UTF-8"))
}

/// Parse the query string into decoded key/value pairs.
fn parse_query(q: &str) -> StateResult<BTreeMap<String, String>> {
    let mut map = BTreeMap::new();
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        map.insert(decode_component(k)?, decode_component(v)?);
    }
    Ok(map)
}

/// Body-size cap for client-side response reads.
const MAX_BODY: usize = 64 << 20;

/// Read one response from a connection (client side, `connection: close`
/// style sockets). Returns (status, body).
pub fn read_response(stream: &mut TcpStream) -> StateResult<(u16, Vec<u8>)> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let r = read_response_buffered(&mut reader)?;
    Ok((r.status, r.body))
}

/// A raw HTTP response: status code, lowercased (name, value) header
/// pairs, and the body bytes. The v1.1 response-header contract rides
/// here uniformly: [`RawResponse::watermark`], [`RawResponse::cursor`],
/// [`RawResponse::retry_after`], and [`RawResponse::server_version`]
/// expose the standard `x-statesman-*`/`retry-after` headers without
/// callers grepping the header list.
#[derive(Debug, Clone, PartialEq)]
pub struct RawResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl RawResponse {
    /// A response header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `x-statesman-watermark` header (delta and pool reads).
    pub fn watermark(&self) -> Option<u64> {
        self.header(crate::server::WATERMARK_HEADER)?.parse().ok()
    }

    /// The `x-statesman-cursor` header (receipt pagination).
    pub fn cursor(&self) -> Option<u64> {
        self.header(crate::server::CURSOR_HEADER)?.parse().ok()
    }

    /// The `retry-after` header in seconds (429 sheds and every
    /// retryable error).
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after")?.parse().ok()
    }

    /// The `x-statesman-server` version header (every response).
    pub fn server_version(&self) -> Option<&str> {
        self.header(crate::server::SERVER_HEADER)
    }

    /// Whether the server will close the connection after this response.
    pub fn connection_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Read one response including its headers from a buffered stream
/// (client side). Header names are lowercased; values are trimmed. The
/// reader persists across calls so keep-alive connections can pull many
/// responses without losing buffered bytes.
pub fn read_response_buffered(reader: &mut BufReader<TcpStream>) -> StateResult<RawResponse> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let _version = parts.next();
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| StateError::protocol("bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        let n = reader.read_line(&mut h)?;
        if n == 0 {
            break;
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().unwrap_or(0);
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length.min(MAX_BODY)];
    if !body.is_empty() {
        reader.read_exact(&mut body)?;
    }
    Ok(RawResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(buf: &[u8]) -> Result<Option<(HttpRequest, usize)>, RequestError> {
        let limits = HttpLimits::default();
        match parse_head(buf, &limits)? {
            None => Ok(None),
            Some(head) => {
                if buf.len() < head.total_len() {
                    return Ok(None);
                }
                let total = head.total_len();
                let mut req = head.request;
                req.body = buf[head.head_len..total].to_vec();
                Ok(Some((req, total)))
            }
        }
    }

    #[test]
    fn component_round_trip() {
        let cases = [
            "dc1/link/agg-1-1~tor-1-1",
            "PS:inter-dc-te",
            "plain",
            "spaces and %signs",
            "unicode-∅",
        ];
        for c in cases {
            let enc = encode_component(c);
            assert!(!enc.contains('/') || c == "plain", "{enc}");
            assert_eq!(decode_component(&enc).unwrap(), c, "{c}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_component("%zz").is_err());
        assert!(decode_component("%2").is_err());
        assert_eq!(decode_component("a+b").unwrap(), "a b");
    }

    #[test]
    fn parse_query_splits_pairs() {
        let q = parse_query("Pool=OS&Datacenter=dc1&Entity=dc1%2Fdevice%2Fagg-1-1").unwrap();
        assert_eq!(q["Pool"], "OS");
        assert_eq!(q["Entity"], "dc1/device/agg-1-1");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn incremental_parse_waits_for_full_head_then_body() {
        let wire = b"POST /v1/write?Pool=OS HTTP/1.1\r\nhost: x\r\ncontent-length: 5\r\n\r\nhello";
        // Every strict prefix short of the full request parses to None.
        for cut in [10usize, 30, wire.len() - 6, wire.len() - 1] {
            assert!(
                parse_all(&wire[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let (req, consumed) = parse_all(wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/write");
        assert_eq!(req.param("Pool"), Some("OS"));
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let wire =
            b"GET /v1/health HTTP/1.1\r\n\r\nGET /v1/status HTTP/1.1\r\nconnection: close\r\n\r\n";
        let (first, consumed) = parse_all(wire).unwrap().unwrap();
        assert_eq!(first.path, "/v1/health");
        let (second, rest) = parse_all(&wire[consumed..]).unwrap().unwrap();
        assert_eq!(second.path, "/v1/status");
        assert!(second.wants_close());
        assert_eq!(consumed + rest, wire.len());
    }

    #[test]
    fn oversized_heads_and_bodies_are_distinct_errors() {
        let mut huge_head = b"GET /v1/health HTTP/1.1\r\nx-pad: ".to_vec();
        huge_head.extend(std::iter::repeat_n(b'a', 17 << 10));
        assert_eq!(
            parse_all(&huge_head).unwrap_err(),
            RequestError::HeadersTooLarge
        );

        let huge_body = format!(
            "POST /v1/write HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            65 << 20
        );
        assert_eq!(
            parse_all(huge_body.as_bytes()).unwrap_err(),
            RequestError::BodyTooLarge
        );
    }

    #[test]
    fn malformed_requests_are_malformed() {
        assert!(matches!(
            parse_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap_err(),
            RequestError::Malformed(_)
        ));
        assert!(matches!(
            parse_all(b"GET /x SPDY/9\r\n\r\n").unwrap_err(),
            RequestError::Malformed(_)
        ));
    }

    #[test]
    fn response_serializes() {
        let r = HttpResponse::ok_json(br#"{"x":1}"#.to_vec());
        let mut buf = Vec::new();
        r.write_to(&mut buf, false).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("content-length: 7"), "{s}");
        assert!(s.contains("connection: close"), "{s}");
        assert!(s.ends_with(r#"{"x":1}"#), "{s}");

        let mut buf = Vec::new();
        r.write_to(&mut buf, true).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("connection: keep-alive"), "{s}");
    }

    #[test]
    fn request_param_helpers() {
        let mut query = BTreeMap::new();
        query.insert("Pool".to_string(), "TS".to_string());
        let req = HttpRequest {
            method: "GET".into(),
            path: "/v1/read".into(),
            query,
            headers: vec![("x-statesman-app".into(), "te-app".into())],
            body: vec![],
        };
        assert_eq!(req.param("Pool"), Some("TS"));
        assert!(req.require("Pool").is_ok());
        assert!(req.require("Freshness").is_err());
        assert_eq!(req.app_label(), "te-app");
    }

    #[test]
    fn raw_response_header_accessors() {
        let r = RawResponse {
            status: 429,
            headers: vec![
                ("retry-after".into(), "2".into()),
                ("x-statesman-server".into(), "statesman/0.1.0".into()),
                ("x-statesman-watermark".into(), "41".into()),
                ("connection".into(), "close".into()),
            ],
            body: Vec::new(),
        };
        assert_eq!(r.retry_after(), Some(2));
        assert_eq!(r.server_version(), Some("statesman/0.1.0"));
        assert_eq!(r.watermark(), Some(41));
        assert_eq!(r.cursor(), None);
        assert!(r.connection_close());
    }
}
