//! A deliberately small HTTP/1.1 codec: request-line + headers +
//! `Content-Length` bodies. Enough for the Table-3 API; nothing more.
//!
//! Query values are percent-encoded because entity wire names contain
//! `/` and `~` (e.g. `dc1/link/agg-1-1~tor-1-1`).

use bytes::{BufMut, BytesMut};
use statesman_types::{StateError, StateResult};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRequest {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string, e.g. `/NetworkState/Read`.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A query parameter, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(|s| s.as_str())
    }

    /// A required query parameter, or a protocol error naming it.
    pub fn require(&self, key: &str) -> StateResult<&str> {
        self.param(key)
            .ok_or_else(|| StateError::protocol(format!("missing query parameter {key}")))
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Body bytes (JSON for API responses).
    pub body: Vec<u8>,
    /// Content type.
    pub content_type: &'static str,
    /// Extra response headers (name, value) beyond the standard set.
    pub headers: Vec<(String, String)>,
}

impl HttpResponse {
    fn new(status: u16, reason: &'static str, body: Vec<u8>, content_type: &'static str) -> Self {
        HttpResponse {
            status,
            reason,
            body,
            content_type,
            headers: Vec::new(),
        }
    }

    /// 200 with a JSON body.
    pub fn ok_json(body: impl Into<Vec<u8>>) -> Self {
        HttpResponse::new(200, "OK", body.into(), "application/json")
    }

    /// 200 with a plain-text body (the Prometheus-style metrics export).
    pub fn ok_text(body: impl Into<Vec<u8>>) -> Self {
        HttpResponse::new(200, "OK", body.into(), "text/plain")
    }

    /// 204 (accepted writes).
    pub fn no_content() -> Self {
        HttpResponse::new(204, "No Content", Vec::new(), "text/plain")
    }

    /// 400 with a plain-text reason.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        HttpResponse::new(400, "Bad Request", msg.into().into_bytes(), "text/plain")
    }

    /// 408 (the connection idled past the server's socket read timeout
    /// before a full request arrived).
    pub fn request_timeout(msg: impl Into<String>) -> Self {
        HttpResponse::new(
            408,
            "Request Timeout",
            msg.into().into_bytes(),
            "text/plain",
        )
    }

    /// 404.
    pub fn not_found() -> Self {
        HttpResponse::new(404, "Not Found", b"no such endpoint".to_vec(), "text/plain")
    }

    /// 405: the path exists but not under this verb. `allow` lists the
    /// verbs that do work, per RFC 9110 §15.5.6.
    pub fn method_not_allowed(allow: &str) -> Self {
        HttpResponse::new(
            405,
            "Method Not Allowed",
            b"method not allowed on this path".to_vec(),
            "text/plain",
        )
        .with_header("allow", allow)
    }

    /// 503 (storage unavailable).
    pub fn unavailable(msg: impl Into<String>) -> Self {
        HttpResponse::new(
            503,
            "Service Unavailable",
            msg.into().into_bytes(),
            "text/plain",
        )
    }

    /// Attach an extra response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize onto the wire.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let mut buf = BytesMut::with_capacity(128 + self.body.len());
        buf.put_slice(
            format!(
                "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
                self.status,
                self.reason,
                self.content_type,
                self.body.len()
            )
            .as_bytes(),
        );
        for (name, value) in &self.headers {
            buf.put_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        buf.put_slice(b"\r\n");
        buf.put_slice(&self.body);
        stream.write_all(&buf)
    }
}

/// Percent-encode a query value (RFC 3986 unreserved set passes through).
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'*' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-decode a query value.
pub fn decode_component(s: &str) -> StateResult<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if i + 2 > bytes.len() {
                    return Err(StateError::protocol("truncated percent escape"));
                }
                let hex = s
                    .get(i + 1..i + 3)
                    .ok_or_else(|| StateError::protocol("truncated percent escape"))?;
                let v = u8::from_str_radix(hex, 16)
                    .map_err(|_| StateError::protocol(format!("bad percent escape %{hex}")))?;
                out.push(v);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| StateError::protocol("query is not UTF-8"))
}

/// Parse the query string into decoded key/value pairs.
fn parse_query(q: &str) -> StateResult<BTreeMap<String, String>> {
    let mut map = BTreeMap::new();
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        map.insert(decode_component(k)?, decode_component(v)?);
    }
    Ok(map)
}

/// Maximum accepted body size (a monitor round for a large DC is a few MB
/// of JSON; anything beyond 64 MB is a protocol error, not a workload).
const MAX_BODY: usize = 64 << 20;

/// Read one request from a connection.
pub fn read_request(stream: &mut TcpStream) -> StateResult<HttpRequest> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| StateError::protocol("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| StateError::protocol("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| StateError::protocol("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(StateError::protocol(format!(
            "unsupported version {version}"
        )));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)?),
        None => (target.to_string(), BTreeMap::new()),
    };

    // Headers: we only care about content-length.
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        let n = reader.read_line(&mut h)?;
        if n == 0 {
            return Err(StateError::protocol("connection closed mid-headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| StateError::protocol("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(StateError::protocol("body too large"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok(HttpRequest {
        method,
        path,
        query,
        body,
    })
}

/// Read one response from a connection (client side). Returns (status,
/// body).
pub fn read_response(stream: &mut TcpStream) -> StateResult<(u16, Vec<u8>)> {
    let (status, _headers, body) = read_response_full(stream)?;
    Ok((status, body))
}

/// A raw HTTP response: status code, lowercased (name, value) header
/// pairs, and the body bytes.
pub type RawResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Read one response including its headers (client side). Header names
/// are lowercased; values are trimmed. Returns (status, headers, body).
pub fn read_response_full(stream: &mut TcpStream) -> StateResult<RawResponse> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let _version = parts.next();
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| StateError::protocol("bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        let n = reader.read_line(&mut h)?;
        if n == 0 {
            break;
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().unwrap_or(0);
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length.min(MAX_BODY)];
    if !body.is_empty() {
        reader.read_exact(&mut body)?;
    }
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_round_trip() {
        let cases = [
            "dc1/link/agg-1-1~tor-1-1",
            "PS:inter-dc-te",
            "plain",
            "spaces and %signs",
            "unicode-∅",
        ];
        for c in cases {
            let enc = encode_component(c);
            assert!(!enc.contains('/') || c == "plain", "{enc}");
            assert_eq!(decode_component(&enc).unwrap(), c, "{c}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_component("%zz").is_err());
        assert!(decode_component("%2").is_err());
        assert_eq!(decode_component("a+b").unwrap(), "a b");
    }

    #[test]
    fn parse_query_splits_pairs() {
        let q = parse_query("Pool=OS&Datacenter=dc1&Entity=dc1%2Fdevice%2Fagg-1-1").unwrap();
        assert_eq!(q["Pool"], "OS");
        assert_eq!(q["Entity"], "dc1/device/agg-1-1");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn response_serializes() {
        let r = HttpResponse::ok_json(br#"{"x":1}"#.to_vec());
        let mut buf = Vec::new();
        r.write_to(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("content-length: 7"), "{s}");
        assert!(s.ends_with(r#"{"x":1}"#), "{s}");
    }

    #[test]
    fn request_param_helpers() {
        let mut query = BTreeMap::new();
        query.insert("Pool".to_string(), "TS".to_string());
        let req = HttpRequest {
            method: "GET".into(),
            path: "/NetworkState/Read".into(),
            query,
            body: vec![],
        };
        assert_eq!(req.param("Pool"), Some("TS"));
        assert!(req.require("Pool").is_ok());
        assert!(req.require("Freshness").is_err());
    }
}
