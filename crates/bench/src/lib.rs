//! # statesman-bench
//!
//! Scenario drivers and measurement harnesses that regenerate every table
//! and figure of the paper's evaluation (see `DESIGN.md` for the full
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured records):
//!
//! * [`fig8`] — the §7.2 capacity-invariant scenario (Fig 7 topology,
//!   Fig 8 time series): switch-upgrade and failure-mitigation coexisting
//!   under the 99%/50% ToR-pair capacity invariant;
//! * [`fig10`] — the §7.3 conflict-resolution scenario (Fig 9 WAN, Fig 10
//!   time series): inter-DC TE and switch-upgrade coordinating through
//!   priority locks;
//! * [`motivation`] — Fig 1 / Fig 2 recreated: what happens *without*
//!   Statesman (traffic loss, partition) vs with it;
//! * [`scale`] — §8 checker-latency scaling up to the paper's 394K
//!   state variables, and the ten-DC deployment inventory;
//! * [`latency`] — the end-to-end loop breakdown (application vs checker
//!   vs updater share).
//!
//! Every scenario is deterministic given its seed; binaries under
//! `src/bin/` print the series the paper plots, and criterion benches
//! under `benches/` measure the quantitative claims.

pub mod fig10;
pub mod fig8;
pub mod latency;
pub mod motivation;
pub mod report;
pub mod scale;

pub use fig10::{Fig10Config, Fig10Result, Fig10Scenario};
pub use fig8::{Fig8Config, Fig8Result, Fig8Scenario};
pub use latency::{measure_loop_breakdown, LoopBreakdown};
pub use motivation::{run_fig1, run_fig2, MotivationOutcome};
pub use scale::{checker_pass_at_scale, deployment_inventory, ScalePoint};
