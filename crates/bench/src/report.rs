//! Plain-text table and series rendering for the figure regenerators.
//!
//! The binaries print the same rows/series the paper plots; these helpers
//! keep the output aligned and machine-greppable (CSV lines are prefixed
//! with `csv,` so `grep ^csv` extracts the raw data).

use std::fmt::Write as _;

/// Render an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{c:<w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Render a capacity-fraction matrix as a character raster: one row per
/// pair, one column per sample; `█` = 100%, `▓` = 75%, `▒` = 50%, `░` <50%.
pub fn capacity_raster(fractions_per_tick: &[Vec<f64>]) -> Vec<String> {
    if fractions_per_tick.is_empty() {
        return Vec::new();
    }
    let pairs = fractions_per_tick[0].len();
    (0..pairs)
        .map(|p| {
            fractions_per_tick
                .iter()
                .map(|tick| {
                    let f = tick.get(p).copied().unwrap_or(1.0);
                    if f >= 0.999 {
                        '█'
                    } else if f >= 0.74 {
                        '▓'
                    } else if f >= 0.49 {
                        '▒'
                    } else {
                        '░'
                    }
                })
                .collect()
        })
        .collect()
}

/// Render a load series as a character raster: `·` empty, `▁▄█` for
/// low/medium/high utilization (the Fig-10 legend).
pub fn load_raster(loads_per_tick: &[Vec<f64>], capacity: f64) -> Vec<String> {
    if loads_per_tick.is_empty() {
        return Vec::new();
    }
    let links = loads_per_tick[0].len();
    (0..links)
        .map(|l| {
            loads_per_tick
                .iter()
                .map(|tick| {
                    let u = tick.get(l).copied().unwrap_or(0.0) / capacity;
                    if u <= 0.001 {
                        '·'
                    } else if u <= 0.4 {
                        '▁'
                    } else if u <= 0.8 {
                        '▄'
                    } else {
                        '█'
                    }
                })
                .collect()
        })
        .collect()
}

/// CSV line with the `csv,` prefix.
pub fn csv_line(fields: &[String]) -> String {
    format!("csv,{}", fields.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["dc", "vars"],
            &[
                vec!["dc1".into(), "394000".into()],
                vec!["dc10".into(), "50000".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("dc "), "{t}");
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("50000"));
    }

    #[test]
    fn raster_levels() {
        let r = capacity_raster(&[vec![1.0, 0.75, 0.5, 0.25]]);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], "█");
        assert_eq!(r[1], "▓");
        assert_eq!(r[2], "▒");
        assert_eq!(r[3], "░");
    }

    #[test]
    fn load_levels() {
        let r = load_raster(&[vec![0.0, 100.0, 500.0, 950.0]], 1_000.0);
        assert_eq!(r[0], "·");
        assert_eq!(r[1], "▁");
        assert_eq!(r[2], "▄");
        assert_eq!(r[3], "█");
    }

    #[test]
    fn csv_prefix() {
        assert_eq!(csv_line(&["a".into(), "b".into()]), "csv,a,b");
    }
}
