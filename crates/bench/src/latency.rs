//! §8 end-to-end latency breakdown: application vs checker vs updater.
//!
//! The paper's summary (lecture slides): application latency is
//! negligible (<10 ms), the checker takes seconds, and the updater
//! dominates with more than 50% of the control loop — device
//! interactions, not computation, are the bottleneck.

use statesman_apps::{
    upgrade::agg_pods_of, ManagementApp, SwitchUpgradeApp, UpgradeConfig, UpgradePlan,
};
use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_obs::Obs;
use statesman_storage::{StorageConfig, StorageService};
use statesman_topology::DcnSpec;
use statesman_types::{DatacenterId, SimDuration};
use std::time::Instant;

/// One loop's latency split, milliseconds.
#[derive(Debug, Clone)]
pub struct LoopBreakdown {
    /// Application compute (wall clock of the app's step).
    pub app_ms: f64,
    /// Monitor stage (modeled device polling time).
    pub monitor_ms: f64,
    /// Checker stage (measured compute).
    pub checker_ms: f64,
    /// Updater stage (modeled device command time).
    pub updater_ms: f64,
}

impl LoopBreakdown {
    /// Total loop latency.
    pub fn total_ms(&self) -> f64 {
        self.app_ms + self.monitor_ms + self.checker_ms + self.updater_ms
    }

    /// The updater's share of the loop.
    pub fn updater_share(&self) -> f64 {
        if self.total_ms() <= 0.0 {
            0.0
        } else {
            self.updater_ms / self.total_ms()
        }
    }

    /// The application's share of the loop.
    pub fn app_share(&self) -> f64 {
        if self.total_ms() <= 0.0 {
            0.0
        } else {
            self.app_ms / self.total_ms()
        }
    }
}

/// Measure one working control loop on the Fig-7 fabric with realistic
/// device latencies: the upgrade application proposes pod-1 upgrades, and
/// the round that merges + executes them is measured.
pub fn measure_loop_breakdown(seed: u64) -> LoopBreakdown {
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let graph = DcnSpec::fig7("dc1").build();
    let mut sim_cfg = SimConfig::ideal();
    sim_cfg.seed = seed;
    // Realistic management-plane latencies (§2.1: seconds per command).
    sim_cfg.faults.command_latency_ms = 2_000;
    sim_cfg.faults.command_jitter_ms = 500;
    sim_cfg.faults.reboot_window_ms = 8 * 60_000;
    let net = SimNetwork::new(&graph, clock.clone(), sim_cfg);
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
    let obs = Obs::new();
    let coord = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig {
            obs: Some(obs.clone()),
            ..CoordinatorConfig::default()
        },
    );

    // Round 0 seeds the OS.
    coord
        .tick_and_advance(SimDuration::from_mins(1))
        .expect("seed round");

    let mut app = SwitchUpgradeApp::new(
        StatesmanClient::new("switch-upgrade", storage, clock),
        UpgradeConfig {
            target_version: "7.0".into(),
            plan: UpgradePlan::PodByPod {
                datacenter: dc.clone(),
                pods: agg_pods_of(&graph, &dc),
            },
        },
    );

    let t = Instant::now();
    app.step().expect("app step");
    let app_ms = t.elapsed().as_secs_f64() * 1e3;

    let round = coord.tick().expect("measured round");

    // Read the split back through the observability subsystem — the
    // round trace is the wire-visible record of the same stages — and
    // hold it to the report's own accounting.
    let trace = obs.traces.last().expect("obs trace for measured round");
    let (monitor_ms, checker_ms, updater_ms) = trace.latency_breakdown_ms();
    assert_eq!(
        (monitor_ms, checker_ms, updater_ms),
        round.latency_breakdown_ms(),
        "round trace disagrees with the report's latency accounting"
    );
    LoopBreakdown {
        app_ms,
        monitor_ms,
        checker_ms,
        updater_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updater_dominates_and_app_is_negligible() {
        let b = measure_loop_breakdown(3);
        assert!(
            b.updater_share() > 0.5,
            "updater share {:.2} of {:?}",
            b.updater_share(),
            b
        );
        assert!(b.app_share() < 0.05, "app share {:.3}", b.app_share());
        assert!(b.updater_ms >= 2_000.0, "{:?}", b);
    }
}
