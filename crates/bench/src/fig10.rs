//! The §7.3 scenario: resolving application conflicts with priority locks
//! (Figures 9 and 10).
//!
//! Setup (from the paper):
//!
//! * topology: 4 DCs in a full mesh, 2 border routers per DC, 12 physical
//!   inter-DC links (Fig 9);
//! * inter-DC TE allocates the demand matrix across WAN paths, holding
//!   **low-priority** locks over the routers it uses;
//! * switch-upgrade upgrades BorderRouter1 behind a **high-priority**
//!   lock, waiting for its observed load to drain to zero;
//! * both applications run every 5 minutes.
//!
//! The scenario records the 24 directed link loads per tick (Fig 10's
//! Y-axis) plus the A–E event timeline:
//! A — upgrade acquires the high lock on BR1; B — TE fails its low lock
//! and drains BR1; C — upgrade starts at zero load; D — upgrade done,
//! lock released; E — TE re-acquires and moves traffic back.

use statesman_apps::{
    DrainTarget, InterDcTeApp, ManagementApp, SwitchUpgradeApp, TeConfig, TrafficDemand,
    UpgradeConfig, UpgradePlan,
};
use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService};
use statesman_topology::WanSpec;
use statesman_types::{DatacenterId, DeviceName, EntityName, LinkName, SimDuration, SimTime};

/// Scenario knobs.
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// RNG seed.
    pub seed: u64,
    /// Application/statesman round period.
    pub period: SimDuration,
    /// Reboot window for the border-router upgrade.
    pub reboot_window: SimDuration,
    /// How long to keep running after the upgrade completes (to observe
    /// traffic moving back — the figure's tail after E).
    pub cooldown: SimDuration,
    /// Safety stop.
    pub horizon: SimDuration,
    /// Per-DC-pair demand, Mbps (12 directed demands in a 4-DC mesh).
    pub demand_mbps: f64,
    /// When the switch-upgrade application starts (the figure shows
    /// steady-state traffic before A).
    pub upgrade_starts_at: SimTime,
    /// Which border routers to upgrade, in order (paper shows BR1).
    pub targets: Vec<&'static str>,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            seed: 0x000F_1610,
            period: SimDuration::from_mins(5),
            reboot_window: SimDuration::from_mins(8),
            cooldown: SimDuration::from_mins(20),
            horizon: SimDuration::from_mins(180),
            demand_mbps: 60_000.0,
            upgrade_starts_at: SimTime::from_mins(15),
            targets: vec!["br-1"],
        }
    }
}

/// One per-tick sample of all 24 directed link loads.
#[derive(Debug, Clone)]
pub struct Fig10Sample {
    /// When the sample was taken.
    pub at: SimTime,
    /// (link, sending endpoint, load Mbps), sorted by (link, sender).
    pub loads: Vec<(LinkName, DeviceName, f64)>,
}

impl Fig10Sample {
    /// Total load on links touching a device.
    pub fn device_load(&self, dev: &DeviceName) -> f64 {
        self.loads
            .iter()
            .filter(|(l, _, _)| l.touches(dev))
            .map(|(_, _, mbps)| *mbps)
            .sum()
    }

    /// Total load across all links.
    pub fn total_load(&self) -> f64 {
        self.loads.iter().map(|(_, _, m)| *m).sum()
    }
}

/// The scenario outcome.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Per-tick samples.
    pub samples: Vec<Fig10Sample>,
    /// The A–E event timeline.
    pub events: Vec<(SimTime, String)>,
    /// Firmware version of each target after the run.
    pub final_versions: Vec<(DeviceName, String)>,
}

impl Fig10Result {
    /// The event time whose label starts with `label`.
    pub fn event_time(&self, label: &str) -> Option<SimTime> {
        self.events
            .iter()
            .find(|(_, l)| l.starts_with(label))
            .map(|(t, _)| *t)
    }

    /// Load on a device at the sample closest to `at`.
    pub fn device_load_at(&self, dev: &DeviceName, at: SimTime) -> f64 {
        self.samples
            .iter()
            .min_by_key(|s| s.at.as_millis().abs_diff(at.as_millis()))
            .map(|s| s.device_load(dev))
            .unwrap_or(0.0)
    }
}

/// The assembled scenario.
pub struct Fig10Scenario {
    config: Fig10Config,
    net: SimNetwork,
    coordinator: Coordinator,
    te: InterDcTeApp,
    upgrade: SwitchUpgradeApp,
    upgrade_client: StatesmanClient,
    wan: WanSpec,
}

impl Fig10Scenario {
    /// Build the scenario.
    pub fn new(config: Fig10Config) -> Self {
        let clock = SimClock::new();
        let wan = WanSpec::fig9();
        let graph = wan.build();

        let mut sim_cfg = SimConfig::ideal();
        sim_cfg.seed = config.seed;
        sim_cfg.faults.command_latency_ms = 2_000;
        sim_cfg.faults.command_jitter_ms = 500;
        sim_cfg.faults.reboot_window_ms = config.reboot_window.as_millis();
        let net = SimNetwork::new(&graph, clock.clone(), sim_cfg);

        let storage = StorageService::new(
            wan.dc_names.iter().map(DatacenterId::new),
            clock.clone(),
            StorageConfig::default(),
        );
        let coordinator = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig::default(),
        );

        // Full-mesh directed demands.
        let mut demands = Vec::new();
        for s in &wan.dc_names {
            for d in &wan.dc_names {
                if s != d {
                    demands.push(TrafficDemand::new(s.clone(), d.clone(), config.demand_mbps));
                }
            }
        }
        let te = InterDcTeApp::new(
            StatesmanClient::new("inter-dc-te", storage.clone(), clock.clone()),
            TeConfig::from_wan_spec(&wan, demands),
        );

        // Upgrade targets with their link entities for drain polling.
        let targets: Vec<DrainTarget> = config
            .targets
            .iter()
            .map(|name| {
                let dev = DeviceName::new(*name);
                let links: Vec<EntityName> = graph
                    .links_of_device(&dev)
                    .into_iter()
                    .map(|l| EntityName::link_named(DatacenterId::wan(), l))
                    .collect();
                let dc = graph
                    .node_id(&dev)
                    .map(|id| graph.node(id).datacenter.clone())
                    .expect("target exists");
                DrainTarget {
                    datacenter: dc,
                    device: dev,
                    links,
                }
            })
            .collect();
        let upgrade_client = StatesmanClient::new("switch-upgrade", storage, clock);
        let upgrade = SwitchUpgradeApp::new(
            upgrade_client.clone(),
            UpgradeConfig {
                target_version: "9.4.2".to_string(),
                plan: UpgradePlan::LockAndDrain {
                    devices: targets,
                    drain_epsilon_mbps: 1.0,
                },
            },
        );

        Fig10Scenario {
            config,
            net,
            coordinator,
            te,
            upgrade,
            upgrade_client,
            wan,
        }
    }

    fn sample(&self) -> Fig10Sample {
        let mut loads = Vec::new();
        for link in self.net.link_names() {
            let l = self.net.link_snapshot(&link).expect("link exists");
            loads.push((link.clone(), l.name.a.clone(), l.load_ab_mbps));
            loads.push((link.clone(), l.name.b.clone(), l.load_ba_mbps));
        }
        loads.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        Fig10Sample {
            at: self.net.clock().now(),
            loads,
        }
    }

    /// Run to completion (+cooldown). Returns the recorded series.
    pub fn run(mut self) -> Fig10Result {
        let mut samples = Vec::new();
        let mut events: Vec<(SimTime, String)> = Vec::new();
        let mut lock_seen = false;
        let mut drain_seen = false;
        let mut upgrade_started = false;
        let mut released_at: Option<SimTime> = None;
        let mut traffic_back_seen = false;
        let end = SimTime::ZERO + self.config.horizon;

        let br1 = DeviceName::new(self.config.targets[0]);
        let br1_entity = {
            // Home DC of the first target.
            let idx: usize = 0;
            EntityName::device(
                DatacenterId::new(self.wan.dc_names[idx].clone()),
                br1.clone(),
            )
        };

        loop {
            let now = self.net.clock().now();
            if now >= end {
                break;
            }
            // App steps → statesman round → offer flows → advance.
            self.te.step().expect("te step");
            if now >= self.config.upgrade_starts_at {
                self.upgrade.step().expect("upgrade step");
            }
            self.coordinator
                .tick_and_advance(SimDuration::from_millis(1))
                .expect("statesman round");
            self.net.offer_flows(self.te.flow_specs());
            self.net
                .step(self.config.period + SimDuration::from_millis(0));

            // Event detection (ground truth).
            if !lock_seen && self.upgrade_client.holds_lock(&br1_entity).unwrap_or(false) {
                events.push((now, format!("A: high-priority lock acquired on {br1}")));
                lock_seen = true;
            }
            let s = self.sample();
            if lock_seen && !drain_seen && s.device_load(&br1) < 1.0 {
                events.push((s.at, format!("B→C: {br1} drained to zero load")));
                drain_seen = true;
            }
            if drain_seen && !upgrade_started && !self.net.device_operational(&br1) {
                events.push((s.at, format!("C: {br1} rebooting for upgrade")));
                upgrade_started = true;
            }
            if upgrade_started
                && released_at.is_none()
                && !self.upgrade_client.holds_lock(&br1_entity).unwrap_or(true)
                && self.net.device_operational(&br1)
            {
                released_at = Some(s.at);
                events.push((s.at, format!("D: upgrade done, lock released on {br1}")));
            }
            if released_at.is_some() && !traffic_back_seen && s.device_load(&br1) > 1.0 {
                events.push((s.at, format!("E: TE re-acquired {br1}; traffic back")));
                traffic_back_seen = true;
            }
            samples.push(s);

            if self.upgrade.is_done() && traffic_back_seen {
                // Cooldown ticks to show the restored steady state.
                let cooldown_end = self.net.clock().now() + self.config.cooldown;
                while self.net.clock().now() < cooldown_end {
                    self.te.step().expect("te step");
                    self.coordinator
                        .tick_and_advance(SimDuration::from_millis(1))
                        .expect("statesman round");
                    self.net.offer_flows(self.te.flow_specs());
                    self.net.step(self.config.period);
                    samples.push(self.sample());
                }
                break;
            }
        }

        let final_versions = self
            .config
            .targets
            .iter()
            .map(|t| {
                let dev = DeviceName::new(*t);
                let v = self
                    .net
                    .device_snapshot(&dev)
                    .map(|d| d.observed_firmware().to_string())
                    .unwrap_or_default();
                (dev, v)
            })
            .collect();

        Fig10Result {
            samples,
            events,
            final_versions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_dance_completes_with_zero_load_upgrade() {
        let result = Fig10Scenario::new(Fig10Config::default()).run();
        let br1 = DeviceName::new("br-1");

        // The full A–E sequence occurred, in order.
        let a = result.event_time("A:").expect("A happened");
        let bc = result.event_time("B→C:").expect("drain happened");
        let c = result.event_time("C:").expect("reboot happened");
        let d = result.event_time("D:").expect("release happened");
        let e = result.event_time("E:").expect("traffic returned");
        assert!(
            a <= bc && bc <= c && c <= d && d <= e,
            "{:?}",
            result.events
        );

        // BR1 carried no traffic while rebooting.
        for s in &result.samples {
            if s.at >= c && s.at < d {
                assert!(
                    s.device_load(&br1) < 1.0,
                    "br-1 loaded while upgrading at {}",
                    s.at
                );
            }
        }

        // The upgrade landed.
        assert_eq!(result.final_versions[0].1, "9.4.2");

        // Traffic is flowing again at the end.
        let last = result.samples.last().unwrap();
        assert!(last.device_load(&br1) > 1.0, "traffic returned to br-1");
    }
}
