//! §8 scale reproduction: checker latency vs state-variable count, and
//! the ten-datacenter deployment inventory.
//!
//! The paper's headline overhead claim: "the latency for conflict
//! resolution and invariant checking is under 10 seconds even in the
//! largest DCN with 394K state variables", across a deployment managing
//! "over 1.5 million state variables".

use statesman_core::groups::ImpactGroup;
use statesman_core::{
    Checker, CheckerConfig, ConnectivityInvariant, MergePolicy, Monitor, StatesmanClient,
    TorPairCapacityInvariant,
};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{ClusterConfig, StorageConfig, StorageService};
use statesman_topology::DcnSpec;
use statesman_types::{Attribute, DatacenterId, EntityName, Value};
use std::time::Duration;

/// One scale measurement.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// State variables the checker read in the pass.
    pub variables: usize,
    /// Devices in the fabric.
    pub devices: usize,
    /// Links in the fabric.
    pub links: usize,
    /// Wall-clock time of one full checker pass (with live proposals).
    pub checker_elapsed: Duration,
    /// Wall-clock time of the monitor collection round that seeded the OS.
    pub monitor_elapsed: Duration,
    /// Proposals processed in the measured pass.
    pub proposals: usize,
}

/// Build a DC sized for roughly `target_vars` variables, seed its OS with
/// a real monitor round, then run one checker pass carrying live upgrade
/// proposals and measure it.
pub fn checker_pass_at_scale(target_vars: usize, seed: u64) -> ScalePoint {
    let clock = SimClock::new();
    let spec = DcnSpec::sized_for_variables("dcX", target_vars);
    let graph = spec.build();
    let dc = DatacenterId::new("dcX");

    let mut sim_cfg = SimConfig::ideal();
    sim_cfg.seed = seed;
    let net = SimNetwork::new(&graph, clock.clone(), sim_cfg);

    // One replica per ring keeps the harness lean; consensus costs are
    // measured separately (storage benches).
    let storage = StorageService::new(
        [dc.clone()],
        clock.clone(),
        StorageConfig {
            replicas_per_ring: 1,
            ring: ClusterConfig {
                replicas: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    let monitor = Monitor::new(net, storage.clone(), graph.clone());
    let mreport = monitor.run_round().expect("monitor round");

    let mut checker = Checker::new(
        CheckerConfig {
            group: ImpactGroup::Datacenter(dc.clone()),
            policy: MergePolicy::PriorityLock,
        },
        graph.clone(),
    );
    checker.add_invariant(Box::new(ConnectivityInvariant::new(dc.clone())));
    // Cap the evaluated pair panel: production-scale fabrics would
    // otherwise demand 100K+ max-flows per pass (see
    // `TorPairCapacityInvariant::sampled`).
    checker.add_invariant(Box::new(TorPairCapacityInvariant::sampled(
        &graph,
        dc.clone(),
        0.5,
        0.99,
        Some(1),
        256,
        seed,
    )));

    // Live proposals: upgrade the first two Aggs of every pod (the §7.2
    // workload shape) so the pass exercises validation, conflict checks
    // and invariant evaluation, not just reads.
    let client = StatesmanClient::new("switch-upgrade", storage.clone(), clock.clone());
    let mut proposals = Vec::new();
    for pod in graph.pods_in(&dc) {
        for a in 1..=2u32 {
            proposals.push((
                EntityName::device(dc.clone(), format!("agg-{pod}-{a}")),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            ));
        }
    }
    let n_proposals = proposals.len();
    client.propose(proposals).expect("propose");

    let report = checker
        .run_pass(&storage, clock.now())
        .expect("checker pass");
    ScalePoint {
        variables: report.variables_read,
        devices: graph.node_count(),
        links: graph.edge_count(),
        checker_elapsed: report.elapsed,
        monitor_elapsed: mreport.elapsed,
        proposals: n_proposals,
    }
}

/// The ten-datacenter inventory: per-DC device/link/variable counts sized
/// so the fleet total matches the paper's "over 1.5 million state
/// variables", with the largest DC at ~394K.
pub fn deployment_inventory() -> Vec<(String, DcnSpec, usize)> {
    // Mixed fleet: one flagship DC at the paper's 394K, a mid tier, and
    // smaller edge DCs, totalling ≥ 1.5M.
    let sizes = [
        394_000, 250_000, 200_000, 160_000, 130_000, 110_000, 90_000, 80_000, 60_000, 50_000,
    ];
    sizes
        .iter()
        .enumerate()
        .map(|(i, &target)| {
            let name = format!("dc{}", i + 1);
            let spec = DcnSpec::sized_for_variables(name.clone(), target);
            let vars = spec.estimated_variables();
            (name, spec, vars)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_point_is_fast_and_counts_match() {
        let p = checker_pass_at_scale(10_000, 1);
        assert!(p.variables >= 10_000, "read {} variables", p.variables);
        assert!(p.proposals > 0);
        // Far under the paper's 10 s bound at this size.
        assert!(p.checker_elapsed < Duration::from_secs(10));
    }

    #[test]
    fn inventory_totals_exceed_paper_fleet() {
        let inv = deployment_inventory();
        assert_eq!(inv.len(), 10);
        let total: usize = inv.iter().map(|(_, _, v)| v).sum();
        assert!(total >= 1_500_000, "total {total}");
        assert!(inv[0].2 >= 394_000);
    }
}
