//! The §7.2 scenario: maintaining the capacity invariant while
//! switch-upgrade and failure-mitigation coexist (Figures 7 and 8).
//!
//! Setup (from the paper):
//!
//! * topology: one DC with 10 pods × 4 Aggs (Fig 7);
//! * invariant: 99% of directional ToR pairs (one sampled ToR per pod →
//!   90 pairs) keep ≥ 50% of baseline capacity;
//! * switch-upgrade rolls new firmware across all 40 Aggs pod-by-pod,
//!   greedily parallel within a pod;
//! * failure-mitigation watches FCS error rates; a persistent fault is
//!   injected on link ToR1–Agg1 of pod 4 partway through (the paper's
//!   time D), and mitigation shuts that link;
//! * both applications run every 5 simulated minutes.
//!
//! The scenario records, per tick, every sampled ToR pair's capacity as a
//! fraction of baseline — exactly Fig 8's plot — plus an event timeline
//! (pod starts, fault, shutdown, slowdown) matching the figure's A–F
//! annotations.

use statesman_apps::{
    upgrade::agg_pods_of, FailureMitigationApp, ManagementApp, MitigationConfig, SwitchUpgradeApp,
    UpgradeConfig, UpgradePlan,
};
use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService};
use statesman_topology::{capacity, DcnSpec, HealthView, NetworkGraph, NodeId};
use statesman_types::{DatacenterId, SimDuration, SimTime};

/// Scenario knobs.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// RNG seed.
    pub seed: u64,
    /// Application/statesman round period (paper: 5 minutes).
    pub period: SimDuration,
    /// When the FCS fault on pod 4's ToR1–Agg1 link fires (paper's D).
    pub fault_at: SimTime,
    /// Firmware reboot window.
    pub reboot_window: SimDuration,
    /// Stop after this much simulated time even if the rollout is
    /// unfinished (safety stop; the paper's x-axis spans ~420 min).
    pub horizon: SimDuration,
    /// Target firmware version.
    pub target_version: String,
    /// Enforce the network-wide invariants (true = the paper's system;
    /// false = ablation — the checker merges everything, quantifying what
    /// the guardian is worth).
    pub enforce_invariants: bool,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            seed: 0x000F_1608,
            period: SimDuration::from_mins(5),
            fault_at: SimTime::from_mins(55),
            reboot_window: SimDuration::from_mins(8),
            horizon: SimDuration::from_mins(600),
            target_version: "7.0.1".to_string(),
            enforce_invariants: true,
        }
    }
}

/// One per-tick sample: the capacity fraction of every sampled ToR pair.
#[derive(Debug, Clone)]
pub struct Fig8Sample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Fraction of baseline capacity per pair (index = Fig 8's Y order:
    /// pairs grouped by originating pod).
    pub fractions: Vec<f64>,
    /// Which pod the upgrade application is working on, if any.
    pub upgrading_pod: Option<u32>,
}

/// The scenario outcome.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Per-tick samples.
    pub samples: Vec<Fig8Sample>,
    /// Annotated events (time, label) — the figure's A–F.
    pub events: Vec<(SimTime, String)>,
    /// Ticks until the rollout finished (None if horizon hit).
    pub finished_at: Option<SimTime>,
    /// The sampled ToR pairs, as (src pod, dst pod).
    pub pair_pods: Vec<(u32, u32)>,
    /// Total proposals accepted / rejected over the run.
    pub accepted: usize,
    /// Total rejected.
    pub rejected: usize,
}

impl Fig8Result {
    /// The minimum capacity fraction ever observed across all pairs and
    /// ticks — the invariant holds iff this is ≥ 0.5 (within float slack).
    pub fn min_fraction(&self) -> f64 {
        self.samples
            .iter()
            .flat_map(|s| s.fractions.iter().copied())
            .fold(1.0, f64::min)
    }

    /// Fraction values observed for pairs touching `pod` at `at`.
    pub fn pod_fractions_at(&self, pod: u32, at: SimTime) -> Vec<f64> {
        self.samples
            .iter()
            .filter(|s| s.at == at)
            .flat_map(|s| {
                s.fractions
                    .iter()
                    .zip(&self.pair_pods)
                    .filter(|(_, (sp, dp))| *sp == pod || *dp == pod)
                    .map(|(f, _)| *f)
            })
            .collect()
    }

    /// The event time labelled `label`, if present.
    pub fn event_time(&self, label: &str) -> Option<SimTime> {
        self.events
            .iter()
            .find(|(_, l)| l.starts_with(label))
            .map(|(t, _)| *t)
    }
}

/// The assembled scenario.
pub struct Fig8Scenario {
    config: Fig8Config,
    graph: NetworkGraph,
    net: SimNetwork,
    coordinator: Coordinator,
    upgrade: SwitchUpgradeApp,
    mitigation: FailureMitigationApp,
    pairs: Vec<(NodeId, NodeId)>,
    baselines: Vec<f64>,
}

impl Fig8Scenario {
    /// Build the scenario.
    pub fn new(config: Fig8Config) -> Self {
        let clock = SimClock::new();
        let dc = DatacenterId::new("dc1");
        let graph = DcnSpec::fig7("dc1").build();

        let mut sim_cfg = SimConfig::ideal();
        sim_cfg.seed = config.seed;
        sim_cfg.faults.command_latency_ms = 2_000;
        sim_cfg.faults.command_jitter_ms = 500;
        sim_cfg.faults.reboot_window_ms = config.reboot_window.as_millis();
        sim_cfg.faults = sim_cfg.faults.with_fig8_fcs_fault(config.fault_at);
        let net = SimNetwork::new(&graph, clock.clone(), sim_cfg);

        let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
        let coordinator = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            if config.enforce_invariants {
                CoordinatorConfig::default()
            } else {
                CoordinatorConfig {
                    connectivity_invariant: false,
                    capacity_invariant: None,
                    wan_invariant: None,
                    ..Default::default()
                }
            },
        );

        let upgrade = SwitchUpgradeApp::new(
            StatesmanClient::new("switch-upgrade", storage.clone(), clock.clone()),
            UpgradeConfig {
                target_version: config.target_version.clone(),
                plan: UpgradePlan::PodByPod {
                    datacenter: dc.clone(),
                    pods: agg_pods_of(&graph, &dc),
                },
            },
        );
        let mitigation = FailureMitigationApp::new(
            StatesmanClient::new("failure-mitigation", storage, clock),
            MitigationConfig {
                datacenters: vec![dc.clone()],
                fcs_threshold: 0.01,
                persistence: 2,
            },
        );

        let pairs = capacity::select_tor_pairs(&graph, &dc, Some(1));
        let baselines = capacity::baselines_for(&graph, &pairs);
        Fig8Scenario {
            config,
            graph,
            net,
            coordinator,
            upgrade,
            mitigation,
            pairs,
            baselines,
        }
    }

    /// Ground-truth health straight from the simulator (what the network
    /// *actually* looks like — the figure plots reality, not the OS).
    fn ground_truth_health(&self) -> HealthView {
        let mut h = HealthView::all_up();
        for d in self.net.device_names() {
            if !self.net.device_operational(&d) {
                h.set_device_down(d);
            }
        }
        for l in self.net.link_names() {
            if !self.net.link_oper_up(&l) {
                h.set_link_down(l);
            }
        }
        h
    }

    /// Run to completion (or horizon). Returns the recorded series.
    pub fn run(mut self) -> Fig8Result {
        let mut samples = Vec::new();
        let mut events: Vec<(SimTime, String)> = Vec::new();
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        let mut finished_at = None;
        let mut fault_logged = false;
        let mut shutdown_logged = false;
        let mut last_pod: Option<u32> = None;

        let pair_pods: Vec<(u32, u32)> = self
            .pairs
            .iter()
            .map(|(s, d)| {
                (
                    self.graph.node(*s).pod.unwrap_or(0),
                    self.graph.node(*d).pod.unwrap_or(0),
                )
            })
            .collect();

        let end = SimTime::ZERO + self.config.horizon;
        loop {
            let now = self.net.clock().now();
            if now >= end {
                break;
            }

            // Applications step first (read OS from the previous round),
            // then Statesman runs its round, then time advances.
            let up_report = self.upgrade.step().expect("upgrade step");
            let mit_report = self.mitigation.step().expect("mitigation step");
            let round = self
                .coordinator
                .tick_and_advance(self.config.period)
                .expect("statesman round");
            accepted += round.accepted();
            rejected += round.rejected();

            // Event annotations.
            let pod = match self.upgrade.status() {
                statesman_apps::UpgradeStatus::InProgress { position } => position
                    .strip_prefix("pod ")
                    .and_then(|p| p.parse::<u32>().ok()),
                statesman_apps::UpgradeStatus::Done => None,
            };
            if pod != last_pod {
                if let Some(p) = pod {
                    let label = match p {
                        1 => "A: upgrading pod 1".to_string(),
                        2 => "B: upgrading pod 2".to_string(),
                        3 => "C: upgrading pod 3".to_string(),
                        4 => "E: upgrading pod 4 (slowed by down link)".to_string(),
                        5 => "F: upgrading pod 5 (normal speed resumes)".to_string(),
                        other => format!("upgrading pod {other}"),
                    };
                    events.push((now, label));
                }
                last_pod = pod;
            }
            if !fault_logged && now >= self.config.fault_at {
                events.push((
                    self.config.fault_at,
                    "D: FCS fault on tor-4-1~agg-4-1".into(),
                ));
                fault_logged = true;
            }
            if !shutdown_logged && !self.mitigation.tickets().is_empty() {
                events.push((now, "D: failure-mitigation shuts tor-4-1~agg-4-1".into()));
                shutdown_logged = true;
            }
            let _ = (up_report, mit_report);

            // Sample ground-truth pair capacities.
            let health = self.ground_truth_health();
            let report = capacity::evaluate_with_baselines(
                &self.graph,
                &health,
                &self.pairs,
                &self.baselines,
            );
            samples.push(Fig8Sample {
                at: now,
                fractions: report.pairs.iter().map(|p| p.fraction()).collect(),
                upgrading_pod: pod,
            });

            if self.upgrade.is_done() && finished_at.is_none() {
                finished_at = Some(self.net.clock().now());
                events.push((finished_at.unwrap(), "rollout complete".into()));
                break;
            }
        }

        Fig8Result {
            samples,
            events,
            finished_at,
            pair_pods,
            accepted,
            rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed run (3 pods, shorter reboot) for unit-level checks; the
    /// full-figure assertions live in `tests/fig8_scenario.rs`.
    #[test]
    fn trimmed_scenario_upholds_invariant() {
        let cfg = Fig8Config {
            reboot_window: SimDuration::from_mins(6),
            horizon: SimDuration::from_mins(150),
            fault_at: SimTime::from_mins(30),
            ..Default::default()
        };
        let result = Fig8Scenario::new(cfg).run();
        assert!(!result.samples.is_empty());
        assert!(
            result.min_fraction() >= 0.5 - 1e-9,
            "invariant violated: {}",
            result.min_fraction()
        );
        assert!(result.rejected > 0, "greedy app must hit rejections");
        assert!(result.event_time("D: failure-mitigation").is_some());
    }
}
