//! The columnar + blast-radius control loop at millions of variables:
//! drives full coordinator rounds (invariants on) over a fabric sized by
//! `STATESMAN_BENCH_VARS` (default 4,000,000) and reports per-round
//! checker time, whole-round wall time, and resident bytes per state
//! variable from the columnar storage arenas.
//!
//! Two state planes run back to back over identical fabrics:
//!
//! * `columnar` — delta reads + columnar mirrors + blast-radius
//!   incremental checker (the shipping default);
//! * `hash` — delta reads over the hashmap mirrors with full
//!   re-projection every pass (the previous plane, kept as the
//!   reference; its decisions are asserted bit-equal elsewhere, this
//!   binary measures the cost difference).
//!
//! The paper's checker budget (§8: minutes-scale rounds, checker well
//! under the 10 s coordination overhead) is asserted for the columnar
//! plane at every size: steady-state checker time must stay under
//! 10 s even at 4M variables.
//!
//! ```text
//! STATESMAN_BENCH_VARS=4000000 STATESMAN_BENCH_ROUNDS=3 \
//!     cargo run --release -p statesman-bench --bin delta_pipeline
//! ```
//!
//! Emits `BENCH_delta_pipeline.json` in the working directory.

use statesman_core::{Coordinator, CoordinatorConfig};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{ClusterConfig, StorageConfig, StorageService};
use statesman_topology::DcnSpec;
use statesman_types::{DatacenterId, SimDuration};
use std::time::Instant;

const CHECKER_BUDGET_MS: f64 = 10_000.0;

fn main() {
    let vars: usize = std::env::var("STATESMAN_BENCH_VARS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000_000);
    let rounds: usize = std::env::var("STATESMAN_BENCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    let mut json_planes = Vec::new();
    let mut rows = Vec::new();
    for (plane, columnar) in [("columnar", true), ("hash", false)] {
        let m = measure(vars, rounds, columnar);
        println!(
            "csv,delta_pipeline,{plane},{},{:.0},{:.0},{:.0},{:.0},{:.1}",
            m.vars_seeded,
            m.seed_ms,
            m.quiescent_checker_ms,
            m.churn_checker_ms,
            m.churn_round_ms,
            m.bytes_per_var
        );
        rows.push(vec![
            plane.to_string(),
            m.vars_seeded.to_string(),
            format!("{:.0}", m.seed_ms),
            format!("{:.0}", m.quiescent_checker_ms),
            format!("{:.0}", m.churn_checker_ms),
            format!("{:.0}", m.churn_round_ms),
            format!("{:.1}", m.bytes_per_var),
        ]);
        let seed_stages = match &m.seed_stages {
            Some(s) => format!(
                "{{ \"rows\": {}, \"partitions\": {}, \"intern_ms\": {:.1}, \
                 \"arena_fill_ms\": {:.1}, \"index_build_ms\": {:.1}, \
                 \"paxos_commit_ms\": {:.1}, \"bulk_wall_ms\": {:.1} }}",
                s.rows, s.partitions, s.intern_ms, s.fill_ms, s.index_ms, s.commit_ms, s.wall_ms
            ),
            None => "null".to_string(),
        };
        json_planes.push(format!(
            "    {{ \"plane\": \"{plane}\", \"vars\": {}, \"seed_ms\": {:.1}, \
             \"seed_stages\": {seed_stages}, \
             \"quiescent_checker_ms\": {:.2}, \"churn_checker_ms\": {:.2}, \
             \"churn_round_ms\": {:.1}, \"bytes_per_var\": {:.1} }}",
            m.vars_seeded,
            m.seed_ms,
            m.quiescent_checker_ms,
            m.churn_checker_ms,
            m.churn_round_ms,
            m.bytes_per_var
        ));

        // The headline acceptance: the columnar plane's steady-state
        // checker stays inside the paper's coordination budget.
        if columnar {
            assert!(
                m.churn_checker_ms < CHECKER_BUDGET_MS,
                "columnar checker blew the 10 s budget at {} vars: {:.0} ms",
                m.vars_seeded,
                m.churn_checker_ms
            );
        }
    }

    println!();
    println!("delta_pipeline: {rounds} measured rounds per shape, invariants on");
    print!(
        "{}",
        statesman_bench::report::table(
            &[
                "plane",
                "vars",
                "seed_ms",
                "quiet_chk_ms",
                "churn_chk_ms",
                "churn_round_ms",
                "bytes/var"
            ],
            &rows
        )
    );

    let json = format!(
        "{{\n  \"bench\": \"delta_pipeline\",\n  \"target_vars\": {vars},\n  \
         \"rounds\": {rounds},\n  \"checker_budget_ms\": {CHECKER_BUDGET_MS},\n  \
         \"planes\": [\n{}\n  ]\n}}\n",
        json_planes.join(",\n")
    );
    std::fs::write("BENCH_delta_pipeline.json", json).expect("write BENCH_delta_pipeline.json");
}

struct PlaneResult {
    vars_seeded: usize,
    seed_ms: f64,
    seed_stages: Option<statesman_storage::SeedStats>,
    quiescent_checker_ms: f64,
    churn_checker_ms: f64,
    churn_round_ms: f64,
    bytes_per_var: f64,
}

/// Build a coordinator over a fabric sized for `vars` variables and
/// measure seeded steady-state rounds: quiescent (clock frozen, every
/// poll returns what the last round wrote) and low-churn (one simulated
/// minute per round, telemetry counters move).
fn measure(vars: usize, rounds: usize, columnar: bool) -> PlaneResult {
    let clock = SimClock::new();
    let graph = DcnSpec::sized_for_variables("dcX", vars).build();
    let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
    let storage = StorageService::new(
        [DatacenterId::new("dcX")],
        clock.clone(),
        StorageConfig {
            replicas_per_ring: 1,
            ring: ClusterConfig {
                replicas: 1,
                // One simulated minute walks every device's cpu/mem
                // counters (~164K rows at 4M variables); the change
                // index must hold a few rounds of that churn or every
                // read_since falls back to the snapshot path and the
                // incremental checker reseeds from scratch each pass.
                change_index_capacity: 1 << 20,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let coord = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig {
            columnar_state: columnar,
            // Steady-state only: a periodic forced resync inside the
            // sample window would mix full-write rounds into the mean.
            monitor_resync_every: Some(u64::MAX),
            ..Default::default()
        },
    );

    let t0 = Instant::now();
    let seed_round = coord.tick().expect("seed round");
    let seed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (m_ms, c_ms, u_ms) = seed_round.latency_breakdown_ms();
    eprintln!(
        "seed breakdown ({}): monitor {m_ms:.0} ms, checker {c_ms:.0} ms, \
         updater {u_ms:.0} ms, other {:.0} ms",
        if columnar { "columnar" } else { "hash" },
        seed_ms - m_ms - c_ms - u_ms
    );
    eprintln!(
        "seed monitor stages ({}): poll {:.0} / diff {:.0} / write {:.0} ms wall",
        if columnar { "columnar" } else { "hash" },
        seed_round.monitor.stage_poll.as_secs_f64() * 1e3,
        seed_round.monitor.stage_diff.as_secs_f64() * 1e3,
        seed_round.monitor.stage_write.as_secs_f64() * 1e3,
    );
    let seed_stages = seed_round.monitor.seed;
    if let Some(s) = &seed_stages {
        eprintln!(
            "seed stages: {} rows over {} partitions — intern {:.0} ms, \
             arena fill {:.0} ms, index build {:.0} ms, paxos commit {:.0} ms \
             (bulk wall {:.0} ms)",
            s.rows, s.partitions, s.intern_ms, s.fill_ms, s.index_ms, s.commit_ms, s.wall_ms
        );
    }
    let (state_bytes, state_rows) = storage.state_bytes();
    let bytes_per_var = if state_rows > 0 {
        state_bytes as f64 / state_rows as f64
    } else {
        0.0
    };

    let mut quiescent_checker_ms = 0.0;
    for _ in 0..rounds {
        let r = coord.tick().expect("quiescent round");
        quiescent_checker_ms += r.latency_breakdown_ms().1;
    }
    let mut churn_checker_ms = 0.0;
    let mut churn_round_ms = 0.0;
    for _ in 0..rounds {
        // Advance first so every measured tick sees one simulated minute
        // of telemetry churn (tick_and_advance steps after the tick,
        // which would leave the last round's churn unmeasured).
        net.step(SimDuration::from_mins(1));
        let t = Instant::now();
        let r = coord.tick().expect("churn round");
        churn_round_ms += t.elapsed().as_secs_f64() * 1e3;
        churn_checker_ms += r.latency_breakdown_ms().1;
        eprintln!(
            "churn round ({}): monitor poll {:.0} / diff {:.0} / write {:.0} ms, \
             checker {:.0} ms, updater read {:.0} / diff {:.0} / exec {:.0} ms",
            if columnar { "columnar" } else { "hash" },
            r.monitor.stage_poll.as_secs_f64() * 1e3,
            r.monitor.stage_diff.as_secs_f64() * 1e3,
            r.monitor.stage_write.as_secs_f64() * 1e3,
            r.latency_breakdown_ms().1,
            r.updater.stage_read.as_secs_f64() * 1e3,
            r.updater.stage_diff.as_secs_f64() * 1e3,
            r.updater.stage_exec.as_secs_f64() * 1e3,
        );
    }

    PlaneResult {
        vars_seeded: state_rows as usize,
        seed_ms,
        seed_stages,
        quiescent_checker_ms: quiescent_checker_ms / rounds as f64,
        churn_checker_ms: churn_checker_ms / rounds as f64,
        churn_round_ms: churn_round_ms / rounds as f64,
        bytes_per_var,
    }
}
