//! Multi-group round scaling over the sharded storage plane: full-scan
//! coordinator rounds at a fixed total variable count, split across
//! 1/2/4/8 datacenter partitions (= impact groups).
//!
//! The claim under test: with per-partition ring locks, the parallel
//! checker threads, the updater's per-partition diff fan-out, and the
//! proxy's concurrent sub-batch dispatch actually overlap — so the same
//! total state costs less per round as groups are added. Under the old
//! global storage mutex the threads serialized on every read and write,
//! and added groups bought nothing.
//!
//! The state plane runs in snapshot mode (`delta_state_plane: false`):
//! full pool rewrites + full re-reads every round maximize under-lock
//! traffic, which is exactly the contention being measured. Invariants
//! are off so the measurement isolates state-plane cost.
//!
//! ```text
//! STATESMAN_BENCH_VARS=394000 STATESMAN_BENCH_GROUPS=1,2,4,8 \
//!     cargo run --release -p statesman-bench --bin parallel_rounds
//! ```
//!
//! Emits `BENCH_parallel_rounds.json` (groups → round latency) in the
//! working directory, and a `csv,`-prefixed line per group.
//!
//! Alongside wall time, each group count reports `lock_wait_ms`: the
//! cumulative time round threads spent blocked on partition ring locks
//! (from `StorageService::lock_wait_stats`). Wall-clock speedup needs
//! multiple cores; vanishing lock wait under concurrent round stages is
//! the lock-sharding property itself, observable on any host.

use statesman_core::{Coordinator, CoordinatorConfig};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{ClusterConfig, StorageConfig, StorageService, WriteRequest};
use statesman_topology::{DcnSpec, DeploymentSpec};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, NetworkState, Pool, SimDuration, Value,
};

const ROUNDS: usize = 3;

/// Update-plan shape of one TS-churn round: (steps, waves, max_width).
type PlanShape = (usize, usize, usize);

/// Mean per-round stage latencies (ms): where a round actually spends
/// its wall clock, so scaling regressions point at a stage instead of a
/// guess. Monitor and updater split into their pipeline stages; the
/// checker is one measured compute block.
#[derive(Default, Clone, Copy)]
struct StageBreakdown {
    monitor_poll_ms: f64,
    monitor_diff_ms: f64,
    monitor_write_ms: f64,
    checker_ms: f64,
    updater_read_ms: f64,
    updater_diff_ms: f64,
    updater_exec_ms: f64,
}

fn main() {
    let vars: usize = std::env::var("STATESMAN_BENCH_VARS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(394_000);
    let groups: Vec<usize> = std::env::var("STATESMAN_BENCH_GROUPS")
        .ok()
        .unwrap_or_else(|| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|g| g.trim().parse().ok())
        .filter(|&g| g >= 1)
        .collect();

    let workers = statesman_core::default_worker_threads();
    // CI scaling gate: with STATESMAN_BENCH_MIN_SPEEDUP set (e.g. 0.95),
    // the binary fails if any group count's speedup over the 1-group
    // baseline falls below it — negative scaling becomes a red build
    // instead of a number in an artifact nobody reads.
    let min_speedup: Option<f64> = std::env::var("STATESMAN_BENCH_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut base_ms: Option<f64> = None;
    for &g in &groups {
        let (round_ms, lock_wait_ms, stages, (plan_steps, plan_waves, plan_width)) =
            measure(vars, g);
        let speedup = base_ms.get_or_insert(round_ms).max(f64::MIN_POSITIVE) / round_ms;
        println!(
            "csv,parallel_rounds,{vars},{g},{round_ms:.1},{speedup:.2},{lock_wait_ms:.1},\
             {plan_steps},{plan_waves},{plan_width}"
        );
        if let Some(min) = min_speedup {
            assert!(
                speedup >= min,
                "negative scaling: {g} groups at {speedup:.2}x \
                 (below the {min:.2}x gate)"
            );
        }
        rows.push(vec![
            g.to_string(),
            format!("{round_ms:.1}"),
            format!("{speedup:.2}x"),
            format!("{lock_wait_ms:.1}"),
            format!(
                "{:.0}/{:.0}/{:.0}",
                stages.monitor_poll_ms, stages.monitor_diff_ms, stages.monitor_write_ms
            ),
            format!("{:.0}", stages.checker_ms),
            format!(
                "{:.0}/{:.0}/{:.0}",
                stages.updater_read_ms, stages.updater_diff_ms, stages.updater_exec_ms
            ),
            format!("{plan_steps}/{plan_waves}/{plan_width}"),
        ]);
        json_rows.push(format!(
            "    {{ \"groups\": {g}, \"round_ms\": {round_ms:.1}, \"speedup\": {speedup:.2}, \
             \"lock_wait_ms\": {lock_wait_ms:.1}, \
             \"stages\": {{ \"monitor_poll_ms\": {:.1}, \"monitor_diff_ms\": {:.1}, \
             \"monitor_write_ms\": {:.1}, \"checker_ms\": {:.1}, \"updater_read_ms\": {:.1}, \
             \"updater_diff_ms\": {:.1}, \"updater_exec_ms\": {:.1} }}, \
             \"plan_steps\": {plan_steps}, \
             \"plan_waves\": {plan_waves}, \"plan_max_width\": {plan_width} }}",
            stages.monitor_poll_ms,
            stages.monitor_diff_ms,
            stages.monitor_write_ms,
            stages.checker_ms,
            stages.updater_read_ms,
            stages.updater_diff_ms,
            stages.updater_exec_ms,
        ));
    }
    println!();
    println!(
        "parallel_rounds: {vars} total variables, full-scan plane, {ROUNDS}-round median, \
         {workers} worker threads"
    );
    print!(
        "{}",
        statesman_bench::report::table(
            &[
                "groups",
                "round_ms",
                "speedup",
                "lock_wait_ms",
                "mon p/d/w",
                "chk_ms",
                "upd r/d/x",
                "plan s/w/width"
            ],
            &rows
        )
    );

    let json = format!(
        "{{\n  \"bench\": \"parallel_rounds\",\n  \"vars\": {vars},\n  \
         \"worker_threads\": {workers},\n  \"rounds\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_parallel_rounds.json", json).expect("write BENCH_parallel_rounds.json");
}

/// Median round latency (ms), mean per-round partition-lock wait (ms),
/// mean per-round stage breakdown, and the update-plan shape of a
/// trailing TS-churn round, for `vars` total variables split across `g`
/// equally sized datacenter partitions.
fn measure(vars: usize, g: usize) -> (f64, f64, StageBreakdown, PlanShape) {
    let clock = SimClock::new();
    let dcns: Vec<DcnSpec> = (1..=g)
        .map(|i| DcnSpec::sized_for_variables(format!("dc{i}"), vars / g))
        .collect();
    let dc_ids: Vec<DatacenterId> = dcns.iter().map(|d| DatacenterId::new(&d.name)).collect();
    let graph = DeploymentSpec {
        dcns,
        wan: None,
        br_core_mbps: 100_000.0,
    }
    .build();
    let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
    let storage = StorageService::new(
        dc_ids,
        clock.clone(),
        StorageConfig {
            replicas_per_ring: 1,
            ring: ClusterConfig {
                replicas: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // StorageService clones share state: the bench keeps a handle so it
    // can read contention stats without going through the coordinator.
    let storage_probe = storage.clone();
    let coord = Coordinator::new(
        &graph,
        net,
        storage,
        CoordinatorConfig {
            connectivity_invariant: false,
            capacity_invariant: None,
            wan_invariant: None,
            delta_state_plane: false,
            parallel_checkers: true,
            monitor_instances: Some(g),
            ..Default::default()
        },
    );
    coord.tick().expect("seed round");
    let wait_before = storage_probe.lock_wait_stats();
    let mut stages = StageBreakdown::default();
    let mut samples: Vec<f64> = (0..ROUNDS)
        .map(|_| {
            let t = std::time::Instant::now();
            let r = coord
                .tick_and_advance(SimDuration::from_mins(1))
                .expect("round");
            let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
            stages.monitor_poll_ms += ms(r.monitor.stage_poll);
            stages.monitor_diff_ms += ms(r.monitor.stage_diff);
            stages.monitor_write_ms += ms(r.monitor.stage_write);
            stages.checker_ms += r.latency_breakdown_ms().1;
            stages.updater_read_ms += ms(r.updater.stage_read);
            stages.updater_diff_ms += ms(r.updater.stage_diff);
            stages.updater_exec_ms += ms(r.updater.stage_exec);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let n = ROUNDS as f64;
    for s in [
        &mut stages.monitor_poll_ms,
        &mut stages.monitor_diff_ms,
        &mut stages.monitor_write_ms,
        &mut stages.checker_ms,
        &mut stages.updater_read_ms,
        &mut stages.updater_diff_ms,
        &mut stages.updater_exec_ms,
    ] {
        *s /= n;
    }
    let lock_wait_ms = (storage_probe.lock_wait_stats() - wait_before) as f64 / 1e3 / ROUNDS as f64;
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // Trailing TS-churn round: retarget firmware on one agg per pod (up
    // to 8 pods per DC), then let the planned updater compile and run
    // the difference set. The reported shape is the plan's available
    // parallelism — pods and DCs are independent segments, so max_width
    // must reach the step count (and in particular grow with `g`).
    let mut targets: Vec<(DatacenterId, EntityName)> = graph
        .nodes()
        .filter_map(|(_, n)| {
            let local = n.name.as_str().rsplit('.').next().unwrap_or("");
            (local.starts_with("agg-") && local.ends_with("-1")).then(|| {
                (
                    n.datacenter.clone(),
                    EntityName::device(n.datacenter.clone(), n.name.clone()),
                )
            })
        })
        .collect();
    targets.sort();
    let mut per_dc = std::collections::HashMap::new();
    targets.retain(|(dc, _)| {
        let seen = per_dc.entry(dc.clone()).or_insert(0usize);
        *seen += 1;
        *seen <= 8
    });
    let now = clock.now();
    let rows: Vec<NetworkState> = targets
        .iter()
        .map(|(_, e)| {
            NetworkState::new(
                e.clone(),
                Attribute::DeviceFirmwareVersion,
                Value::text("bench-9"),
                now,
                AppId::new("bench-plan"),
            )
        })
        .collect();
    storage_probe
        .write(WriteRequest {
            pool: Pool::Target,
            rows,
        })
        .expect("write churn TS");
    let report = coord
        .tick_and_advance(SimDuration::from_mins(1))
        .expect("churn round");
    let plan = (
        report.updater.plan_steps,
        report.updater.plan_waves,
        report.updater.plan_max_width,
    );
    (samples[samples.len() / 2], lock_wait_ms, stages, plan)
}
