//! Regenerate Figure 8: ToR-pair capacity over time while switch-upgrade
//! and failure-mitigation coexist under the 99%/50% capacity invariant.
//!
//! ```text
//! cargo run --release -p statesman-bench --bin fig8_capacity_invariant
//! ```
//!
//! Output: the event timeline (the paper's A–F annotations), a character
//! raster of the 90 ToR pairs × time capacity matrix (█ 100% ▓ 75% ▒ 50%),
//! and `csv,`-prefixed raw rows for plotting.

use statesman_bench::fig8::{Fig8Config, Fig8Scenario};
use statesman_bench::report;

fn main() {
    let config = Fig8Config::default();
    println!("== Figure 8: maintaining the capacity invariant ==");
    println!("topology: 10 pods x 4 Aggs (Fig 7); invariant: 99% of ToR pairs >= 50% capacity");
    println!(
        "apps: switch-upgrade (pod-by-pod, greedy) + failure-mitigation (FCS watcher); period {}",
        config.period
    );
    println!(
        "fault: FCS errors on tor-4-1~agg-4-1 at {}",
        config.fault_at
    );
    println!();

    let result = Fig8Scenario::new(config).run();

    println!("-- events --");
    for (t, label) in &result.events {
        println!("  [{t}] {label}");
    }
    println!();

    let raster = report::capacity_raster(
        &result
            .samples
            .iter()
            .map(|s| s.fractions.clone())
            .collect::<Vec<_>>(),
    );
    println!("-- ToR-pair capacity raster (rows = 90 pairs grouped by source pod; cols = {} ticks of 5 min) --", result.samples.len());
    println!("   legend: █ 100%   ▓ 75%   ▒ 50%   ░ <50% (never happens)");
    for (i, row) in raster.iter().enumerate() {
        let (sp, _) = result.pair_pods[i];
        let marker = if i % 9 == 0 {
            format!("pod{sp:>2} ")
        } else {
            "      ".to_string()
        };
        println!("{marker}|{row}|");
    }
    println!();

    println!("-- summary --");
    println!("  samples:        {}", result.samples.len());
    println!("  accepted rows:  {}", result.accepted);
    println!("  rejected rows:  {}", result.rejected);
    println!("  min capacity:   {:.0}%", result.min_fraction() * 100.0);
    match result.finished_at {
        Some(t) => println!("  rollout done:   {t}"),
        None => println!("  rollout done:   (horizon reached)"),
    }
    assert!(
        result.min_fraction() >= 0.5 - 1e-9,
        "capacity invariant was violated"
    );
    println!("  invariant held: yes (never below 50%)");
    println!();

    // Raw data for plotting.
    for s in &result.samples {
        let mut fields = vec![format!("{}", s.at.as_mins())];
        fields.extend(s.fractions.iter().map(|f| format!("{f:.2}")));
        println!("{}", report::csv_line(&fields));
    }
}
