//! Quick scaling profile of one checker pass (setup + monitor + pass) at
//! three fabric sizes — a development aid for watching the §8 latency
//! curve while optimizing, lighter-weight than the criterion bench.
//!
//! ```text
//! cargo run --release -p statesman-bench --bin profile_scale
//! ```

fn main() {
    for target in [50_000usize, 100_000, 200_000] {
        let t = std::time::Instant::now();
        let p = statesman_bench::scale::checker_pass_at_scale(target, 42);
        println!(
            "target {target}: vars {} devices {} checker {:.2}s monitor {:.2}s total {:.2}s",
            p.variables,
            p.devices,
            p.checker_elapsed.as_secs_f64(),
            p.monitor_elapsed.as_secs_f64(),
            t.elapsed().as_secs_f64()
        );
    }
}
